#!/usr/bin/env bash
# Hot-path regression gate: re-measures every tracked hot path — including the `_par`
# data-parallel entries and the `pipeline_throughput_{1,8,64,1024}_sessions` /
# `conversation_fleet_throughput_256` multi-session entries — and fails if any median
# regressed more than the tolerance versus the committed BENCH_hotpaths.json.
# Parallel/throughput entries are re-measured at the committed file's recorded
# `pool_lanes` (override with AIVC_POOL_SIZE) so comparisons are lane-for-lane.
#
#   ./scripts/bench-check.sh                     # 5 % tolerance (the ROADMAP rule)
#   BENCH_CHECK_TOLERANCE=0.10 ./scripts/bench-check.sh   # relaxed (noisy CI runners)
#   AIVC_POOL_SIZE=8 ./scripts/bench-check.sh    # force a pool size for the _par entries
#   ./scripts/bench-check.sh path/to/other.json  # compare against a different baseline
#   ./scripts/bench-check.sh --only <name>       # gate just the named entries
#
# Re-recording (when a median legitimately shifted) follows the documented max-of-3
# rule — three full measurement runs, each entry keeping its slowest median, so the
# committed bar is conservative against measurement noise:
#
#   ./scripts/bench-check.sh --record                 # re-record the whole baseline
#   ./scripts/bench-check.sh --record --only <name>   # surgically re-record one entry
set -euo pipefail
cd "$(dirname "$0")/.."
if [ "${1:-}" = "--record" ]; then
  shift
  exec cargo run --release -p aivc-bench --bin hotpath_baseline -- --max-of 3 "$@"
fi
# The default baseline goes first so an explicitly passed path (a later positional
# argument) overrides it.
exec cargo run --release -p aivc-bench --bin bench_check -- BENCH_hotpaths.json "$@"
