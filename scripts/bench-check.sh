#!/usr/bin/env bash
# Hot-path regression gate: re-measures every tracked hot path — including the `_par`
# data-parallel entries and the `pipeline_throughput_{1,8,64,1024}_sessions` multi-session
# entries — and fails if any median regressed more than the tolerance versus the committed
# BENCH_hotpaths.json. Parallel/throughput entries are re-measured at the committed file's
# recorded `pool_lanes` (override with AIVC_POOL_SIZE) so comparisons are lane-for-lane.
#
#   ./scripts/bench-check.sh                     # 5 % tolerance (the ROADMAP rule)
#   BENCH_CHECK_TOLERANCE=0.10 ./scripts/bench-check.sh   # relaxed (noisy CI runners)
#   AIVC_POOL_SIZE=8 ./scripts/bench-check.sh    # force a pool size for the _par entries
#   ./scripts/bench-check.sh path/to/other.json  # compare against a different baseline
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p aivc-bench --bin bench_check -- "${1:-BENCH_hotpaths.json}"
