#!/usr/bin/env bash
# Hot-path regression gate: re-measures every tracked hot path and fails if any median
# regressed more than the tolerance versus the committed BENCH_hotpaths.json.
#
#   ./scripts/bench-check.sh                     # 5 % tolerance (the ROADMAP rule)
#   BENCH_CHECK_TOLERANCE=0.10 ./scripts/bench-check.sh   # relaxed (noisy CI runners)
#   ./scripts/bench-check.sh path/to/other.json  # compare against a different baseline
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p aivc-bench --bin bench_check -- "${1:-BENCH_hotpaths.json}"
