//! Building a small DeViBench dataset and evaluating streaming methods against it.
//!
//! Runs the paper's five-step automatic QA construction pipeline (§3.1) over a synthetic
//! corpus, prints the stage yields and Table-1-style summary, then scores a 4 Mbps and a
//! 200 kbps context-agnostic encode against the resulting dataset — showing that DeViBench
//! is, by construction, easy at high bitrate and hard at low bitrate.
//!
//! Run with: `cargo run --release --example devibench_pipeline`

use aivchat::devibench::{evaluate_method, CostModel, Pipeline, PipelineConfig};
use aivchat::mllm::MllmChat;
use aivchat::scene::Corpus;
use aivchat::videocodec::{transcode_clip, Encoder, EncoderConfig};

fn main() {
    let corpus = Corpus::streamingbench_like(2025, 8, 20.0, 60.0);
    println!(
        "Corpus: {} clips, {:.0} s total, {} ground-truth facts",
        corpus.len(),
        corpus.stats().total_duration_secs,
        corpus.stats().total_facts
    );

    let report = Pipeline::new(PipelineConfig::default()).run(&corpus);
    println!(
        "\nPipeline: {} candidates generated -> {} accepted by the filter ({:.1}%) -> {} cross-verified ({:.1}%), end-to-end yield {:.1}% (paper: 11.16% / 70.61% / 7.8%)",
        report.generated,
        report.filter_accepted,
        report.filter_acceptance_rate() * 100.0,
        report.verified,
        report.verification_pass_rate() * 100.0,
        report.end_to_end_yield() * 100.0
    );
    println!(
        "\nTable 1 style summary:\n{}",
        report.dataset.summary(&CostModel::default()).to_markdown()
    );
    println!(
        "Category distribution (Figure 8):\n{}",
        report.dataset.distribution().to_markdown()
    );

    // Evaluate two context-agnostic renditions against the dataset.
    let encoder = Encoder::new(EncoderConfig::default());
    let responder = MllmChat::responder(11);
    for bitrate in [4_000_000.0, 200_000.0] {
        let outcome = evaluate_method(
            &report.dataset,
            &responder,
            |clip_id| {
                let clip = corpus.clips().iter().find(|c| c.id == clip_id).unwrap();
                transcode_clip(&encoder, &clip.source(), bitrate, 8).0
            },
            bitrate as u64,
        );
        println!(
            "Uniform-QP rendition at {:.0} kbps: accuracy {:.2} over {} questions (mean P(correct) {:.2})",
            bitrate / 1_000.0,
            outcome.accuracy(),
            outcome.questions,
            outcome.mean_probability_correct
        );
    }
}
