//! Context-aware streaming vs the uniform-QP baseline on a detail-critical question.
//!
//! The user asks about the logo on a player's jersey — the paper's Figure 4/10 scenario.
//! Both methods get the same ~430 kbps budget over the same network; the example shows where
//! the bits go (per-object allocation), the CLIP-informed QP map, and how the MLLM's chance
//! of answering correctly differs.
//!
//! Run with: `cargo run --release --example context_aware_vs_baseline`

use aivchat::core::baseline::sample_frames;
use aivchat::core::{AiVideoChatSession, ContextAgnosticBaseline, ContextAwareStreamer, SessionOptions};
use aivchat::mllm::{Question, QuestionFormat};
use aivchat::scene::templates::basketball_game;
use aivchat::scene::{SourceConfig, VideoSource};

fn main() {
    let scene = basketball_game(3);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
    let fact = &scene.facts[1]; // the jersey-logo question
    let question = Question::from_fact(fact, QuestionFormat::FreeResponse);
    println!("User: \"{}\" (ground truth: {})\n", question.text, fact.answer);

    // --- Where do the bits go? Encode a few frames with both methods at the same bitrate.
    let streamer = ContextAwareStreamer::default();
    let baseline = ContextAgnosticBaseline::default();
    let frames = sample_frames(&source, 4);
    let query = streamer.query_for_question(&question);
    let ours = streamer.encode_at_bitrate(&frames, &query, 30.0, 430_000.0);
    let theirs = baseline.encode_at_bitrate(&frames, 30.0, 430_000.0);
    println!(
        "Matched bitrates: ours {:.0} kbps vs baseline {:.0} kbps (uniform QP {})",
        ours.achieved_bitrate_bps / 1_000.0,
        theirs.achieved_bitrate_bps / 1_000.0,
        theirs.qp.value()
    );
    println!("\nBits on each object in the first frame (ours vs baseline):");
    for object in &scene.objects {
        println!(
            "  {:22} {:>9} vs {:>9}",
            object.name,
            ours.encoded[0].bits_on_object(object.id, 0.05),
            theirs.encoded[0].bits_on_object(object.id, 0.05)
        );
    }

    // --- And what does that do to the answer? Run the full chat turn with both methods.
    let ours_turn =
        AiVideoChatSession::new(SessionOptions::default_context_aware(9)).run_turn(&source, &question);
    let base_turn = AiVideoChatSession::new(SessionOptions::default_baseline(9)).run_turn(&source, &question);
    println!(
        "\nContext-aware: P(correct) = {:.2}, evidence quality {:.2}, {} ",
        ours_turn.answer.probability_correct,
        ours_turn.answer.perceived_evidence_quality,
        ours_turn.latency.to_line()
    );
    println!(
        "Baseline:      P(correct) = {:.2}, evidence quality {:.2}, {} ",
        base_turn.answer.probability_correct,
        base_turn.answer.perceived_evidence_quality,
        base_turn.latency.to_line()
    );
}
