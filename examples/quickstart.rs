//! Quickstart: one AI Video Chat turn, end to end.
//!
//! The user watches a basketball game through their phone camera and asks the AI about the
//! score. The example runs the full loop of the paper's Figure 1 — capture, context-aware
//! encoding driven by the user's words, RTC over an emulated 10 Mbps uplink, decoding, and
//! the MLLM's answer — and prints the response-latency budget against the 300 ms target.
//!
//! Run with: `cargo run --release --example quickstart`

use aivchat::core::{AiVideoChatSession, SessionOptions};
use aivchat::mllm::{Question, QuestionFormat};
use aivchat::scene::templates::basketball_game;
use aivchat::scene::{SourceConfig, VideoSource};

fn main() {
    // The scene the camera is looking at (synthetic, with ground-truth annotations).
    let scene = basketball_game(7);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));

    // The user's words — these drive the context-aware bitrate allocation.
    let fact = &scene.facts[0];
    let question = Question::from_fact(fact, QuestionFormat::FreeResponse);
    println!("User: \"{}\"", question.text);

    // One chat turn with the paper's default setup: 430 kbps context-aware uplink over a
    // 10 Mbps / 30 ms network, no jitter buffer.
    let session = AiVideoChatSession::new(SessionOptions::default_context_aware(42));
    let report = session.run_turn(&source, &question);

    println!(
        "AI answered {} (P(correct) = {:.2}), ground truth: \"{}\"",
        if report.answer.correct {
            "correctly"
        } else {
            "incorrectly"
        },
        report.answer.probability_correct,
        fact.answer
    );
    println!(
        "Uplink: {:.0} kbps achieved, {}/{} frames delivered, {} visual tokens consumed",
        report.achieved_bitrate_bps / 1_000.0,
        report.frames_delivered,
        report.frames_sent,
        report.answer.visual_tokens
    );
    println!("Latency budget: {}", report.latency.to_line());
}
