//! Reproducing the paper's §2.2 measurement in miniature: how bitrate and loss shape
//! per-frame transmission latency on a 10 Mbps / 30 ms link, and what that means for the
//! 300 ms conversational budget.
//!
//! Run with: `cargo run --release --example network_sweep`

use aivchat::mllm::{InferenceLatencyModel, MllmConfig};
use aivchat::rtc::session::synthetic_frame_schedule;
use aivchat::rtc::{SessionConfig, VideoSession};

fn main() {
    // The transport budget left once MLLM inference is paid (§1's "at most 68 ms").
    let latency_model = InferenceLatencyModel::new(MllmConfig::qwen_omni_like());
    let budget_ms = latency_model.remaining_transport_budget_ms(300.0, 768);
    println!("Transport budget inside 300 ms once inference is paid: {budget_ms:.0} ms\n");

    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12}",
        "loss", "bitrate", "mean (ms)", "p95 (ms)", "fits budget?"
    );
    for loss in [0.0, 0.01, 0.05] {
        for bitrate in [400_000.0, 850_000.0, 3_000_000.0, 8_000_000.0, 12_000_000.0] {
            let frames = synthetic_frame_schedule(bitrate, 30.0, 30.0, 60, 6.0);
            let stats = VideoSession::new(SessionConfig::paper_fig3(loss, bitrate, 1))
                .run(&frames)
                .stats;
            let mut latency = stats.transmission_latency();
            println!(
                "{:<10} {:>7.0}k {:>12.1} {:>12.1} {:>12}",
                format!("{:.0}%", loss * 100.0),
                bitrate / 1_000.0,
                latency.mean_ms(),
                latency.p95_ms(),
                if latency.p95_ms() <= budget_ms {
                    "yes"
                } else {
                    "no"
                }
            );
        }
    }
    println!("\nTakeaway (§2.2): only the ultra-low-bitrate operating points keep even the p95 frame inside the transport budget — which is why AI-oriented RTC wants far less bitrate than the link could carry.");
}
