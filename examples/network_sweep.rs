//! The §2.2 story, network-in-the-loop: every registry scenario runs a full chat turn
//! through the trace-driven emulated uplink with closed-loop GCC → ABR adaptation, under
//! both rate objectives — traditional estimate-riding WebRTC ABR (uniform QP) and the
//! paper's AI-oriented accuracy-floor ABR (context-aware QP) — and reports what the
//! network did to goodput, per-frame latency and the MLLM's answer.
//!
//! Run with: `cargo run --release --example network_sweep`

use aivchat::core::scenarios::{registry, run_scenario};
use aivchat::mllm::{InferenceLatencyModel, MllmConfig};

fn main() {
    // The transport budget left once MLLM inference is paid (§1's "at most 68 ms").
    let latency_model = InferenceLatencyModel::new(MllmConfig::qwen_omni_like());
    let budget_ms = latency_model.remaining_transport_budget_ms(300.0, 768);
    println!("Transport budget inside 300 ms once inference is paid: {budget_ms:.0} ms\n");

    println!(
        "{:<12} {:<12} {:>10} {:>10} {:>9} {:>9} {:>7} {:>9} {:>8}",
        "scenario", "abr", "target", "goodput", "p50 (ms)", "p95 (ms)", "frames", "accuracy", "correct"
    );
    for scenario in registry() {
        let report = run_scenario(&scenario, 1);
        for (abr, turn) in [
            ("traditional", &report.traditional),
            ("ai_oriented", &report.ai_oriented),
        ] {
            println!(
                "{:<12} {:<12} {:>9.0}k {:>9.0}k {:>9.1} {:>9.1} {:>4}/{:<2} {:>9.3} {:>8}",
                scenario.name,
                abr,
                turn.mean_target_bitrate_bps / 1e3,
                turn.goodput_bps / 1e3,
                turn.p50_frame_latency_ms,
                turn.p95_frame_latency_ms,
                turn.frames_delivered,
                turn.frames_sent,
                turn.answer.probability_correct,
                if turn.answer.correct { "yes" } else { "no" }
            );
        }
        println!(
            "{:<12} {:<12} {:>62}",
            "",
            format!("server x{}", report.server_sessions),
            format!(
                "correct fraction {:.2}, mean p {:.3}",
                report.server_correct_fraction, report.server_mean_probability
            )
        );
    }
    println!(
        "\nTakeaway (§2.2/§3.2): across every scenario the AI-oriented floor keeps the p95 frame \
         inside the conversational budget and the answer intact, while the estimate-riding \
         policy pays for its extra bits in queueing delay exactly when capacity moves."
    );
}
