//! The §2.2 story, network-in-the-loop: every registry scenario runs a full chat turn
//! through the trace-driven emulated uplink with closed-loop GCC → ABR adaptation, under
//! both rate objectives — traditional estimate-riding WebRTC ABR (uniform QP) and the
//! paper's AI-oriented accuracy-floor ABR (context-aware QP) — and reports what the
//! network did to goodput, per-frame latency and the MLLM's answer.
//!
//! Run with: `cargo run --release --example network_sweep`

use aivchat::core::scenarios::{
    contention_registry, conversation_registry, registry, run_contention_scenario, run_conversation_scenario,
    run_scenario,
};
use aivchat::mllm::{InferenceLatencyModel, MllmConfig};

fn main() {
    // The transport budget left once MLLM inference is paid (§1's "at most 68 ms").
    let latency_model = InferenceLatencyModel::new(MllmConfig::qwen_omni_like());
    let budget_ms = latency_model.remaining_transport_budget_ms(300.0, 768);
    println!("Transport budget inside 300 ms once inference is paid: {budget_ms:.0} ms\n");

    println!(
        "{:<12} {:<12} {:>10} {:>10} {:>9} {:>9} {:>7} {:>9} {:>8}",
        "scenario", "abr", "target", "goodput", "p50 (ms)", "p95 (ms)", "frames", "accuracy", "correct"
    );
    for scenario in registry() {
        let report = run_scenario(&scenario, 1);
        for (abr, turn) in [
            ("traditional", &report.traditional),
            ("ai_oriented", &report.ai_oriented),
        ] {
            println!(
                "{:<12} {:<12} {:>9.0}k {:>9.0}k {:>9.1} {:>9.1} {:>4}/{:<2} {:>9.3} {:>8}",
                scenario.name,
                abr,
                turn.mean_target_bitrate_bps / 1e3,
                turn.goodput_bps / 1e3,
                turn.p50_frame_latency_ms,
                turn.p95_frame_latency_ms,
                turn.frames_delivered,
                turn.frames_sent,
                turn.answer.probability_correct,
                if turn.answer.correct { "yes" } else { "no" }
            );
        }
        println!(
            "{:<12} {:<12} {:>62}",
            "",
            format!("server x{}", report.server_sessions),
            format!(
                "correct fraction {:.2}, mean p {:.3}",
                report.server_correct_fraction, report.server_mean_probability
            )
        );
    }
    println!(
        "\nTakeaway (§2.2/§3.2): across every scenario the AI-oriented floor keeps the p95 frame \
         inside the conversational budget and the answer intact, while the estimate-riding \
         policy pays for its extra bits in queueing delay exactly when capacity moves."
    );

    // --- Continuous conversations: one transport timeline across every turn.
    println!(
        "\n{:<26} {:<12} {:>6} {:>11} {:>11} {:>9} {:>9} {:>8} {:>8}",
        "conversation", "abr", "turns", "cold swing", "warm swing", "carry", "p95 (ms)", "correct", "nack-"
    );
    for scenario in conversation_registry() {
        let report = run_conversation_scenario(&scenario);
        for (abr, conv) in [
            ("traditional", &report.traditional),
            ("ai_oriented", &report.ai_oriented),
        ] {
            let max_carry = conv
                .carryover_queue_delay_ms
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            println!(
                "{:<26} {:<12} {:>6} {:>10.0}k {:>10.0}k {:>7.1}ms {:>9.1} {:>8.2} {:>8}",
                scenario.name,
                abr,
                conv.turns.len(),
                conv.cold_target_swing_bps() / 1e3,
                conv.warm_target_swing_bps() / 1e3,
                max_carry,
                conv.p95_frame_latency_ms,
                conv.correct_fraction(),
                conv.nacks_suppressed,
            );
        }
    }
    println!(
        "\nConversation takeaway: turn 0 pays the cold-start swing once; every later turn starts \
         from the previous turn's estimate (warm swing is the residual trace-tracking), inherits \
         any standing queue it left, and deadline-aware NACK suppression stops hopeless \
         retransmits from competing with the next turn's media."
    );

    // --- Multi-tenant contention: K conversations sharing one bottleneck queue.
    println!(
        "\n{:<24} {:<12} {:>7} {:>6} {:>10} {:>13} {:>6} {:>9}",
        "contention", "abr", "tenants", "jain", "post-jain", "shares", "starv", "ttr (ms)"
    );
    for scenario in contention_registry() {
        let report = run_contention_scenario(&scenario);
        for (abr, rep) in [
            ("traditional", &report.traditional),
            ("ai_oriented", &report.ai_oriented),
        ] {
            let shares: Vec<f64> = rep.tenants.iter().map(|t| t.goodput_share).collect();
            let min_share = shares.iter().cloned().fold(f64::INFINITY, f64::min);
            let max_share = shares.iter().cloned().fold(0.0f64, f64::max);
            let max_ttr = rep
                .tenants
                .iter()
                .filter_map(|t| t.conversation.resilience.time_to_recover_ms)
                .fold(f64::NAN, f64::max);
            println!(
                "{:<24} {:<12} {:>7} {:>6.3} {:>10} {:>13} {:>6} {:>9}",
                scenario.name,
                abr,
                rep.tenants.len(),
                rep.fairness.jain_overall,
                rep.fairness
                    .jain_post_recovery
                    .map_or("-".into(), |j| format!("{j:.3}")),
                format!("{min_share:.2}-{max_share:.2}"),
                rep.starvation_events_total(),
                if max_ttr.is_nan() {
                    "-".into()
                } else {
                    format!("{max_ttr:.0}")
                },
            );
        }
    }
    println!(
        "\nContention takeaway: one bottleneck queue makes tenants interact — a shared blackout \
         still recovers per tenant (finite ttr, near-even post-recovery Jain), a cross-traffic \
         surge trips the starvation watchdog instead of letting tenants thrash the queue, and \
         the AI-oriented floor shares the link more evenly than estimate-riding ABR."
    );
}
