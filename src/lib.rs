//! # aivchat — AI Video Chat: context-aware real-time video streaming for MLLM receivers
//!
//! Umbrella crate re-exporting the workspace's public API. See the README for a tour and
//! DESIGN.md for the paper-to-module map.
//!
//! ```
//! use aivchat::core::{AiVideoChatSession, SessionOptions};
//! use aivchat::mllm::{Question, QuestionFormat};
//! use aivchat::scene::{templates::basketball_game, SourceConfig, VideoSource};
//!
//! let scene = basketball_game(1);
//! let source = VideoSource::new(scene.clone(), SourceConfig::fps30(4.0));
//! let question = Question::from_fact(&scene.facts[0], QuestionFormat::FreeResponse);
//! // A deliberately tiny turn so the doc test stays fast; see examples/ for realistic runs.
//! let mut options = SessionOptions::default_context_aware(1);
//! options.window_secs = 0.5;
//! options.capture_fps = 4.0;
//! let report = AiVideoChatSession::new(options).run_turn(&source, &question);
//! assert!(report.frames_delivered > 0);
//! ```

/// DeViBench: the degraded-video understanding benchmark pipeline and dataset.
pub use aivc_devibench as devibench;
/// Always-on fleet-serving metrics (relaxed atomic counters, off-hot-path snapshots).
pub use aivc_metrics as metrics;
/// The MLLM simulator (sampling, tokens, latency, accuracy, pipeline roles).
pub use aivc_mllm as mllm;
/// The deterministic packet-level network emulator.
pub use aivc_netsim as netsim;
/// The vendored scoped thread pool behind the data-parallel hot paths.
pub use aivc_par as par;
/// The RTC transport (packetization, pacing, NACK/RTX, FEC, jitter buffer, GCC, ABR).
pub use aivc_rtc as rtc;
/// Synthetic scenes, clips and corpora with ground-truth annotations.
pub use aivc_scene as scene;
/// The CLIP-like text/patch embedding model (Eq. 1).
pub use aivc_semantics as semantics;
/// The deterministic discrete-event simulation kernel (virtual clock, event queue, actors).
pub use aivc_sim as sim;
/// The block-based video codec simulator with region-wise QP control.
pub use aivc_videocodec as videocodec;
/// The paper's contribution: context-aware streaming, Eq. 2 allocation, the end-to-end chat
/// session and the Figure 9 evaluation.
pub use aivchat_core as core;
