//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator behind the
//! stand-in `rand` traits. Output quality matches the real cipher; the stream is **not**
//! bit-compatible with the upstream crate's (the workspace only relies on determinism for a
//! fixed seed, which this provides).

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher core with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor >= 15 {
            // Never split a u64 across blocks; drop a trailing odd word instead.
            self.refill();
        }
        let lo = self.block[self.cursor] as u64;
        let hi = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        const WORDS: u64 = 10_000;
        for _ in 0..WORDS {
            ones += rng.next_u64().count_ones() as u64;
        }
        let fraction = ones as f64 / (WORDS * 64) as f64;
        assert!((fraction - 0.5).abs() < 0.01, "bit balance {fraction}");
    }

    #[test]
    fn range_sampling_compiles_through_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let _ = rng.gen_bool(0.5);
    }
}
