//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors a minimal,
//! API-compatible implementation of exactly the serde surface the codebase uses: the
//! `Serialize`/`Deserialize` derive macros and (through `serde_json`) pretty JSON
//! round-tripping. Instead of serde's visitor architecture, everything funnels through a
//! concrete [`Value`] tree: `Serialize` renders a value into a tree, `Deserialize` rebuilds
//! it from one. That keeps the derive macro (hand-written, no `syn`/`quote`) small while
//! preserving lossless round-trips for every type in this workspace.
//!
//! Representation choices (documented because artifacts on disk depend on them):
//! * structs → JSON objects keyed by field name;
//! * tuple structs and tuples → JSON arrays;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → a single-key object `{"Variant": ...}`;
//! * maps/sets → arrays of `[key, value]` pairs / arrays (keys need not be strings);
//! * `Option` → the value or `null` (missing object fields deserialize as `None`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A deserialization/serialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// The serialized form of any value: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// A `null` with a `'static` lifetime, handed out for missing object fields so `Option`
/// fields deserialize to `None`.
pub static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Looks up a field of an object; missing fields resolve to `null`.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => Ok(pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL_VALUE)),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Element `i` of an array.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items.get(i).ok_or_else(|| {
                Error::custom(format!("array index {i} out of bounds ({} items)", items.len()))
            }),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::I64(v) => Some(v as i128),
            Value::U64(v) => Some(v as i128),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i128),
            _ => None,
        }
    }
}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i128().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::I64(*self as i64)
        } else {
            Value::U64(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v
            .as_i128()
            .ok_or_else(|| Error::custom(format!("expected integer, found {}", v.kind())))?;
        u64::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::custom(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// --- composite impls -------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Arc::from)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(v.index($idx)?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| Ok((K::from_value(pair.index(0)?)?, V::from_value(pair.index(1)?)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected array of pairs, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::I64(7)).unwrap(), Some(7));
        assert_eq!(Some(7u32).to_value(), Value::I64(7));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn map_round_trip_with_non_string_keys() {
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 3.5f64);
        let v = m.to_value();
        let back: BTreeMap<(u32, u32), f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_is_null() {
        let obj = Value::Object(vec![("a".into(), Value::I64(1))]);
        assert_eq!(obj.field("b").unwrap(), &Value::Null);
        assert_eq!(obj.field("a").unwrap(), &Value::I64(1));
    }

    #[test]
    fn big_u64_round_trip() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn arc_slice_round_trip() {
        let arc: Arc<[(u32, f64)]> = vec![(1, 0.5), (2, 0.25)].into();
        let back: Arc<[(u32, f64)]> = Deserialize::from_value(&arc.to_value()).unwrap();
        assert_eq!(&*back, &*arc);
    }
}
