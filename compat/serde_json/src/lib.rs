//! Offline stand-in for `serde_json`: renders the stand-in `serde` [`Value`] tree to JSON
//! text and parses it back. Covers exactly the API this workspace uses
//! (`to_string_pretty`, `to_string`, `from_str`, `Error`).
//!
//! Numbers round-trip losslessly: integers are written as integers, floats with Rust's
//! shortest round-trip representation (`{:?}`). Non-finite floats serialize as `null`
//! (JSON has no representation for them) and deserialize back as `NaN`.

use serde::{Deserialize, Serialize, Value};

/// The error type for JSON encoding/decoding (shared with the stand-in `serde`).
pub type Error = serde::Error;

/// Serializes a value as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// --- writing ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let repr = format!("{x:?}");
                out.push_str(&repr);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{:?}`",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_tree() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::I64(-3), Value::F64(0.125), Value::Null]),
            ),
            ("s".into(), Value::Str("hi \"there\"\nline".into())),
            ("big".into(), Value::U64(u64::MAX)),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456789.12345679, -2.5e30] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let text = to_string(&Value::I64(42)).unwrap();
        assert_eq!(text, "42");
        let back: Value = from_str("42").unwrap();
        assert_eq!(back, Value::I64(42));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::I64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
