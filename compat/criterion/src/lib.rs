//! Offline stand-in for `criterion`: the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`, `Bencher::iter`,
//! `black_box`), backed by a small median-of-samples timing loop instead of criterion's
//! full statistical machinery.
//!
//! Each benchmark is warmed up, then timed for `sample_size` samples; the reported figure
//! is the median ns/iteration. Results print to stdout in a stable, greppable format:
//! `bench: <name> ... median <N> ns/iter (<samples> samples x <iters> iters)`, and are also
//! collected so external runners can read machine totals via [`Criterion::results`].

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as passed to `bench_function`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns_per_iter: f64,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock time for one sample, used to pick iterations per sample.
    target_sample_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            target_sample_time: Duration::from_millis(25),
            warm_up_time: Duration::from_millis(150),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the per-sample measurement-time target.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_sample_time = d
            .checked_div(self.sample_size as u32)
            .unwrap_or(d)
            .max(Duration::from_millis(1));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            ns_per_iter: Vec::new(),
            last_iters: 0,
            config: BenchConfig {
                sample_size: self.sample_size,
                target_sample_time: self.target_sample_time,
                warm_up_time: self.warm_up_time,
            },
        };
        f(&mut bencher);
        let result = bencher.finish(name);
        println!(
            "bench: {} ... median {:.1} ns/iter ({} samples x {} iters)",
            result.name, result.median_ns_per_iter, result.samples, result.iters_per_sample
        );
        self.results.push(result);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[derive(Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    target_sample_time: Duration,
    warm_up_time: Duration,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code under test.
pub struct Bencher {
    ns_per_iter: Vec<f64>,
    last_iters: u64,
    config: BenchConfig,
}

impl Bencher {
    /// Times `f`, storing per-iteration figures. The routine warms up, chooses an iteration
    /// count that makes one sample ~the target sample time, then takes the samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, measuring a rough per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let rough_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
        let iters_per_sample =
            ((self.config.target_sample_time.as_nanos() as f64 / rough_ns) as u64).clamp(1, 50_000_000);

        self.ns_per_iter.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.ns_per_iter.push(elapsed / iters_per_sample as f64);
        }
        self.last_iters = iters_per_sample;
    }

    fn finish(self, name: &str) -> BenchResult {
        let mut samples = self.ns_per_iter;
        let iters = self.last_iters;
        if samples.is_empty() {
            samples.push(0.0);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = samples.len() / 2;
        let median = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) / 2.0
        } else {
            samples[mid]
        };
        BenchResult {
            name: name.to_string(),
            median_ns_per_iter: median,
            iters_per_sample: iters,
            samples: samples.len(),
        }
    }
}

/// Runs each group passed to it (generated by [`criterion_group!`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Declares a benchmark group, with or without an explicit config expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_function() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "noop_sum");
        assert!(results[0].median_ns_per_iter > 0.0);
    }
}
