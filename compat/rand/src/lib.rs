//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the exact surface this workspace uses: the [`Rng`] extension trait with
//! `gen_range` (over `Range` and `RangeInclusive` of the common integer/float types) and
//! `gen_bool`, plus [`SeedableRng`] with `seed_from_u64`. Generators implement [`RngCore`];
//! `rand_chacha` supplies the ChaCha8 generator the workspace seeds everywhere.
//!
//! Sampling details (stable across the workspace, since benchmarks and tests rely on
//! determinism): integer ranges use Lemire-style multiply-shift rejection-free mapping
//! (bias < 2^-64 for the span sizes used here); float ranges use 53 random mantissa bits.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 (matching the
    /// convention of rand 0.8's default implementation in spirit, not bit-for-bit).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Multiplies a random word onto a span without modulo bias (widening multiply-shift).
fn scale_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                (low as $wide).wrapping_add(scale_u64(rng, span) as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as $wide).wrapping_add(scale_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + unit * (high - low);
                // Guard against rounding up to the excluded endpoint.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// The user-facing extension trait: every [`RngCore`] is an [`Rng`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let a: i64 = rng.gen_range(55..115);
            assert!((55..115).contains(&a));
            let b: usize = rng.gen_range(0..=3);
            assert!(b <= 3);
            let c: f64 = rng.gen_range(0.85..1.15);
            assert!((0.85..1.15).contains(&c));
            let d: u8 = rng.gen_range(0..26u8);
            assert!(d < 26);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_is_roughly_right() {
        let mut rng = Counter(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn inclusive_u64_full_span() {
        let mut rng = Counter(5);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
