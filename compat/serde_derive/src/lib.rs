//! Offline stand-in for `serde_derive`.
//!
//! A hand-written implementation of `#[derive(Serialize)]` / `#[derive(Deserialize)]` that
//! parses the item declaration directly from the raw [`TokenStream`] — no `syn`, no `quote`
//! (crates.io is unreachable in this build environment). It supports exactly the shapes
//! this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (any arity, fields may be private — derives expand in-crate),
//! * enums with unit, named-field and tuple variants,
//! * no generic parameters (none of the workspace's serialized types are generic).
//!
//! The generated code targets the value-model traits in the stand-in `serde` crate
//! (`Serialize::to_value` / `Deserialize::from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic types (deriving on `{name}`)");
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("serde derives only apply to structs and enums, found `{other}`"),
    };
    Item { name, shape }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, returning the field names. Commas inside angle
/// brackets (`BTreeMap<K, V>`) are not separators; angle depth is tracked across the flat
/// punct stream (`<` / `>` are individual puncts even in `>>`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Skips one type, stopping at a top-level `,` (or end of stream).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

// --- code generation -------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    VariantShape::Named(fields) => {
                        let bind = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {bind} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(::std::vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                    VariantShape::Tuple(arity) => {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(inner.index({i})?)?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}({})),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                r#"match v {{
                    ::serde::Value::Str(s) => match s.as_str() {{
                        {unit_arms}
                        other => ::std::result::Result::Err(::serde::Error::custom(
                            ::std::format!("unknown variant `{{other}}` of {name}"))),
                    }},
                    ::serde::Value::Object(pairs) if pairs.len() == 1 => {{
                        let (tag, inner) = &pairs[0];
                        match tag.as_str() {{
                            {data_arms}
                            other => ::std::result::Result::Err(::serde::Error::custom(
                                ::std::format!("unknown variant `{{other}}` of {name}"))),
                        }}
                    }}
                    other => ::std::result::Result::Err(::serde::Error::custom(
                        ::std::format!("expected {name} variant, found {{}}", other.kind()))),
                }}"#,
                unit_arms = unit_arms.join("\n                        "),
                data_arms = data_arms.join("\n                            "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}"
    )
}
