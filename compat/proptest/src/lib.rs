//! Offline stand-in for `proptest`, covering the subset this workspace's tests use:
//! the `proptest! { #![proptest_config(...)] #[test] fn case(arg in strategy, ...) { .. } }`
//! macro over numeric range strategies, plus `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics immediately, printing
//! the sampled arguments (which, with the fixed per-case seeding below, are reproducible).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test case (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies; deterministic per (property, case index).
pub type TestRng = ChaCha8Rng;

/// Builds the RNG for one case of one property. Seeded from the property name so adding a
/// property does not reshuffle its neighbours' inputs.
pub fn case_rng(property_name: &str, case_index: u32) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in property_name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(hash ^ ((case_index as u64) << 32 | case_index as u64))
}

/// Something that can produce values for a property argument.
pub trait Strategy {
    /// The produced value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed list of candidate values, sampled uniformly.
impl<T: Clone + std::fmt::Debug, const N: usize> Strategy for [T; N] {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self[rng.gen_range(0..N)].clone()
    }
}

/// `bool` values.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// The `proptest!` block macro: expands each contained property into a `#[test]` that runs
/// the body over `cases` sampled argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case_index in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case_index);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case_index + 1,
                        config.cases,
                        error,
                        format!(concat!($(stringify!($arg), " = {:?} "),+), $($arg),+),
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Asserts inside a `proptest!` body, failing the case (with context) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, proptest, AnyBool, ProptestConfig, Strategy, TestCaseError,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 0u64..100, y in -1.0f64..1.0, z in 3usize..=5) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y), "y was {y}");
            prop_assert!((3..=5).contains(&z));
        }

        #[test]
        fn eq_assertion_works(a in 0i32..50) {
            prop_assert_eq!(a + a, 2 * a);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut r1 = case_rng("some_prop", 3);
        let mut r2 = case_rng("some_prop", 3);
        let s1: f64 = Strategy::sample(&(0.0f64..1.0), &mut r1);
        let s2: f64 = Strategy::sample(&(0.0f64..1.0), &mut r2);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1_000, "x is only {x}");
            }
        }
        always_fails();
    }
}
