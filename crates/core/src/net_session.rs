//! Network-in-the-loop chat turns: [`NetworkedChatSession`].
//!
//! [`crate::ChatSession`] answers the paper's *compute* question — what one conversational
//! turn costs the client and the cloud. This module answers the *network* question of
//! §2.2 / Figure 3: what happens to a turn when its packets traverse a real (emulated)
//! uplink whose capacity varies over time. Every frame of a turn closes the loop
//!
//! ```text
//! BandwidthTrace ──► Link ──► per-packet feedback ──► GccController ──► AbrPolicy
//!       ▲                                                                  │
//!       └── FEC/NACK recovery ◄── packetize ◄── encode_at_bitrate ◄────────┘
//! ```
//!
//! so the target bitrate, per-frame transmission latency, the set of frames (and frame
//! *fractions*) that reach the decoder, and ultimately the MLLM's answer accuracy are all
//! functions of the network — which is exactly the regime in which the paper argues for
//! `AiOriented` over `Traditional` ABR.
//!
//! Since the simulation-kernel refactor the event loop itself lives in the shared turn
//! engine (`net_turn`, an [`aivc_sim::Actor`] over the `aivc-sim` kernel) and this type is
//! the *single-turn* driver of it: every [`NetworkedChatSession::run_turn`] starts a fresh
//! transport timeline at `t = 0` with an empty bottleneck queue — identical options and
//! seeds reproduce bit-identical [`NetTurnReport`]s, which the scenario engine
//! ([`crate::scenarios`]) relies on for its golden regression fixtures. The
//! [`GccController`] still persists across turns (a conversation keeps its bandwidth
//! knowledge). For the *continuous* timeline — one link, trace cursor, pacer backlog and
//! in-flight packet set shared by every turn — see [`crate::Conversation`].

use crate::context_aware::StreamerConfig;
use crate::net_turn::{run_turn_window, NetCompute, Transport};
use crate::session::StreamingMode;
use aivc_mllm::{Answer, Question};
use aivc_netsim::PathConfig;
use aivc_rtc::cc::{GccConfig, GccController};
use aivc_rtc::fec::FecConfig;
use aivc_rtc::nack::NackConfig;
use aivc_rtc::AbrPolicy;
use aivc_scene::Frame;
use aivc_semantics::ClipModel;
use aivc_sim::Simulation;
use serde::{Deserialize, Serialize};

/// Options of one networked chat session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetSessionOptions {
    /// Seed for every stochastic component (network loss, jitter, MLLM answer draws).
    pub seed: u64,
    /// The network path; the uplink's [`aivc_netsim::BandwidthTrace`] + loss model are what
    /// the turn adapts to.
    pub path: PathConfig,
    /// The sender's rate objective (the Figure 3 grey-vs-yellow-region choice).
    pub abr: AbrPolicy,
    /// The sender's encoding method: context-aware Eq. 2 QP allocation (the paper's
    /// system) or the uniform-QP WebRTC baseline.
    pub mode: StreamingMode,
    /// Congestion-controller parameters.
    pub gcc: GccConfig,
    /// Forward error correction on media packets.
    pub fec: FecConfig,
    /// NACK/retransmission behaviour.
    pub nack: NackConfig,
    /// Whether lost packets are retransmitted.
    pub enable_retransmission: bool,
    /// Deadline-aware NACK suppression: when true, the receiver drops (never sends) a
    /// retransmission request whose expected arrival — RTT estimate plus a pacing guard —
    /// lands past the turn's conversational deadline; such an RTX is wasted uplink that
    /// competes with the next frame's media. Off by default (the pre-kernel behaviour the
    /// single-turn golden fixtures pin); conversation scenarios enable it.
    pub deadline_aware_nack: bool,
    /// Capture rate of the turn window in frames per second.
    pub capture_fps: f64,
    /// How long after the last capture the receiver keeps collecting in-flight packets
    /// before the MLLM must answer (the conversational deadline).
    pub drain_secs: f64,
    /// Size of a feedback (NACK) packet on the wire, in bytes.
    pub feedback_packet_bytes: u32,
}

impl NetSessionOptions {
    /// AI-oriented defaults: context-aware encoding with the ABR at the paper's ~430 Kbps
    /// accuracy floor, FEC protecting every 4-packet group, NACK recovery on.
    pub fn ai_oriented(seed: u64, path: PathConfig) -> Self {
        Self {
            seed,
            path,
            abr: AbrPolicy::ai_oriented(430_000.0),
            mode: StreamingMode::ContextAware,
            gcc: GccConfig::default(),
            fec: FecConfig::with_group_size(4),
            nack: NackConfig::default(),
            enable_retransmission: true,
            deadline_aware_nack: false,
            capture_fps: 12.0,
            // The conversational response budget (§1's 300 ms): frames still in flight
            // this long after the question was asked miss the answer.
            drain_secs: 0.3,
            feedback_packet_bytes: 80,
        }
    }

    /// Traditional WebRTC-style defaults: uniform-QP encoding riding the bandwidth
    /// estimate at 85 % utilization, same recovery machinery as
    /// [`NetSessionOptions::ai_oriented`].
    pub fn traditional(seed: u64, path: PathConfig) -> Self {
        Self {
            abr: AbrPolicy::traditional(),
            mode: StreamingMode::Baseline,
            ..Self::ai_oriented(seed, path)
        }
    }
}

/// The report of one networked chat turn — plain values only, so server slots can replace
/// reports in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetTurnReport {
    /// The MLLM's answer over everything the receiver could decode before the deadline.
    pub answer: Answer,
    /// Frames handed to the transport.
    pub frames_sent: usize,
    /// Frames completely received before the deadline.
    pub frames_delivered: usize,
    /// Frames the decoder produced output for (at least one packet arrived; incomplete
    /// frames decode with concealment on the missing blocks).
    pub frames_decoded: usize,
    /// Mean per-frame ABR target over the turn, in bits per second.
    pub mean_target_bitrate_bps: f64,
    /// Mean encoded media bitrate actually produced, in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Unique media payload bits that reached the receiver, per second of turn window.
    pub goodput_bps: f64,
    /// Median per-frame transmission latency (send start → complete reception) in ms.
    pub p50_frame_latency_ms: f64,
    /// 95th-percentile per-frame transmission latency in ms.
    pub p95_frame_latency_ms: f64,
    /// Uplink packets that did not reach the receiver (random loss + queue drops).
    pub packets_lost: u64,
    /// Frames with at least one FEC-recovered packet.
    pub fec_recovered_frames: u64,
    /// Retransmission packets sent.
    pub retransmissions_sent: u64,
    /// The congestion controller's bandwidth estimate when the turn ended.
    pub final_estimate_bps: f64,
}

impl NetTurnReport {
    /// The all-zero report server slots start from.
    pub fn placeholder() -> Self {
        Self {
            answer: Answer::default(),
            frames_sent: 0,
            frames_delivered: 0,
            frames_decoded: 0,
            mean_target_bitrate_bps: 0.0,
            achieved_bitrate_bps: 0.0,
            goodput_bps: 0.0,
            p50_frame_latency_ms: 0.0,
            p95_frame_latency_ms: 0.0,
            packets_lost: 0,
            fec_recovered_frames: 0,
            retransmissions_sent: 0,
            final_estimate_bps: 0.0,
        }
    }
}

/// One long-lived AI Video Chat session whose turns run through the emulated network.
///
/// The compute stages (CLIP → Eq. 2 → ROI encode → decode → MLLM) are the same ones
/// [`crate::ChatSession`] runs, with the same scratch-reuse structure; what changes is that
/// each frame's **bitrate target comes from the congestion controller** and each frame's
/// **decodable bytes come from the emulated link**. The [`GccController`] persists across
/// turns (a conversation keeps its bandwidth knowledge); transport time restarts at zero
/// each turn with an empty bottleneck queue — use [`crate::Conversation`] when the
/// transport itself should persist.
#[derive(Debug, Clone)]
pub struct NetworkedChatSession {
    compute: NetCompute,
    gcc: GccController,
}

impl NetworkedChatSession {
    /// Creates a session with explicit compute configuration.
    pub fn new(options: NetSessionOptions, config: StreamerConfig, clip_model: ClipModel) -> Self {
        Self {
            gcc: GccController::new(options.gcc),
            compute: NetCompute::new(options, config, clip_model),
        }
    }

    /// A session with the paper's compute defaults (γ = 3 allocator, medium-preset encoder,
    /// Mobile-CLIP-class model).
    pub fn with_defaults(options: NetSessionOptions) -> Self {
        Self::new(options, StreamerConfig::default(), ClipModel::mobile_default())
    }

    /// The session options.
    pub fn options(&self) -> &NetSessionOptions {
        &self.compute.options
    }

    /// The congestion controller's current bandwidth estimate in bits per second.
    pub fn bandwidth_estimate_bps(&self) -> f64 {
        self.gcc.estimate_bps()
    }

    /// Runs one networked chat turn over a window of captured frames.
    ///
    /// Frame `i` is captured at simulated time `i / capture_fps`. At each capture the
    /// sender first ingests every feedback report that has had time to travel back, updates
    /// the GCC estimate, asks the ABR policy for a target and encodes the frame to that
    /// budget (QP-offset search on the Eq. 2 map); packets are FEC-protected, paced, and
    /// pushed through the emulated uplink, with NACK/RTX and FEC recovery racing the
    /// conversational deadline. After `drain_secs` past the last capture, whatever arrived
    /// is decoded (missing blocks conceal) and the MLLM answers.
    ///
    /// The transport timeline is fresh per call (clock at zero, empty queue, packets in
    /// flight at the deadline discarded) — the single-turn semantics the golden fixtures
    /// pin down.
    pub fn run_turn(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        let mut transport = Transport::new(&self.compute.options, self.gcc.estimate_bps());
        let mut sim = Simulation::new();
        run_turn_window(
            &mut self.compute,
            &mut self.gcc,
            &mut transport,
            &mut sim,
            frames,
            question,
        )
    }
}

/// A convenience used by the scenario engine: a queue sized to `queue_ms` of buffering at
/// `nominal_bps` — how testbeds provision the bottleneck buffer for a trace whose rates
/// vary around a nominal capacity.
pub fn queue_bytes_for(nominal_bps: f64, queue_ms: u64) -> u64 {
    ((nominal_bps / 8.0) * (queue_ms as f64 / 1_000.0)).max(3_000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_netsim::{BandwidthTrace, LinkConfig, LossModel, SimDuration, SimTime};
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn window(fps: f64, secs: f64) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        let start = source.duration_secs() - secs;
        let count = (secs * fps) as usize;
        (0..count)
            .map(|i| source.frame_at(start + i as f64 / fps))
            .collect()
    }

    fn question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    fn good_path() -> PathConfig {
        PathConfig::paper_section_2_2(0.01)
    }

    fn stepdown_path() -> PathConfig {
        PathConfig {
            uplink: LinkConfig {
                bandwidth: BandwidthTrace::step(8e6, 1.2e6, SimTime::from_secs_f64(1.5)),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(8e6, 300),
                loss: LossModel::Iid { rate: 0.01 },
                max_jitter: SimDuration::ZERO,
            },
            downlink: LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None),
        }
    }

    #[test]
    fn networked_turn_completes_and_answers_on_a_good_link() {
        let mut session = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(3, good_path()));
        let frames = window(12.0, 3.0);
        let report = session.run_turn(&frames, &question());
        assert_eq!(report.frames_sent, frames.len());
        assert!(report.frames_delivered > frames.len() * 9 / 10);
        assert!(
            report.answer.probability_correct > 0.7,
            "p {}",
            report.answer.probability_correct
        );
        // AI-oriented stays near the accuracy floor, far below the 10 Mbps capacity.
        assert!(report.mean_target_bitrate_bps < 1_000_000.0);
        assert!(report.p50_frame_latency_ms >= 30.0);
        assert!(
            report.p95_frame_latency_ms < 120.0,
            "p95 {}",
            report.p95_frame_latency_ms
        );
    }

    #[test]
    fn turns_are_deterministic() {
        let run = || {
            let mut session =
                NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(7, stepdown_path()));
            session.run_turn(&window(12.0, 3.0), &question())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traditional_abr_rides_the_estimate_higher_than_ai_oriented() {
        let frames = window(12.0, 3.0);
        let mut trad = NetworkedChatSession::with_defaults(NetSessionOptions::traditional(5, good_path()));
        let mut ai = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(5, good_path()));
        let trad_report = trad.run_turn(&frames, &question());
        let ai_report = ai.run_turn(&frames, &question());
        assert!(
            trad_report.mean_target_bitrate_bps > ai_report.mean_target_bitrate_bps * 2.0,
            "trad {} vs ai {}",
            trad_report.mean_target_bitrate_bps,
            ai_report.mean_target_bitrate_bps
        );
    }

    #[test]
    fn step_down_punishes_traditional_more_than_ai_oriented() {
        let frames = window(12.0, 3.0);
        let q = question();
        let mut trad_opts = NetSessionOptions::traditional(11, stepdown_path());
        trad_opts.gcc.initial_estimate_bps = 2_500_000.0;
        let mut ai_opts = NetSessionOptions::ai_oriented(11, stepdown_path());
        ai_opts.gcc.initial_estimate_bps = 2_500_000.0;
        let trad_report = NetworkedChatSession::with_defaults(trad_opts).run_turn(&frames, &q);
        let ai_report = NetworkedChatSession::with_defaults(ai_opts).run_turn(&frames, &q);
        // The paper's §3.2 / Figure 3 contract: the accuracy floor *maintains* answer
        // accuracy while the estimate-rider loses frames to the collapsed link...
        assert!(u8::from(ai_report.answer.correct) >= u8::from(trad_report.answer.correct));
        assert!(
            ai_report.answer.probability_correct >= trad_report.answer.probability_correct - 0.005,
            "ai {} vs trad {}",
            ai_report.answer.probability_correct,
            trad_report.answer.probability_correct
        );
        assert!(ai_report.frames_delivered > trad_report.frames_delivered);
        // ...at an order of magnitude lower tail latency and less than half the bits.
        assert!(
            ai_report.p95_frame_latency_ms < trad_report.p95_frame_latency_ms / 3.0,
            "ai p95 {} vs trad p95 {}",
            ai_report.p95_frame_latency_ms,
            trad_report.p95_frame_latency_ms
        );
        assert!(ai_report.goodput_bps < trad_report.goodput_bps / 2.0);
    }

    #[test]
    fn gcc_estimate_persists_across_turns() {
        let mut session =
            NetworkedChatSession::with_defaults(NetSessionOptions::traditional(13, good_path()));
        let frames = window(12.0, 2.0);
        let q = question();
        let initial = session.bandwidth_estimate_bps();
        session.run_turn(&frames, &q);
        let after_one = session.bandwidth_estimate_bps();
        assert_ne!(initial, after_one);
        // A later turn starts from the learned estimate, not from the configured initial.
        let second = session.run_turn(&frames, &q);
        assert_eq!(second.final_estimate_bps, session.bandwidth_estimate_bps());
    }

    #[test]
    fn fec_recovers_frames_under_loss() {
        let mut path = good_path();
        path.uplink.loss = LossModel::Iid { rate: 0.06 };
        let mut session = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(17, path));
        let report = session.run_turn(&window(12.0, 3.0), &question());
        assert!(report.packets_lost > 0);
        assert!(
            report.fec_recovered_frames > 0 || report.retransmissions_sent > 0,
            "loss must engage a recovery mechanism"
        );
        assert!(report.frames_decoded > 0);
    }
}
