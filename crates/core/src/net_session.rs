//! Network-in-the-loop chat turns: [`NetworkedChatSession`].
//!
//! [`crate::ChatSession`] answers the paper's *compute* question — what one conversational
//! turn costs the client and the cloud. This module answers the *network* question of
//! §2.2 / Figure 3: what happens to a turn when its packets traverse a real (emulated)
//! uplink whose capacity varies over time. Every frame of a turn closes the loop
//!
//! ```text
//! BandwidthTrace ──► Link ──► per-packet feedback ──► GccController ──► AbrPolicy
//!       ▲                                                                  │
//!       └── FEC/NACK recovery ◄── packetize ◄── encode_at_bitrate ◄────────┘
//! ```
//!
//! so the target bitrate, per-frame transmission latency, the set of frames (and frame
//! *fractions*) that reach the decoder, and ultimately the MLLM's answer accuracy are all
//! functions of the network — which is exactly the regime in which the paper argues for
//! `AiOriented` over `Traditional` ABR.
//!
//! The runner is a single deterministic discrete-event loop (same style as
//! `aivc_rtc::VideoSession`): identical options and seeds reproduce bit-identical
//! [`NetTurnReport`]s, which the scenario engine ([`crate::scenarios`]) relies on for its
//! golden regression fixtures.

use crate::allocator::QpAllocator;
use crate::context_aware::StreamerConfig;
use crate::session::StreamingMode;
use aivc_mllm::{Answer, MllmChat, MllmScratch, Question};
use aivc_netsim::emulator::Direction;
use aivc_netsim::{EventQueue, LatencyStats, NetworkEmulator, Packet, PathConfig, SimTime};
use aivc_rtc::cc::{GccConfig, GccController, PacketFeedback};
use aivc_rtc::fec::{FecConfig, FecEncoder, FecRecovery};
use aivc_rtc::nack::{NackConfig, NackGenerator, RtxQueue};
use aivc_rtc::pacer::{Pacer, PacerConfig};
use aivc_rtc::packetizer::{FrameAssembler, OutgoingFrame, Packetizer};
use aivc_rtc::rtp::{PayloadKind, RtpPacket};
use aivc_rtc::AbrPolicy;
use aivc_scene::Frame;
use aivc_semantics::{ClipModel, ClipScratch, TextQuery};
use aivc_videocodec::{
    DecodeScratch, DecodedFrame, Decoder, EncodeScratch, EncodedFrame, Encoder, Qp, QpMap,
};
use serde::{Deserialize, Serialize};

/// Options of one networked chat session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetSessionOptions {
    /// Seed for every stochastic component (network loss, jitter, MLLM answer draws).
    pub seed: u64,
    /// The network path; the uplink's [`aivc_netsim::BandwidthTrace`] + loss model are what
    /// the turn adapts to.
    pub path: PathConfig,
    /// The sender's rate objective (the Figure 3 grey-vs-yellow-region choice).
    pub abr: AbrPolicy,
    /// The sender's encoding method: context-aware Eq. 2 QP allocation (the paper's
    /// system) or the uniform-QP WebRTC baseline.
    pub mode: StreamingMode,
    /// Congestion-controller parameters.
    pub gcc: GccConfig,
    /// Forward error correction on media packets.
    pub fec: FecConfig,
    /// NACK/retransmission behaviour.
    pub nack: NackConfig,
    /// Whether lost packets are retransmitted.
    pub enable_retransmission: bool,
    /// Capture rate of the turn window in frames per second.
    pub capture_fps: f64,
    /// How long after the last capture the receiver keeps collecting in-flight packets
    /// before the MLLM must answer (the conversational deadline).
    pub drain_secs: f64,
    /// Size of a feedback (NACK) packet on the wire, in bytes.
    pub feedback_packet_bytes: u32,
}

impl NetSessionOptions {
    /// AI-oriented defaults: context-aware encoding with the ABR at the paper's ~430 Kbps
    /// accuracy floor, FEC protecting every 4-packet group, NACK recovery on.
    pub fn ai_oriented(seed: u64, path: PathConfig) -> Self {
        Self {
            seed,
            path,
            abr: AbrPolicy::ai_oriented(430_000.0),
            mode: StreamingMode::ContextAware,
            gcc: GccConfig::default(),
            fec: FecConfig::with_group_size(4),
            nack: NackConfig::default(),
            enable_retransmission: true,
            capture_fps: 12.0,
            // The conversational response budget (§1's 300 ms): frames still in flight
            // this long after the question was asked miss the answer.
            drain_secs: 0.3,
            feedback_packet_bytes: 80,
        }
    }

    /// Traditional WebRTC-style defaults: uniform-QP encoding riding the bandwidth
    /// estimate at 85 % utilization, same recovery machinery as
    /// [`NetSessionOptions::ai_oriented`].
    pub fn traditional(seed: u64, path: PathConfig) -> Self {
        Self {
            abr: AbrPolicy::traditional(),
            mode: StreamingMode::Baseline,
            ..Self::ai_oriented(seed, path)
        }
    }
}

/// The report of one networked chat turn — plain values only, so server slots can replace
/// reports in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetTurnReport {
    /// The MLLM's answer over everything the receiver could decode before the deadline.
    pub answer: Answer,
    /// Frames handed to the transport.
    pub frames_sent: usize,
    /// Frames completely received before the deadline.
    pub frames_delivered: usize,
    /// Frames the decoder produced output for (at least one packet arrived; incomplete
    /// frames decode with concealment on the missing blocks).
    pub frames_decoded: usize,
    /// Mean per-frame ABR target over the turn, in bits per second.
    pub mean_target_bitrate_bps: f64,
    /// Mean encoded media bitrate actually produced, in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Unique media payload bits that reached the receiver, per second of turn window.
    pub goodput_bps: f64,
    /// Median per-frame transmission latency (send start → complete reception) in ms.
    pub p50_frame_latency_ms: f64,
    /// 95th-percentile per-frame transmission latency in ms.
    pub p95_frame_latency_ms: f64,
    /// Uplink packets that did not reach the receiver (random loss + queue drops).
    pub packets_lost: u64,
    /// Frames with at least one FEC-recovered packet.
    pub fec_recovered_frames: u64,
    /// Retransmission packets sent.
    pub retransmissions_sent: u64,
    /// The congestion controller's bandwidth estimate when the turn ended.
    pub final_estimate_bps: f64,
}

impl NetTurnReport {
    /// The all-zero report server slots start from.
    pub fn placeholder() -> Self {
        Self {
            answer: Answer::default(),
            frames_sent: 0,
            frames_delivered: 0,
            frames_decoded: 0,
            mean_target_bitrate_bps: 0.0,
            achieved_bitrate_bps: 0.0,
            goodput_bps: 0.0,
            p50_frame_latency_ms: 0.0,
            p95_frame_latency_ms: 0.0,
            packets_lost: 0,
            fec_recovered_frames: 0,
            retransmissions_sent: 0,
            final_estimate_bps: 0.0,
        }
    }
}

/// Events of the networked turn's discrete-event loop.
enum NetEvent {
    /// Frame `i` of the turn window is captured: drain mature feedback into GCC, pick the
    /// ABR target, encode at that target, packetize + protect + pace onto the uplink.
    Capture(usize),
    /// A packet leaves the pacer and enters the uplink.
    SendUplink(RtpPacket),
    /// A packet arrives at the receiver.
    UplinkArrival(RtpPacket),
    /// The receiver checks for due NACKs.
    ReceiverPoll,
    /// A feedback packet (NACKed sequences) arrives back at the sender.
    FeedbackArrival(Vec<u64>),
}

/// Per-frame transport bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct NetFrameProgress {
    send_start: Option<SimTime>,
    fec_recovered: bool,
}

/// One long-lived AI Video Chat session whose turns run through the emulated network.
///
/// The compute stages (CLIP → Eq. 2 → ROI encode → decode → MLLM) are the same ones
/// [`crate::ChatSession`] runs, with the same scratch-reuse structure; what changes is that
/// each frame's **bitrate target comes from the congestion controller** and each frame's
/// **decodable bytes come from the emulated link**. The [`GccController`] persists across
/// turns (a conversation keeps its bandwidth knowledge); transport time restarts at zero
/// each turn with an empty bottleneck queue.
#[derive(Debug, Clone)]
pub struct NetworkedChatSession {
    options: NetSessionOptions,
    clip_model: ClipModel,
    allocator: QpAllocator,
    encoder: Encoder,
    decoder: Decoder,
    responder: MllmChat,
    gcc: GccController,
    // --- reusable per-frame state ---
    clip: ClipScratch,
    qp_map: QpMap,
    /// Scratch map the rate-control search refills per probed level.
    probe_map: QpMap,
    encode_scratches: Vec<EncodeScratch>,
    /// Scratch output for the QP-offset search.
    probe_encoded: EncodedFrame,
    /// The committed encode of each turn slot (needed again at decode time).
    encoded_slots: Vec<EncodedFrame>,
    decode_scratch: DecodeScratch,
    decoded: Vec<DecodedFrame>,
    mllm: MllmScratch,
    cached_question: Option<Question>,
    query: TextQuery,
}

impl NetworkedChatSession {
    /// Creates a session with explicit compute configuration.
    pub fn new(options: NetSessionOptions, config: StreamerConfig, clip_model: ClipModel) -> Self {
        Self {
            gcc: GccController::new(options.gcc),
            allocator: QpAllocator::new(config.allocator),
            encoder: Encoder::new(config.encoder),
            decoder: Decoder::new(),
            responder: MllmChat::responder(options.seed ^ 0x5EED),
            clip_model,
            options,
            clip: ClipScratch::new(),
            qp_map: QpMap::empty(),
            probe_map: QpMap::empty(),
            encode_scratches: Vec::new(),
            probe_encoded: EncodedFrame::placeholder(),
            encoded_slots: Vec::new(),
            decode_scratch: DecodeScratch::new(),
            decoded: Vec::new(),
            mllm: MllmScratch::new(),
            cached_question: None,
            query: TextQuery::from_concepts("", std::iter::empty::<String>()),
        }
    }

    /// A session with the paper's compute defaults (γ = 3 allocator, medium-preset encoder,
    /// Mobile-CLIP-class model).
    pub fn with_defaults(options: NetSessionOptions) -> Self {
        Self::new(options, StreamerConfig::default(), ClipModel::mobile_default())
    }

    /// The session options.
    pub fn options(&self) -> &NetSessionOptions {
        &self.options
    }

    /// The congestion controller's current bandwidth estimate in bits per second.
    pub fn bandwidth_estimate_bps(&self) -> f64 {
        self.gcc.estimate_bps()
    }

    /// Runs one networked chat turn over a window of captured frames.
    ///
    /// Frame `i` is captured at simulated time `i / capture_fps`. At each capture the
    /// sender first ingests every feedback report that has had time to travel back, updates
    /// the GCC estimate, asks the ABR policy for a target and encodes the frame to that
    /// budget (QP-offset search on the Eq. 2 map); packets are FEC-protected, paced, and
    /// pushed through the emulated uplink, with NACK/RTX and FEC recovery racing the
    /// conversational deadline. After `drain_secs` past the last capture, whatever arrived
    /// is decoded (missing blocks conceal) and the MLLM answers.
    pub fn run_turn(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        assert!(!frames.is_empty(), "a chat turn needs at least one frame");
        let opts = self.options.clone();
        self.refresh_query(question);

        let fps = opts.capture_fps;
        let frame_interval_us = (1e6 / fps).round() as u64;
        let capture_ts = |i: usize| -> u64 { i as u64 * frame_interval_us };
        let horizon_us = capture_ts(frames.len() - 1) + (opts.drain_secs.max(0.0) * 1e6).round() as u64;

        // --- Transport state (fresh each turn; the GCC persists across turns).
        let mut emulator = NetworkEmulator::new(opts.path.clone(), opts.seed);
        let mut events: EventQueue<NetEvent> = EventQueue::new();
        let mut packetizer = Packetizer::default();
        let mut pacer = Pacer::new(PacerConfig::from_target_bitrate(self.gcc.estimate_bps(), 2.5));
        let mut rtx = RtxQueue::new();
        let fec_encoder = FecEncoder::new(opts.fec);
        let mut fec_recovery = FecRecovery::new();
        let mut assembler = FrameAssembler::new();
        let mut nack_gen = NackGenerator::new(opts.nack);
        let mut progress: Vec<NetFrameProgress> = vec![NetFrameProgress::default(); frames.len()];
        let mut outgoing: Vec<OutgoingFrame> = Vec::with_capacity(frames.len());
        // First media sequence of each frame, so a FEC-recovered packet index maps back to
        // its original sequence number (media sequences are contiguous per frame).
        let mut media_first_seq: Vec<u64> = Vec::with_capacity(frames.len());
        // Sequence → (frame index, media packet index) for FEC-group reconstruction.
        let mut seq_to_media: std::collections::BTreeMap<u64, (usize, usize)> =
            std::collections::BTreeMap::new();
        let mut media: Vec<RtpPacket> = Vec::new();
        let mut poll_outstanding = false;
        let mut next_net_packet_id: u64 = 0;

        // Feedback the receiver has produced but the sender has not yet seen:
        // (time the sender learns the packet's fate, the per-packet feedback).
        let mut cc_pending: Vec<(u64, PacketFeedback)> = Vec::new();
        let mut cc_batch: Vec<PacketFeedback> = Vec::new();
        let up_prop_us = opts.path.uplink.propagation_delay.as_micros();
        let down_prop_us = opts.path.downlink.propagation_delay.as_micros();

        let max_payload = Packetizer::default().max_payload() as u64;
        let media_packet_range = |size_bytes: u64, index: usize| -> (u64, u64) {
            let start = index as u64 * max_payload;
            let end = ((index as u64 + 1) * max_payload).min(size_bytes);
            (start, end)
        };

        let mut packets_lost: u64 = 0;
        let mut retransmissions_sent: u64 = 0;
        let mut target_sum = 0.0f64;

        for i in 0..frames.len() {
            events.push(SimTime::from_micros(capture_ts(i)), NetEvent::Capture(i));
        }

        while let Some((now, event)) = events.pop() {
            if now.as_micros() > horizon_us {
                break;
            }
            match event {
                NetEvent::Capture(i) => {
                    // --- Close the loop: everything the sender has learned by now.
                    cc_batch.clear();
                    cc_pending.retain(|(known_at, fb)| {
                        if *known_at <= now.as_micros() {
                            cc_batch.push(*fb);
                            false
                        } else {
                            true
                        }
                    });
                    if !cc_batch.is_empty() {
                        self.gcc.on_feedback_report(&cc_batch);
                    }
                    let target_bps = opts.abr.target_bitrate(self.gcc.estimate_bps());
                    target_sum += target_bps;
                    pacer.set_rate(target_bps * 2.5, now);

                    // --- Encode frame i to the per-frame budget the target implies.
                    let budget_bits = target_bps / fps;
                    self.encode_slot_to_budget(i, &frames[i], budget_bits);
                    let encoded = &self.encoded_slots[i];
                    let frame_out = OutgoingFrame {
                        frame_id: i as u64,
                        capture_ts_us: capture_ts(i),
                        size_bytes: encoded.total_bytes(),
                        is_keyframe: encoded.frame_type == aivc_videocodec::FrameType::Intra,
                    };
                    outgoing.push(frame_out);
                    assembler.expect_frame(&frame_out);

                    // --- Packetize, protect, pace.
                    packetizer.packetize_into(&frame_out, &mut media);
                    if opts.fec.is_enabled() {
                        for (pi, p) in media.iter_mut().enumerate() {
                            p.fec_group = fec_encoder.group_of(pi);
                        }
                    }
                    let parity = fec_encoder.protect(&media, || packetizer.allocate_sequence());
                    media_first_seq.push(media[0].header.sequence);
                    for (pi, p) in media.iter().enumerate() {
                        seq_to_media.insert(p.header.sequence, (i, pi));
                        rtx.remember(p);
                        let when = pacer.schedule_send(p.wire_size(), now);
                        events.push(when, NetEvent::SendUplink(*p));
                    }
                    for p in &parity {
                        let when = pacer.schedule_send(p.wire_size(), now);
                        events.push(when, NetEvent::SendUplink(*p));
                    }
                }
                NetEvent::SendUplink(packet) => {
                    let frame_idx = packet.header.frame_id as usize;
                    if let Some(entry) = progress.get_mut(frame_idx) {
                        if entry.send_start.is_none() && packet.header.kind == PayloadKind::Media {
                            entry.send_start = Some(now);
                        }
                    }
                    if packet.header.kind == PayloadKind::Retransmission {
                        retransmissions_sent += 1;
                    }
                    let net_packet = Packet::new(next_net_packet_id, packet.wire_size(), now)
                        .with_flow(0)
                        .with_tag(packet.header.sequence);
                    next_net_packet_id += 1;
                    let outcome = emulator.send(Direction::Uplink, &net_packet, now);
                    match outcome.arrival() {
                        Some(arrival) => {
                            events.push(arrival, NetEvent::UplinkArrival(packet));
                            // The receiver's next report reaches the sender one downlink
                            // propagation after arrival.
                            cc_pending.push((
                                arrival.as_micros() + down_prop_us,
                                PacketFeedback {
                                    sent_at: now,
                                    arrived_at: Some(arrival),
                                    size_bytes: packet.wire_size(),
                                },
                            ));
                        }
                        None => {
                            packets_lost += 1;
                            // The sender infers the loss from the gap in the next report:
                            // roughly one RTT plus a reporting guard after the send.
                            cc_pending.push((
                                now.as_micros() + up_prop_us + down_prop_us + 20_000,
                                PacketFeedback {
                                    sent_at: now,
                                    arrived_at: None,
                                    size_bytes: packet.wire_size(),
                                },
                            ));
                        }
                    }
                }
                NetEvent::UplinkArrival(packet) => {
                    nack_gen.on_packet(packet.header.sequence, now);
                    // A group becomes XOR-recoverable when its *last-but-one* packet shows
                    // up — which can be the parity packet or a late media/RTX arrival — so
                    // every arrival nominates its group for a recovery check below.
                    let mut fec_candidate: Option<(usize, u32)> = None;
                    match packet.header.kind {
                        PayloadKind::Media | PayloadKind::Retransmission => {
                            assembler.on_packet(&packet, now);
                            if opts.fec.is_enabled() {
                                if let Some((fi, media_idx)) =
                                    seq_to_media.get(&packet.header.sequence).copied()
                                {
                                    if let Some(group) = fec_encoder.group_of(media_idx) {
                                        fec_recovery.on_media(fi as u64, group, media_idx);
                                        fec_candidate = Some((fi, group));
                                    }
                                }
                            }
                        }
                        PayloadKind::Fec => {
                            let frame_idx = packet.header.frame_id as usize;
                            if let (Some(group), Some(frame)) = (packet.fec_group, outgoing.get(frame_idx)) {
                                let count = (frame.size_bytes.div_ceil(max_payload).max(1)) as usize;
                                for pi in 0..count {
                                    if fec_encoder.group_of(pi) == Some(group) {
                                        fec_recovery.expect_media(frame.frame_id, group, pi);
                                    }
                                }
                                fec_recovery.on_parity(frame.frame_id, group);
                                fec_candidate = Some((frame_idx, group));
                            }
                        }
                        PayloadKind::Feedback => {}
                    }
                    if let Some((frame_idx, group)) = fec_candidate {
                        if let Some(frame) = outgoing.get(frame_idx) {
                            for recovered in fec_recovery.recoverable(frame.frame_id, group) {
                                let (start, end) = media_packet_range(frame.size_bytes, recovered);
                                let synthetic = RtpPacket {
                                    header: packet.header,
                                    payload_start: start,
                                    payload_end: end,
                                    fec_group: Some(group),
                                };
                                assembler.on_packet(&synthetic, now);
                                // Mark the reconstructed packet received so the group is
                                // not re-recovered, and cancel its pending NACK — the
                                // receiver holds the bytes, retransmitting them would
                                // waste constrained uplink capacity.
                                fec_recovery.on_media(frame.frame_id, group, recovered);
                                nack_gen.on_packet(media_first_seq[frame_idx] + recovered as u64, now);
                                progress[frame_idx].fec_recovered = true;
                            }
                        }
                    }
                    if opts.enable_retransmission && nack_gen.pending_count() > 0 && !poll_outstanding {
                        poll_outstanding = true;
                        events.push(now + opts.nack.reorder_guard, NetEvent::ReceiverPoll);
                    }
                }
                NetEvent::ReceiverPoll => {
                    poll_outstanding = false;
                    if !opts.enable_retransmission {
                        continue;
                    }
                    let due = nack_gen.due_nacks(now);
                    if !due.is_empty() {
                        let fb_packet =
                            Packet::new(next_net_packet_id, opts.feedback_packet_bytes, now).with_flow(1);
                        next_net_packet_id += 1;
                        if let Some(arrival) = emulator.send(Direction::Downlink, &fb_packet, now).arrival() {
                            events.push(arrival, NetEvent::FeedbackArrival(due));
                        }
                    }
                    if nack_gen.pending_count() > 0 && !poll_outstanding {
                        poll_outstanding = true;
                        events.push(now + opts.nack.retry_interval, NetEvent::ReceiverPoll);
                    }
                }
                NetEvent::FeedbackArrival(sequences) => {
                    // One retransmit call per NACKed sequence keeps the old→new sequence
                    // pairing exact even when some sequences (e.g. lost parity packets) are
                    // not in the retransmission store.
                    for &old_seq in &sequences {
                        for p in rtx.retransmit(&[old_seq], || packetizer.allocate_sequence()) {
                            if let Some(mapping) = seq_to_media.get(&old_seq).copied() {
                                seq_to_media.insert(p.header.sequence, mapping);
                            }
                            let when = pacer.schedule_send(p.wire_size(), now);
                            events.push(when, NetEvent::SendUplink(p));
                        }
                    }
                }
            }
        }

        // --- Deadline reached: decode whatever (partially) arrived, in capture order.
        let mut decoded_count = 0usize;
        let mut frames_delivered = 0usize;
        let mut received_bits: u64 = 0;
        let mut latency = LatencyStats::new();
        for (i, frame_out) in outgoing.iter().enumerate() {
            let Some(status) = assembler.status(frame_out.frame_id) else {
                continue;
            };
            if status.complete {
                frames_delivered += 1;
                if let (Some(done), Some(start)) = (status.completed_at, progress[i].send_start) {
                    latency.record(done.saturating_since(start));
                }
            }
            received_bits += status.received_bytes * 8;
            if status.received_ranges.is_empty() {
                continue;
            }
            if self.decoded.len() <= decoded_count {
                self.decoded.push(DecodedFrame::placeholder());
            }
            self.decoder.decode_into(
                &self.encoded_slots[i],
                &status.received_ranges,
                status.completed_at.map(|t| t.as_micros()),
                &mut self.decode_scratch,
                &mut self.decoded[decoded_count],
            );
            decoded_count += 1;
        }

        // --- The MLLM answers over everything that decoded before the deadline.
        let answer = self.responder.respond_with(
            question,
            &self.decoded[..decoded_count],
            opts.seed,
            &mut self.mllm,
        );

        let window_secs = (frames.len() as f64 / fps).max(1e-9);
        let encoded_bits: u64 = outgoing.iter().map(|f| f.size_bytes * 8).sum();
        NetTurnReport {
            answer,
            frames_sent: outgoing.len(),
            frames_delivered,
            frames_decoded: decoded_count,
            mean_target_bitrate_bps: target_sum / frames.len() as f64,
            achieved_bitrate_bps: encoded_bits as f64 / window_secs,
            goodput_bps: received_bits as f64 / window_secs,
            p50_frame_latency_ms: latency.percentile_ms(0.5),
            p95_frame_latency_ms: latency.p95_ms(),
            packets_lost,
            fec_recovered_frames: progress.iter().filter(|p| p.fec_recovered).count() as u64,
            retransmissions_sent,
            final_estimate_bps: self.gcc.estimate_bps(),
        }
    }

    /// Re-derives the text query only when the question changes (same memoization as
    /// [`crate::ChatSession`]).
    fn refresh_query(&mut self, question: &Question) {
        if self.cached_question.as_ref() != Some(question) {
            self.query = TextQuery::from_words_and_concepts(
                &question.text,
                self.clip_model.ontology(),
                question.query_concepts.iter().cloned(),
            );
            self.cached_question = Some(question.clone());
        }
    }

    /// Encodes `frame` into turn slot `i` at the closest achievable size to `budget_bits`.
    ///
    /// Context-aware mode binary-searches a uniform QP offset on top of the frame's Eq. 2
    /// map (coded bits are monotone decreasing in the offset — the same §3.2
    /// bitrate-matching procedure `ContextAwareStreamer::encode_at_bitrate` uses, but per
    /// frame and per target); baseline mode binary-searches the single uniform QP a
    /// traditional WebRTC encoder's rate control would pick.
    fn encode_slot_to_budget(&mut self, i: usize, frame: &Frame, budget_bits: f64) {
        if self.encode_scratches.len() <= i {
            self.encode_scratches.resize_with(i + 1, EncodeScratch::new);
        }
        if self.encoded_slots.len() <= i {
            self.encoded_slots.resize_with(i + 1, EncodedFrame::placeholder);
        }
        let grid = self.encoder.grid_for(frame);
        let (mut lo, mut hi) = match self.options.mode {
            StreamingMode::ContextAware => {
                let importance = self
                    .clip_model
                    .correlation_map_coherent(frame, &self.query, &mut self.clip);
                self.allocator.allocate_into(importance, grid, &mut self.qp_map);
                (-51i32, 51i32)
            }
            StreamingMode::Baseline => (0i32, 51i32),
        };
        // Probe maps are refilled in place (`probe_map`); after the first frame of a given
        // grid the search allocates nothing beyond what the encoder itself needs.
        let fill_probe_map =
            |options: &NetSessionOptions, base: &QpMap, level: i32, out: &mut QpMap| match options.mode {
                StreamingMode::ContextAware => base.offset_all_into(level, out),
                StreamingMode::Baseline => out.fill_uniform(grid, Qp::new(level)),
            };
        let mut probe_map = std::mem::replace(&mut self.probe_map, QpMap::empty());
        let mut best_level = lo;
        let mut best_err = f64::INFINITY;
        let mut last_probed = None;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            fill_probe_map(&self.options, &self.qp_map, mid, &mut probe_map);
            self.encoder.encode_into(
                frame,
                &probe_map,
                &mut self.encode_scratches[i],
                &mut self.probe_encoded,
            );
            last_probed = Some(mid);
            let bits = self.probe_encoded.total_bits() as f64;
            let err = (bits - budget_bits).abs();
            if err < best_err {
                best_err = err;
                best_level = mid;
            }
            if bits > budget_bits {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        if last_probed == Some(best_level) {
            // The search converged on the last level probed: reuse that encode.
            self.encoded_slots[i].clone_from(&self.probe_encoded);
        } else {
            fill_probe_map(&self.options, &self.qp_map, best_level, &mut probe_map);
            self.encoder.encode_into(
                frame,
                &probe_map,
                &mut self.encode_scratches[i],
                &mut self.encoded_slots[i],
            );
        }
        self.probe_map = probe_map;
    }
}

/// A convenience used by the scenario engine: a queue sized to `queue_ms` of buffering at
/// `nominal_bps` — how testbeds provision the bottleneck buffer for a trace whose rates
/// vary around a nominal capacity.
pub fn queue_bytes_for(nominal_bps: f64, queue_ms: u64) -> u64 {
    ((nominal_bps / 8.0) * (queue_ms as f64 / 1_000.0)).max(3_000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_netsim::{BandwidthTrace, LinkConfig, LossModel, SimDuration, SimTime};
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn window(fps: f64, secs: f64) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        let start = source.duration_secs() - secs;
        let count = (secs * fps) as usize;
        (0..count)
            .map(|i| source.frame_at(start + i as f64 / fps))
            .collect()
    }

    fn question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    fn good_path() -> PathConfig {
        PathConfig::paper_section_2_2(0.01)
    }

    fn stepdown_path() -> PathConfig {
        PathConfig {
            uplink: LinkConfig {
                bandwidth: BandwidthTrace::step(8e6, 1.2e6, SimTime::from_secs_f64(1.5)),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(8e6, 300),
                loss: LossModel::Iid { rate: 0.01 },
                max_jitter: SimDuration::ZERO,
            },
            downlink: LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None),
        }
    }

    #[test]
    fn networked_turn_completes_and_answers_on_a_good_link() {
        let mut session = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(3, good_path()));
        let frames = window(12.0, 3.0);
        let report = session.run_turn(&frames, &question());
        assert_eq!(report.frames_sent, frames.len());
        assert!(report.frames_delivered > frames.len() * 9 / 10);
        assert!(
            report.answer.probability_correct > 0.7,
            "p {}",
            report.answer.probability_correct
        );
        // AI-oriented stays near the accuracy floor, far below the 10 Mbps capacity.
        assert!(report.mean_target_bitrate_bps < 1_000_000.0);
        assert!(report.p50_frame_latency_ms >= 30.0);
        assert!(
            report.p95_frame_latency_ms < 120.0,
            "p95 {}",
            report.p95_frame_latency_ms
        );
    }

    #[test]
    fn turns_are_deterministic() {
        let run = || {
            let mut session =
                NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(7, stepdown_path()));
            session.run_turn(&window(12.0, 3.0), &question())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traditional_abr_rides_the_estimate_higher_than_ai_oriented() {
        let frames = window(12.0, 3.0);
        let mut trad = NetworkedChatSession::with_defaults(NetSessionOptions::traditional(5, good_path()));
        let mut ai = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(5, good_path()));
        let trad_report = trad.run_turn(&frames, &question());
        let ai_report = ai.run_turn(&frames, &question());
        assert!(
            trad_report.mean_target_bitrate_bps > ai_report.mean_target_bitrate_bps * 2.0,
            "trad {} vs ai {}",
            trad_report.mean_target_bitrate_bps,
            ai_report.mean_target_bitrate_bps
        );
    }

    #[test]
    fn step_down_punishes_traditional_more_than_ai_oriented() {
        let frames = window(12.0, 3.0);
        let q = question();
        let mut trad_opts = NetSessionOptions::traditional(11, stepdown_path());
        trad_opts.gcc.initial_estimate_bps = 2_500_000.0;
        let mut ai_opts = NetSessionOptions::ai_oriented(11, stepdown_path());
        ai_opts.gcc.initial_estimate_bps = 2_500_000.0;
        let trad_report = NetworkedChatSession::with_defaults(trad_opts).run_turn(&frames, &q);
        let ai_report = NetworkedChatSession::with_defaults(ai_opts).run_turn(&frames, &q);
        // The paper's §3.2 / Figure 3 contract: the accuracy floor *maintains* answer
        // accuracy while the estimate-rider loses frames to the collapsed link...
        assert!(u8::from(ai_report.answer.correct) >= u8::from(trad_report.answer.correct));
        assert!(
            ai_report.answer.probability_correct >= trad_report.answer.probability_correct - 0.005,
            "ai {} vs trad {}",
            ai_report.answer.probability_correct,
            trad_report.answer.probability_correct
        );
        assert!(ai_report.frames_delivered > trad_report.frames_delivered);
        // ...at an order of magnitude lower tail latency and less than half the bits.
        assert!(
            ai_report.p95_frame_latency_ms < trad_report.p95_frame_latency_ms / 3.0,
            "ai p95 {} vs trad p95 {}",
            ai_report.p95_frame_latency_ms,
            trad_report.p95_frame_latency_ms
        );
        assert!(ai_report.goodput_bps < trad_report.goodput_bps / 2.0);
    }

    #[test]
    fn gcc_estimate_persists_across_turns() {
        let mut session =
            NetworkedChatSession::with_defaults(NetSessionOptions::traditional(13, good_path()));
        let frames = window(12.0, 2.0);
        let q = question();
        let initial = session.bandwidth_estimate_bps();
        session.run_turn(&frames, &q);
        let after_one = session.bandwidth_estimate_bps();
        assert_ne!(initial, after_one);
        // A later turn starts from the learned estimate, not from the configured initial.
        let second = session.run_turn(&frames, &q);
        assert_eq!(second.final_estimate_bps, session.bandwidth_estimate_bps());
    }

    #[test]
    fn fec_recovers_frames_under_loss() {
        let mut path = good_path();
        path.uplink.loss = LossModel::Iid { rate: 0.06 };
        let mut session = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(17, path));
        let report = session.run_turn(&window(12.0, 3.0), &question());
        assert!(report.packets_lost > 0);
        assert!(
            report.fec_recovered_frames > 0 || report.retransmissions_sent > 0,
            "loss must engage a recovery mechanism"
        );
        assert!(report.frames_decoded > 0);
    }
}
