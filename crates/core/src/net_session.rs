//! Network-in-the-loop chat turns: [`NetworkedChatSession`].
//!
//! [`crate::ChatSession`] answers the paper's *compute* question — what one conversational
//! turn costs the client and the cloud. This module answers the *network* question of
//! §2.2 / Figure 3: what happens to a turn when its packets traverse a real (emulated)
//! uplink whose capacity varies over time. Every frame of a turn closes the loop
//!
//! ```text
//! BandwidthTrace ──► Link ──► per-packet feedback ──► GccController ──► AbrPolicy
//!       ▲                                                                  │
//!       └── FEC/NACK recovery ◄── packetize ◄── encode_at_bitrate ◄────────┘
//! ```
//!
//! so the target bitrate, per-frame transmission latency, the set of frames (and frame
//! *fractions*) that reach the decoder, and ultimately the MLLM's answer accuracy are all
//! functions of the network — which is exactly the regime in which the paper argues for
//! `AiOriented` over `Traditional` ABR.
//!
//! Since the simulation-kernel refactor the event loop itself lives in the shared turn
//! engine (`net_turn`, an [`aivc_sim::Actor`] over the `aivc-sim` kernel) and this type is
//! the *single-turn* driver of it: every [`NetworkedChatSession::run_turn`] starts a fresh
//! transport timeline at `t = 0` with an empty bottleneck queue — identical options and
//! seeds reproduce bit-identical [`NetTurnReport`]s, which the scenario engine
//! ([`crate::scenarios`]) relies on for its golden regression fixtures. The
//! [`GccController`] still persists across turns (a conversation keeps its bandwidth
//! knowledge). For the *continuous* timeline — one link, trace cursor, pacer backlog and
//! in-flight packet set shared by every turn — see [`crate::Conversation`].

use crate::context_aware::StreamerConfig;
use crate::net_turn::{run_turn_window, NetCompute, Transport};
use crate::session::StreamingMode;
use aivc_mllm::{Answer, Question};
use aivc_netsim::PathConfig;
use aivc_rtc::cc::{GccConfig, GccController};
use aivc_rtc::fec::{AdaptiveFecConfig, FecConfig};
use aivc_rtc::nack::NackConfig;
use aivc_rtc::AbrPolicy;
use aivc_scene::Frame;
use aivc_semantics::ClipModel;
use aivc_sim::{SimDuration, Simulation};
use serde::{Deserialize, Serialize, Value};

/// Options of one networked chat session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetSessionOptions {
    /// Seed for every stochastic component (network loss, jitter, MLLM answer draws).
    pub seed: u64,
    /// The network path; the uplink's [`aivc_netsim::BandwidthTrace`] + loss model are what
    /// the turn adapts to.
    pub path: PathConfig,
    /// The sender's rate objective (the Figure 3 grey-vs-yellow-region choice).
    pub abr: AbrPolicy,
    /// The sender's encoding method: context-aware Eq. 2 QP allocation (the paper's
    /// system) or the uniform-QP WebRTC baseline.
    pub mode: StreamingMode,
    /// Congestion-controller parameters.
    pub gcc: GccConfig,
    /// Forward error correction on media packets.
    pub fec: FecConfig,
    /// NACK/retransmission behaviour.
    pub nack: NackConfig,
    /// Whether lost packets are retransmitted.
    pub enable_retransmission: bool,
    /// Deadline-aware NACK suppression: when true, the receiver drops (never sends) a
    /// retransmission request whose expected arrival — RTT estimate plus a pacing guard —
    /// lands past the turn's conversational deadline; such an RTX is wasted uplink that
    /// competes with the next frame's media. Off by default (the pre-kernel behaviour the
    /// single-turn golden fixtures pin); conversation scenarios enable it.
    pub deadline_aware_nack: bool,
    /// Capture rate of the turn window in frames per second.
    pub capture_fps: f64,
    /// How long after the last capture the receiver keeps collecting in-flight packets
    /// before the MLLM must answer (the conversational deadline).
    pub drain_secs: f64,
    /// Size of a feedback (NACK) packet on the wire, in bytes.
    pub feedback_packet_bytes: u32,
    /// Adaptive FEC: parity group size driven by the live loss estimate, with the media
    /// budget shaved so media + parity never exceeds the ABR target. Disabled by default
    /// (the static [`NetSessionOptions::fec`] group size rules, bit for bit).
    pub adaptive_fec: AdaptiveFecConfig,
    /// The graceful-degradation ladder (outage capture suppression, probing, frame
    /// shedding). Disabled by default.
    pub degradation: DegradationConfig,
    /// Coalesced delivery: a burst of back-to-back pacer departures (a capture's media +
    /// parity, a feedback event's retransmissions) rides **one** timeline event that
    /// re-fires per departure, instead of one slab slot per packet. Provably
    /// order-identical to per-packet scheduling (the run re-arms under its original
    /// insertion sequence; see `net_turn::NetEventSink::reschedule_net_run`) and pinned
    /// bit-for-bit by the equivalence property suite, so this is on by default; the flag
    /// exists so that suite can run both modes against each other.
    pub coalesce_delivery: bool,
}

impl NetSessionOptions {
    /// AI-oriented defaults: context-aware encoding with the ABR at the paper's ~430 Kbps
    /// accuracy floor, FEC protecting every 4-packet group, NACK recovery on.
    pub fn ai_oriented(seed: u64, path: PathConfig) -> Self {
        Self {
            seed,
            path,
            abr: AbrPolicy::ai_oriented(430_000.0),
            mode: StreamingMode::ContextAware,
            gcc: GccConfig::default(),
            fec: FecConfig::with_group_size(4),
            nack: NackConfig::default(),
            enable_retransmission: true,
            deadline_aware_nack: false,
            capture_fps: 12.0,
            // The conversational response budget (§1's 300 ms): frames still in flight
            // this long after the question was asked miss the answer.
            drain_secs: 0.3,
            feedback_packet_bytes: 80,
            adaptive_fec: AdaptiveFecConfig::disabled(),
            degradation: DegradationConfig::disabled(),
            coalesce_delivery: true,
        }
    }

    /// Turns the full outage-resilience stack on: the GCC feedback watchdog (200 ms
    /// timeout, 0.7 decay, 1.25× recovery ramp), loss-driven adaptive FEC, and the
    /// graceful-degradation ladder. Fault scenarios opt in through this; everything else
    /// keeps the off-by-default behaviour the golden fixtures pin.
    pub fn with_resilience(mut self) -> Self {
        self.gcc.watchdog_timeout = SimDuration::from_millis(200);
        self.gcc.watchdog_beta = 0.7;
        self.gcc.recovery_ramp_factor = 1.25;
        self.adaptive_fec.enabled = true;
        self.degradation.enabled = true;
        self
    }

    /// Traditional WebRTC-style defaults: uniform-QP encoding riding the bandwidth
    /// estimate at 85 % utilization, same recovery machinery as
    /// [`NetSessionOptions::ai_oriented`].
    pub fn traditional(seed: u64, path: PathConfig) -> Self {
        Self {
            abr: AbrPolicy::traditional(),
            mode: StreamingMode::Baseline,
            ..Self::ai_oriented(seed, path)
        }
    }
}

/// The graceful-degradation ladder's knobs. When enabled, the turn engine steps down
/// under stress instead of failing abruptly: a watchdog-declared outage suppresses
/// captures (sending tiny probes instead, so the first post-outage feedback can return);
/// a deep send backlog sheds whole late frames before their parity is even built; after
/// recovery the congestion controller's ramp stages the climb back. Disabled by default —
/// the ladder never engages and the pre-ladder behaviour is preserved bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Master switch for the ladder.
    pub enabled: bool,
    /// Uplink backlog (ms of queueing) beyond which a newly captured frame is shed whole:
    /// encoding and sending it would only arrive after the conversational deadline while
    /// deepening the queue for its successors.
    pub shed_backlog_ms: f64,
    /// Wire size of the keep-alive probe sent on each suppressed capture tick.
    pub probe_packet_bytes: u32,
}

impl DegradationConfig {
    /// Ladder off (the default).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            shed_backlog_ms: 150.0,
            probe_packet_bytes: 200,
        }
    }
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Fault/resilience telemetry of one turn. All-zero (["quiet"](FaultTelemetry::is_quiet))
/// whenever fault injection and the resilience stack are off, in which case it is omitted
/// from the serialized report — the off-by-default contract that keeps the pre-fault
/// golden fixtures byte-for-byte identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTelemetry {
    /// Scheduled uplink outage time overlapping the turn window, in ms.
    pub outage_ms: f64,
    /// Time from the last outage-dropped send to the first frame completing after it, in
    /// ms — finite iff the session provably re-converged. `None` when no outage was seen
    /// or nothing completed afterwards (recovery may land in a later turn).
    pub time_to_recover_ms: Option<f64>,
    /// Degradation-ladder level changes during the turn.
    pub degradation_events: u64,
    /// Frames shed whole by the ladder (backlog past the shed threshold).
    pub frames_shed: u64,
    /// Capture ticks suppressed while the watchdog held the session silent.
    pub captures_suppressed: u64,
    /// Keep-alive probes sent on suppressed capture ticks.
    pub probes_sent: u64,
    /// Watchdog decay steps the congestion controller took during the turn.
    pub watchdog_fallbacks: u64,
    /// Uplink packets duplicated by a fault episode during the turn.
    pub packets_duplicated: u64,
    /// Uplink packets reordered by a fault episode during the turn.
    pub packets_reordered: u64,
    /// Uplink packets dropped by outage episodes during the turn.
    pub outage_drops: u64,
}

impl FaultTelemetry {
    /// True when nothing fault-related happened (every field at its default) — the
    /// serialization-omission condition.
    pub fn is_quiet(&self) -> bool {
        self == &Self::default()
    }

    /// Accumulates another telemetry snapshot into this one: counters and outage time
    /// add up; the first finite `time_to_recover_ms` wins (the earliest proof of
    /// re-convergence is the one a conversation- or fleet-level rollup reports).
    pub fn absorb(&mut self, other: &FaultTelemetry) {
        self.outage_ms += other.outage_ms;
        if self.time_to_recover_ms.is_none() {
            self.time_to_recover_ms = other.time_to_recover_ms;
        }
        self.degradation_events += other.degradation_events;
        self.frames_shed += other.frames_shed;
        self.captures_suppressed += other.captures_suppressed;
        self.probes_sent += other.probes_sent;
        self.watchdog_fallbacks += other.watchdog_fallbacks;
        self.packets_duplicated += other.packets_duplicated;
        self.packets_reordered += other.packets_reordered;
        self.outage_drops += other.outage_drops;
    }
}

/// The report of one networked chat turn — plain values only, so server slots can replace
/// reports in place.
///
/// Serialization note: `Serialize`/`Deserialize` are implemented by hand (not derived)
/// so the `resilience` block is **omitted** when quiet. The pre-fault golden fixtures
/// never contained the field; emitting an all-zero block would change every fixture byte
/// stream, and the vendored serde derive has no field-skipping attribute support.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTurnReport {
    /// The MLLM's answer over everything the receiver could decode before the deadline.
    pub answer: Answer,
    /// Frames handed to the transport.
    pub frames_sent: usize,
    /// Frames completely received before the deadline.
    pub frames_delivered: usize,
    /// Frames the decoder produced output for (at least one packet arrived; incomplete
    /// frames decode with concealment on the missing blocks).
    pub frames_decoded: usize,
    /// Mean per-frame ABR target over the turn, in bits per second.
    pub mean_target_bitrate_bps: f64,
    /// Mean encoded media bitrate actually produced, in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Unique media payload bits that reached the receiver, per second of turn window.
    pub goodput_bps: f64,
    /// Median per-frame transmission latency (send start → complete reception) in ms.
    pub p50_frame_latency_ms: f64,
    /// 95th-percentile per-frame transmission latency in ms.
    pub p95_frame_latency_ms: f64,
    /// Uplink packets that did not reach the receiver (random loss + queue drops).
    pub packets_lost: u64,
    /// Frames with at least one FEC-recovered packet.
    pub fec_recovered_frames: u64,
    /// Retransmission packets sent.
    pub retransmissions_sent: u64,
    /// The congestion controller's bandwidth estimate when the turn ended.
    pub final_estimate_bps: f64,
    /// Fault/resilience telemetry; all-zero (and unserialized) when faults and the
    /// resilience stack are off.
    pub resilience: FaultTelemetry,
}

impl Serialize for NetTurnReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("answer".to_string(), self.answer.to_value()),
            ("frames_sent".to_string(), self.frames_sent.to_value()),
            ("frames_delivered".to_string(), self.frames_delivered.to_value()),
            ("frames_decoded".to_string(), self.frames_decoded.to_value()),
            (
                "mean_target_bitrate_bps".to_string(),
                self.mean_target_bitrate_bps.to_value(),
            ),
            (
                "achieved_bitrate_bps".to_string(),
                self.achieved_bitrate_bps.to_value(),
            ),
            ("goodput_bps".to_string(), self.goodput_bps.to_value()),
            (
                "p50_frame_latency_ms".to_string(),
                self.p50_frame_latency_ms.to_value(),
            ),
            (
                "p95_frame_latency_ms".to_string(),
                self.p95_frame_latency_ms.to_value(),
            ),
            ("packets_lost".to_string(), self.packets_lost.to_value()),
            (
                "fec_recovered_frames".to_string(),
                self.fec_recovered_frames.to_value(),
            ),
            (
                "retransmissions_sent".to_string(),
                self.retransmissions_sent.to_value(),
            ),
            (
                "final_estimate_bps".to_string(),
                self.final_estimate_bps.to_value(),
            ),
        ];
        if !self.resilience.is_quiet() {
            fields.push(("resilience".to_string(), self.resilience.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for NetTurnReport {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            answer: Deserialize::from_value(v.field("answer")?)?,
            frames_sent: Deserialize::from_value(v.field("frames_sent")?)?,
            frames_delivered: Deserialize::from_value(v.field("frames_delivered")?)?,
            frames_decoded: Deserialize::from_value(v.field("frames_decoded")?)?,
            mean_target_bitrate_bps: Deserialize::from_value(v.field("mean_target_bitrate_bps")?)?,
            achieved_bitrate_bps: Deserialize::from_value(v.field("achieved_bitrate_bps")?)?,
            goodput_bps: Deserialize::from_value(v.field("goodput_bps")?)?,
            p50_frame_latency_ms: Deserialize::from_value(v.field("p50_frame_latency_ms")?)?,
            p95_frame_latency_ms: Deserialize::from_value(v.field("p95_frame_latency_ms")?)?,
            packets_lost: Deserialize::from_value(v.field("packets_lost")?)?,
            fec_recovered_frames: Deserialize::from_value(v.field("fec_recovered_frames")?)?,
            retransmissions_sent: Deserialize::from_value(v.field("retransmissions_sent")?)?,
            final_estimate_bps: Deserialize::from_value(v.field("final_estimate_bps")?)?,
            resilience: match v.field("resilience")? {
                Value::Null => FaultTelemetry::default(),
                present => Deserialize::from_value(present)?,
            },
        })
    }
}

impl NetTurnReport {
    /// The all-zero report server slots start from.
    pub fn placeholder() -> Self {
        Self {
            answer: Answer::default(),
            frames_sent: 0,
            frames_delivered: 0,
            frames_decoded: 0,
            mean_target_bitrate_bps: 0.0,
            achieved_bitrate_bps: 0.0,
            goodput_bps: 0.0,
            p50_frame_latency_ms: 0.0,
            p95_frame_latency_ms: 0.0,
            packets_lost: 0,
            fec_recovered_frames: 0,
            retransmissions_sent: 0,
            final_estimate_bps: 0.0,
            resilience: FaultTelemetry::default(),
        }
    }
}

/// One long-lived AI Video Chat session whose turns run through the emulated network.
///
/// The compute stages (CLIP → Eq. 2 → ROI encode → decode → MLLM) are the same ones
/// [`crate::ChatSession`] runs, with the same scratch-reuse structure; what changes is that
/// each frame's **bitrate target comes from the congestion controller** and each frame's
/// **decodable bytes come from the emulated link**. The [`GccController`] persists across
/// turns (a conversation keeps its bandwidth knowledge); transport time restarts at zero
/// each turn with an empty bottleneck queue — use [`crate::Conversation`] when the
/// transport itself should persist.
#[derive(Debug, Clone)]
pub struct NetworkedChatSession {
    compute: NetCompute,
    gcc: GccController,
    /// Always-on serving counters. Session-owned (not transport-owned) because this
    /// session rebuilds its transport every turn — the handle persists so counters
    /// accumulate across the session's whole lifetime.
    metrics: std::sync::Arc<aivc_metrics::SessionCounters>,
}

impl NetworkedChatSession {
    /// Creates a session with explicit compute configuration.
    pub fn new(options: NetSessionOptions, config: StreamerConfig, clip_model: ClipModel) -> Self {
        Self {
            gcc: GccController::new(options.gcc),
            compute: NetCompute::new(options, config, clip_model),
            metrics: std::sync::Arc::new(aivc_metrics::SessionCounters::new()),
        }
    }

    /// A point-in-time reading of this session's always-on counters (off the hot path).
    pub fn metrics_snapshot(&self) -> aivc_metrics::SessionSnapshot {
        self.metrics.snapshot()
    }

    /// A session with the paper's compute defaults (γ = 3 allocator, medium-preset encoder,
    /// Mobile-CLIP-class model).
    pub fn with_defaults(options: NetSessionOptions) -> Self {
        Self::new(options, StreamerConfig::default(), ClipModel::mobile_default())
    }

    /// The session options.
    pub fn options(&self) -> &NetSessionOptions {
        &self.compute.options
    }

    /// The congestion controller's current bandwidth estimate in bits per second.
    pub fn bandwidth_estimate_bps(&self) -> f64 {
        self.gcc.estimate_bps()
    }

    /// Runs one networked chat turn over a window of captured frames.
    ///
    /// Frame `i` is captured at simulated time `i / capture_fps`. At each capture the
    /// sender first ingests every feedback report that has had time to travel back, updates
    /// the GCC estimate, asks the ABR policy for a target and encodes the frame to that
    /// budget (QP-offset search on the Eq. 2 map); packets are FEC-protected, paced, and
    /// pushed through the emulated uplink, with NACK/RTX and FEC recovery racing the
    /// conversational deadline. After `drain_secs` past the last capture, whatever arrived
    /// is decoded (missing blocks conceal) and the MLLM answers.
    ///
    /// The transport timeline is fresh per call (clock at zero, empty queue, packets in
    /// flight at the deadline discarded) — the single-turn semantics the golden fixtures
    /// pin down.
    pub fn run_turn(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        let mut transport = Transport::with_metrics(
            &self.compute.options,
            self.gcc.estimate_bps(),
            std::sync::Arc::clone(&self.metrics),
        );
        let mut sim = Simulation::new();
        run_turn_window(
            &mut self.compute,
            &mut self.gcc,
            &mut transport,
            &mut sim,
            frames,
            question,
        )
    }
}

/// A convenience used by the scenario engine: a queue sized to `queue_ms` of buffering at
/// `nominal_bps` — how testbeds provision the bottleneck buffer for a trace whose rates
/// vary around a nominal capacity.
pub fn queue_bytes_for(nominal_bps: f64, queue_ms: u64) -> u64 {
    ((nominal_bps / 8.0) * (queue_ms as f64 / 1_000.0)).max(3_000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_netsim::{BandwidthTrace, LinkConfig, LossModel, SimDuration, SimTime};
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn window(fps: f64, secs: f64) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        let start = source.duration_secs() - secs;
        let count = (secs * fps) as usize;
        (0..count)
            .map(|i| source.frame_at(start + i as f64 / fps))
            .collect()
    }

    fn question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    fn good_path() -> PathConfig {
        PathConfig::paper_section_2_2(0.01)
    }

    fn stepdown_path() -> PathConfig {
        PathConfig {
            uplink: LinkConfig {
                bandwidth: BandwidthTrace::step(8e6, 1.2e6, SimTime::from_secs_f64(1.5)),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(8e6, 300),
                loss: LossModel::Iid { rate: 0.01 },
                max_jitter: SimDuration::ZERO,
                faults: aivc_netsim::FaultSchedule::none(),
            },
            downlink: LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None),
        }
    }

    #[test]
    fn degradation_ladder_sheds_late_frames_under_deep_backlog() {
        // A 400 kbps pipe with a cold controller that believes 4 Mbps: the pacer floods
        // the bottleneck queue far past `shed_backlog_ms`, so the SoftFallback rung must
        // shed whole late frames instead of encoding into a standing queue.
        let path = PathConfig {
            uplink: LinkConfig::constant(400e3, SimDuration::from_millis(30), 300, LossModel::None),
            downlink: LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None),
        };
        let mut options = NetSessionOptions::traditional(11, path).with_resilience();
        options.capture_fps = 12.0;
        options.gcc.initial_estimate_bps = 4_000_000.0;
        let mut session = NetworkedChatSession::with_defaults(options);
        let frames = window(12.0, 2.0);
        let report = session.run_turn(&frames, &question());
        assert_eq!(report.frames_sent, frames.len(), "shed frames still occupy slots");
        assert!(
            report.resilience.frames_shed > 0,
            "deep backlog must shed frames: {:?}",
            report.resilience
        );
        assert!(report.resilience.degradation_events > 0);
        // No outage was injected, so no outage telemetry may appear.
        assert_eq!(report.resilience.outage_ms, 0.0);
        assert_eq!(report.resilience.outage_drops, 0);
        assert_eq!(report.resilience.time_to_recover_ms, None);
    }

    #[test]
    fn networked_turn_completes_and_answers_on_a_good_link() {
        let mut session = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(3, good_path()));
        let frames = window(12.0, 3.0);
        let report = session.run_turn(&frames, &question());
        assert_eq!(report.frames_sent, frames.len());
        assert!(report.frames_delivered > frames.len() * 9 / 10);
        assert!(
            report.answer.probability_correct > 0.7,
            "p {}",
            report.answer.probability_correct
        );
        // AI-oriented stays near the accuracy floor, far below the 10 Mbps capacity.
        assert!(report.mean_target_bitrate_bps < 1_000_000.0);
        assert!(report.p50_frame_latency_ms >= 30.0);
        assert!(
            report.p95_frame_latency_ms < 120.0,
            "p95 {}",
            report.p95_frame_latency_ms
        );
    }

    #[test]
    fn turns_are_deterministic() {
        let run = || {
            let mut session =
                NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(7, stepdown_path()));
            session.run_turn(&window(12.0, 3.0), &question())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traditional_abr_rides_the_estimate_higher_than_ai_oriented() {
        let frames = window(12.0, 3.0);
        let mut trad = NetworkedChatSession::with_defaults(NetSessionOptions::traditional(5, good_path()));
        let mut ai = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(5, good_path()));
        let trad_report = trad.run_turn(&frames, &question());
        let ai_report = ai.run_turn(&frames, &question());
        assert!(
            trad_report.mean_target_bitrate_bps > ai_report.mean_target_bitrate_bps * 2.0,
            "trad {} vs ai {}",
            trad_report.mean_target_bitrate_bps,
            ai_report.mean_target_bitrate_bps
        );
    }

    #[test]
    fn step_down_punishes_traditional_more_than_ai_oriented() {
        let frames = window(12.0, 3.0);
        let q = question();
        let mut trad_opts = NetSessionOptions::traditional(11, stepdown_path());
        trad_opts.gcc.initial_estimate_bps = 2_500_000.0;
        let mut ai_opts = NetSessionOptions::ai_oriented(11, stepdown_path());
        ai_opts.gcc.initial_estimate_bps = 2_500_000.0;
        let trad_report = NetworkedChatSession::with_defaults(trad_opts).run_turn(&frames, &q);
        let ai_report = NetworkedChatSession::with_defaults(ai_opts).run_turn(&frames, &q);
        // The paper's §3.2 / Figure 3 contract: the accuracy floor *maintains* answer
        // accuracy while the estimate-rider loses frames to the collapsed link...
        assert!(u8::from(ai_report.answer.correct) >= u8::from(trad_report.answer.correct));
        assert!(
            ai_report.answer.probability_correct >= trad_report.answer.probability_correct - 0.005,
            "ai {} vs trad {}",
            ai_report.answer.probability_correct,
            trad_report.answer.probability_correct
        );
        assert!(ai_report.frames_delivered > trad_report.frames_delivered);
        // ...at an order of magnitude lower tail latency and less than half the bits.
        assert!(
            ai_report.p95_frame_latency_ms < trad_report.p95_frame_latency_ms / 3.0,
            "ai p95 {} vs trad p95 {}",
            ai_report.p95_frame_latency_ms,
            trad_report.p95_frame_latency_ms
        );
        assert!(ai_report.goodput_bps < trad_report.goodput_bps / 2.0);
    }

    #[test]
    fn gcc_estimate_persists_across_turns() {
        let mut session =
            NetworkedChatSession::with_defaults(NetSessionOptions::traditional(13, good_path()));
        let frames = window(12.0, 2.0);
        let q = question();
        let initial = session.bandwidth_estimate_bps();
        session.run_turn(&frames, &q);
        let after_one = session.bandwidth_estimate_bps();
        assert_ne!(initial, after_one);
        // A later turn starts from the learned estimate, not from the configured initial.
        let second = session.run_turn(&frames, &q);
        assert_eq!(second.final_estimate_bps, session.bandwidth_estimate_bps());
    }

    #[test]
    fn fec_recovers_frames_under_loss() {
        let mut path = good_path();
        path.uplink.loss = LossModel::Iid { rate: 0.06 };
        let mut session = NetworkedChatSession::with_defaults(NetSessionOptions::ai_oriented(17, path));
        let report = session.run_turn(&window(12.0, 3.0), &question());
        assert!(report.packets_lost > 0);
        assert!(
            report.fec_recovered_frames > 0 || report.retransmissions_sent > 0,
            "loss must engage a recovery mechanism"
        );
        assert!(report.frames_decoded > 0);
    }
}
