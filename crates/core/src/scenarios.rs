//! The scenario engine: named, seeded network conditions under which every future
//! congestion/scheduling change is evaluated.
//!
//! A [`Scenario`] bundles a time-varying uplink ([`BandwidthTrace`] + loss model), a seed
//! and a turn shape. [`run_scenario`] pushes one chat turn through the network-in-the-loop
//! session ([`crate::NetworkedChatSession`]) **twice** — once with traditional
//! estimate-riding ABR and once with the paper's AI-oriented accuracy-floor ABR — and once
//! more as a small multi-session [`crate::NetworkedChatServer`] workload, then reports
//! goodput, per-frame latency percentiles, loss/recovery counters and answer accuracy side
//! by side (§2.2 / §3.2, Figure 3).
//!
//! Everything is deterministic: a given registry entry reproduces bit-identical
//! [`ScenarioReport`]s across runs and pool sizes, which the golden regression fixtures
//! under `tests/fixtures/` pin down — transport behaviour changes must be intentional and
//! reviewed alongside a fixture update.

use crate::contention::{
    run_contention, AdmissionConfig, ContentionConfig, ContentionReport, CrossTrafficSpec, StarvationConfig,
    TenantSpec, TenantTurn,
};
use crate::conversation::{Conversation, ConversationReport};
use crate::net_session::{queue_bytes_for, NetSessionOptions, NetTurnReport, NetworkedChatSession};
use crate::server::NetworkedChatServer;
use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::{
    BandwidthTrace, FaultEpisode, FaultKind, FaultSchedule, LinkConfig, LossModel, PathConfig, SimDuration,
    SimTime,
};
use aivc_par::MiniPool;
use aivc_scene::templates::basketball_game;
use aivc_scene::{Frame, SourceConfig, VideoSource};
use serde::{Deserialize, Serialize};

/// One named network scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key (also the fixture file name).
    pub name: &'static str,
    /// One-line description of the condition being modelled.
    pub summary: &'static str,
    /// Seed for every stochastic process of the scenario.
    pub seed: u64,
    /// Length of the captured turn window in seconds.
    pub window_secs: f64,
    /// Capture rate of the turn window.
    pub capture_fps: f64,
    /// When true, the session runs with the full outage-resilience stack on
    /// ([`NetSessionOptions::with_resilience`]): feedback watchdog, adaptive FEC and the
    /// graceful-degradation ladder. Fault-injection scenarios set this; the pre-existing
    /// registry entries keep it off, preserving their fixtures bit for bit.
    pub resilience: bool,
    /// The bidirectional path (the uplink carries the video).
    pub path: PathConfig,
}

impl Scenario {
    /// The session options this scenario uses for the given ABR mode.
    pub fn options(&self, ai_oriented: bool) -> NetSessionOptions {
        let mut options = if ai_oriented {
            NetSessionOptions::ai_oriented(self.seed, self.path.clone())
        } else {
            NetSessionOptions::traditional(self.seed, self.path.clone())
        };
        options.capture_fps = self.capture_fps;
        // Scenarios model a mid-conversation turn: the controller already holds a
        // several-Mbps estimate from earlier turns, so traditional ABR is immediately
        // aggressive while AI-oriented ABR sticks to its floor.
        options.gcc.initial_estimate_bps = 2_500_000.0;
        if self.resilience {
            options = options.with_resilience();
        }
        options
    }

    /// The turn window and question every scenario run uses (same scene and detail
    /// question, so accuracy differences come from the network alone).
    pub fn turn(&self) -> (Vec<Frame>, Question) {
        let scene = basketball_game(1);
        let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
        let question = Question::from_fact(&scene.facts[1], QuestionFormat::FreeResponse);
        let start = (source.duration_secs() - self.window_secs).max(0.0);
        let count = (self.window_secs * self.capture_fps).floor().max(1.0) as usize;
        let frames = (0..count)
            .map(|i| source.frame_at(start + i as f64 / self.capture_fps))
            .collect();
        (frames, question)
    }
}

/// A clean 30 ms one-way downlink for feedback, as in the paper's testbed.
fn clean_downlink() -> LinkConfig {
    LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None)
}

fn uplink(bandwidth: BandwidthTrace, nominal_bps: f64, loss: LossModel) -> PathConfig {
    uplink_with_faults(bandwidth, nominal_bps, loss, FaultSchedule::none())
}

/// [`uplink`] with a deterministic fault schedule composed over the uplink's sends.
fn uplink_with_faults(
    bandwidth: BandwidthTrace,
    nominal_bps: f64,
    loss: LossModel,
    faults: FaultSchedule,
) -> PathConfig {
    PathConfig {
        uplink: LinkConfig {
            bandwidth,
            propagation_delay: SimDuration::from_millis(30),
            queue_capacity_bytes: queue_bytes_for(nominal_bps, 300),
            loss,
            max_jitter: SimDuration::ZERO,
            faults,
        },
        downlink: clean_downlink(),
    }
}

/// The scenario registry: ≥ 6 named, seeded network conditions covering the shapes the
/// related adaptive-transport literature validates against (constant, step, periodic,
/// random-walk, bursty loss, LTE-like segment schedules).
pub fn registry() -> Vec<Scenario> {
    let secs = SimTime::from_secs_f64;
    vec![
        Scenario {
            name: "constant",
            summary: "the paper's 10 Mbps / 30 ms link with 1% i.i.d. loss",
            seed: 101,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::constant(10e6),
                10e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "step-down",
            summary: "8 Mbps dropping to 1.2 Mbps mid-turn (handover / contention onset)",
            seed: 202,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::step(8e6, 1.2e6, secs(1.5)),
                8e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "square-wave",
            summary: "capacity oscillating 8 ↔ 1.5 Mbps every second (periodic cross traffic)",
            seed: 303,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::square_wave(8e6, 1.5e6, secs(1.0), secs(8.0)),
                8e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "random-walk",
            summary: "a bounded multiplicative random walk between 1 and 9 Mbps",
            seed: 404,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::random_walk(404, 5e6, 1e6, 9e6, secs(0.5), secs(8.0)),
                5e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "bursty-loss",
            summary: "4 Mbps with Gilbert–Elliott bursts (8% mean loss, ~16-packet bursts)",
            seed: 505,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(BandwidthTrace::constant(4e6), 4e6, LossModel::bursty(0.08, 16.0)),
        },
        Scenario {
            name: "lte-like",
            summary: "LTE-like segments: 12 → 5 → 0.9 → 3 → 10 Mbps across the turn",
            seed: 606,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::from_segments(vec![
                    (SimTime::ZERO, 12e6),
                    (secs(1.0), 5e6),
                    (secs(1.8), 0.9e6),
                    (secs(2.6), 3e6),
                    (secs(3.2), 10e6),
                ]),
                12e6,
                LossModel::Iid { rate: 0.005 },
            ),
        },
        Scenario {
            name: "handover-blackout",
            summary: "10 Mbps with a 500 ms total blackout mid-turn (radio handover) — the \
                      watchdog falls back during the silence and the ladder suppresses \
                      captures until feedback returns",
            seed: 707,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: true,
            path: uplink_with_faults(
                BandwidthTrace::constant(10e6),
                10e6,
                LossModel::Iid { rate: 0.01 },
                FaultSchedule::blackout(secs(1.2), SimDuration::from_millis(500)),
            ),
        },
        Scenario {
            name: "rtt-spike-midturn",
            summary: "8 Mbps where the path reroutes mid-turn: a 250 ms blackout at the \
                      switch, +250 ms one-way delay for a second, and 5% duplication and \
                      bounded reordering while the routes converge",
            seed: 808,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: true,
            path: uplink_with_faults(
                BandwidthTrace::constant(8e6),
                8e6,
                LossModel::Iid { rate: 0.005 },
                FaultSchedule::new(vec![
                    FaultEpisode {
                        start: secs(1.0),
                        duration: SimDuration::from_millis(250),
                        kind: FaultKind::Outage,
                    },
                    FaultEpisode {
                        start: secs(1.0),
                        duration: SimDuration::from_secs_f64(1.0),
                        kind: FaultKind::RttSpike {
                            extra_delay: SimDuration::from_millis(250),
                        },
                    },
                    FaultEpisode {
                        start: secs(0.5),
                        duration: SimDuration::from_secs_f64(2.0),
                        kind: FaultKind::Duplicate { probability: 0.05 },
                    },
                    FaultEpisode {
                        start: secs(0.5),
                        duration: SimDuration::from_secs_f64(2.0),
                        kind: FaultKind::Reorder {
                            probability: 0.05,
                            max_delay: SimDuration::from_millis(40),
                        },
                    },
                ]),
            ),
        },
    ]
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The per-scenario report: both ABR modes side by side plus a small multi-session
/// [`NetworkedChatServer`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The scenario's registry name.
    pub scenario: String,
    /// The turn under traditional estimate-riding ABR.
    pub traditional: NetTurnReport,
    /// The turn under AI-oriented accuracy-floor ABR.
    pub ai_oriented: NetTurnReport,
    /// Sessions in the multi-session server run (AI-oriented mode).
    pub server_sessions: usize,
    /// Fraction of server sessions that answered correctly.
    pub server_correct_fraction: f64,
    /// Mean probability of a correct answer across server sessions.
    pub server_mean_probability: f64,
}

/// Runs a scenario's single-session turns: `(traditional, ai_oriented)`.
pub fn run_modes(scenario: &Scenario) -> (NetTurnReport, NetTurnReport) {
    let (frames, question) = scenario.turn();
    run_modes_on(scenario, &frames, &question)
}

/// [`run_modes`] over an already-synthesized turn window.
fn run_modes_on(
    scenario: &Scenario,
    frames: &[Frame],
    question: &Question,
) -> (NetTurnReport, NetTurnReport) {
    let mut traditional = NetworkedChatSession::with_defaults(scenario.options(false));
    let mut ai = NetworkedChatSession::with_defaults(scenario.options(true));
    (
        traditional.run_turn(frames, question),
        ai.run_turn(frames, question),
    )
}

/// Sessions the multi-session leg of [`run_scenario`] uses.
pub const SERVER_SESSIONS: usize = 3;

/// Runs one scenario end to end: both single-session ABR modes plus a
/// [`SERVER_SESSIONS`]-session server workload spread over `pool_size` lanes. The result
/// is bit-identical for any `pool_size` (sessions share nothing).
pub fn run_scenario(scenario: &Scenario, pool_size: usize) -> ScenarioReport {
    let (frames, question) = scenario.turn();
    let (traditional, ai_oriented) = run_modes_on(scenario, &frames, &question);
    let mut server = NetworkedChatServer::new(pool_size, SERVER_SESSIONS, scenario.options(true));
    server.run_turns(&frames, &question);
    ScenarioReport {
        scenario: scenario.name.to_string(),
        traditional,
        ai_oriented,
        server_sessions: SERVER_SESSIONS,
        server_correct_fraction: server.correct_fraction(),
        server_mean_probability: server.mean_probability_correct(),
    }
}

/// Runs the whole registry, in registry order.
pub fn run_registry(pool_size: usize) -> Vec<ScenarioReport> {
    registry().iter().map(|s| run_scenario(s, pool_size)).collect()
}

// ---------------------------------------------------------------------------------------
// Multi-turn conversation scenarios (the continuous-timeline engine, `crate::Conversation`)
// ---------------------------------------------------------------------------------------

/// One named multi-turn conversation scenario: a sequence of chat turns over one
/// persistent transport timeline, with user think time between turns. Where the
/// single-turn registry pins a *turn*'s behaviour, these pin a *conversation*'s —
/// GCC warm-up across turns, queue carry-over, trace position spanning turns, NACK/RTX
/// state surviving think gaps.
#[derive(Debug, Clone)]
pub struct ConversationScenario {
    /// Registry key (also the fixture file name).
    pub name: &'static str,
    /// One-line description of the condition being modelled.
    pub summary: &'static str,
    /// Seed for every stochastic process of the scenario.
    pub seed: u64,
    /// Number of chat turns in the conversation.
    pub turns: usize,
    /// Length of each captured turn window in seconds.
    pub window_secs: f64,
    /// Capture rate of the turn windows.
    pub capture_fps: f64,
    /// The user's think time between consecutive turns, in seconds.
    pub think_secs: f64,
    /// When true, the session runs with the full outage-resilience stack on
    /// ([`NetSessionOptions::with_resilience`]). Fault-injection scenarios set this; the
    /// pre-existing registry entries keep it off, preserving their fixtures bit for bit.
    pub resilience: bool,
    /// The bidirectional path (the uplink carries the video). The uplink trace may be
    /// shorter than the conversation — looping traces span turns by design.
    pub path: PathConfig,
}

impl ConversationScenario {
    /// The session options this scenario uses for the given ABR mode. Conversations start
    /// **cold** (the default 1 Mbps initial estimate) so warm-up across turns is visible,
    /// and enable deadline-aware NACK suppression — a retransmit that cannot beat a turn's
    /// answer deadline is wasted uplink on a shared timeline.
    pub fn options(&self, ai_oriented: bool) -> NetSessionOptions {
        let mut options = if ai_oriented {
            NetSessionOptions::ai_oriented(self.seed, self.path.clone())
        } else {
            NetSessionOptions::traditional(self.seed, self.path.clone())
        };
        options.capture_fps = self.capture_fps;
        options.deadline_aware_nack = true;
        if self.resilience {
            options = options.with_resilience();
        }
        options
    }

    /// The think gap as a simulated duration.
    pub fn think_gap(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.think_secs)
    }

    /// The captured window and question of turn `turn`. Successive turns advance through
    /// the source video (wrapping at its end) and rotate through the scene's facts, so a
    /// conversation asks about evolving content — deterministically.
    pub fn turn(&self, turn: usize) -> (Vec<Frame>, Question) {
        let scene = basketball_game(1);
        let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
        let question = Question::from_fact(
            &scene.facts[turn % scene.facts.len()],
            QuestionFormat::FreeResponse,
        );
        let duration = source.duration_secs();
        let count = (self.window_secs * self.capture_fps).floor().max(1.0) as usize;
        let start = (turn as f64 * self.window_secs) % duration;
        let frames = (0..count)
            .map(|i| source.frame_at((start + i as f64 / self.capture_fps) % duration))
            .collect();
        (frames, question)
    }
}

/// The conversation registry: ≥ 3 named, seeded multi-turn conditions.
pub fn conversation_registry() -> Vec<ConversationScenario> {
    let secs = SimTime::from_secs_f64;
    vec![
        ConversationScenario {
            name: "lte-8turn",
            summary: "an 8-turn conversation over a looping LTE-like trace (12→5→0.9→3→10 Mbps \
                      per 4 s period) with 1 s think time — the trace wraps several times",
            seed: 1_001,
            turns: 8,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 1.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::from_segments(vec![
                    (SimTime::ZERO, 12e6),
                    (secs(1.0), 5e6),
                    (secs(1.8), 0.9e6),
                    (secs(2.6), 3e6),
                    (secs(3.2), 10e6),
                ])
                .looping(SimDuration::from_secs_f64(4.0)),
                12e6,
                LossModel::Iid { rate: 0.005 },
            ),
        },
        ConversationScenario {
            name: "stepdown-mid-conversation",
            summary: "8 Mbps collapsing to 1.2 Mbps at t = 6 s — mid-conversation, between \
                      turns, so only a warm controller sees it coming",
            seed: 2_002,
            turns: 6,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 0.8,
            resilience: false,
            path: uplink(
                BandwidthTrace::step(8e6, 1.2e6, secs(6.0)),
                8e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        ConversationScenario {
            name: "bursty-think-time",
            summary: "4 Mbps with Gilbert–Elliott bursts (8% mean loss, ~16-packet bursts) and \
                      1.2 s think gaps — recovery state must survive the silences",
            seed: 3_003,
            turns: 6,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 1.2,
            resilience: false,
            path: uplink(BandwidthTrace::constant(4e6), 4e6, LossModel::bursty(0.08, 16.0)),
        },
        ConversationScenario {
            name: "burst-storm-conversation",
            summary: "4 Mbps with Gilbert–Elliott bursts plus an injected loss storm (50% for \
                      1 s) containing a 400 ms blackout that lands mid-turn — the resilience \
                      stack degrades gracefully and recovers within the conversation",
            seed: 4_004,
            turns: 6,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 1.2,
            resilience: true,
            path: uplink_with_faults(
                BandwidthTrace::constant(4e6),
                4e6,
                LossModel::bursty(0.08, 16.0),
                FaultSchedule::new(vec![
                    FaultEpisode {
                        start: SimTime::from_secs_f64(3.0),
                        duration: SimDuration::from_secs_f64(1.0),
                        kind: FaultKind::BurstLoss { loss_rate: 0.5 },
                    },
                    FaultEpisode {
                        start: SimTime::from_secs_f64(3.2),
                        duration: SimDuration::from_millis(400),
                        kind: FaultKind::Outage,
                    },
                ]),
            ),
        },
    ]
}

/// Looks a conversation scenario up by name.
pub fn conversation_by_name(name: &str) -> Option<ConversationScenario> {
    conversation_registry().into_iter().find(|s| s.name == name)
}

/// The per-conversation-scenario report: both ABR modes side by side, each a full
/// cross-turn [`ConversationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversationScenarioReport {
    /// The scenario's registry name.
    pub scenario: String,
    /// The conversation under traditional estimate-riding ABR.
    pub traditional: ConversationReport,
    /// The conversation under AI-oriented accuracy-floor ABR.
    pub ai_oriented: ConversationReport,
}

/// Runs one conversation scenario end to end under one ABR mode.
pub fn run_conversation_mode(scenario: &ConversationScenario, ai_oriented: bool) -> ConversationReport {
    let mut conversation = Conversation::with_defaults(scenario.options(ai_oriented), scenario.think_gap());
    for turn in 0..scenario.turns {
        let (frames, question) = scenario.turn(turn);
        conversation.run_turn(&frames, &question);
    }
    conversation.report()
}

/// Runs one conversation scenario under both ABR modes.
pub fn run_conversation_scenario(scenario: &ConversationScenario) -> ConversationScenarioReport {
    ConversationScenarioReport {
        scenario: scenario.name.to_string(),
        traditional: run_conversation_mode(scenario, false),
        ai_oriented: run_conversation_mode(scenario, true),
    }
}

/// Runs the whole conversation registry, in registry order.
pub fn run_conversation_registry() -> Vec<ConversationScenarioReport> {
    conversation_registry()
        .iter()
        .map(run_conversation_scenario)
        .collect()
}

// ---------------------------------------------------------------------------------------
// Multi-tenant contention scenarios (the shared-bottleneck engine, `crate::contention`)
// ---------------------------------------------------------------------------------------

/// One named multi-tenant contention scenario: K persistent conversations (plus optional
/// cross-traffic) contending for **one** shared bottleneck on one global timeline. Where
/// the conversation registry pins a single tenant's continuous behaviour, these pin the
/// *interaction*: fairness under faults, starvation-watchdog escalations, late-joiner
/// admission and whether every tenant recovers from a shared outage.
#[derive(Debug, Clone)]
pub struct ContentionScenario {
    /// Registry key (also the fixture file name).
    pub name: &'static str,
    /// One-line description of the condition being modelled.
    pub summary: &'static str,
    /// Seed for the shared link; tenant seeds are derived per tenant.
    pub seed: u64,
    /// Number of conversation tenants on the bottleneck.
    pub tenants: usize,
    /// Chat turns per tenant.
    pub turns: usize,
    /// Length of each captured turn window in seconds.
    pub window_secs: f64,
    /// Capture rate of the turn windows.
    pub capture_fps: f64,
    /// Think time between a tenant's consecutive turns, in seconds.
    pub think_secs: f64,
    /// Per-tenant join times in seconds (length = `tenants`).
    pub joins: Vec<f64>,
    /// When true, every tenant runs the full outage-resilience stack
    /// ([`NetSessionOptions::with_resilience`]).
    pub resilience: bool,
    /// Nominal bottleneck rate — the admission fair-share denominator.
    pub nominal_bps: f64,
    /// The shared bottleneck every tenant contends for.
    pub shared_uplink: LinkConfig,
    /// Fairness-telemetry window in milliseconds.
    pub fairness_window_ms: u64,
    /// Starvation-watchdog settings.
    pub starvation: StarvationConfig,
    /// Late-joiner admission settings.
    pub admission: AdmissionConfig,
    /// Background cross-traffic sources.
    pub cross_traffic: Vec<CrossTrafficSpec>,
    /// A tenant pinned to AI-oriented ABR in **both** report legs — the
    /// "does one accuracy floor starve a traditional peer" probe.
    pub pinned_ai: Option<usize>,
}

impl ContentionScenario {
    /// The engine configuration of this scenario.
    pub fn config(&self) -> ContentionConfig {
        ContentionConfig {
            shared_uplink: self.shared_uplink.clone(),
            shared_seed: self.seed,
            nominal_bps: self.nominal_bps,
            fairness_window: SimDuration::from_millis(self.fairness_window_ms),
            starvation: self.starvation,
            admission: self.admission,
            cross_traffic: self.cross_traffic.clone(),
        }
    }

    /// Whether tenant `tenant` runs AI-oriented ABR in the given report leg.
    fn tenant_is_ai(&self, tenant: usize, ai_oriented: bool) -> bool {
        ai_oriented || self.pinned_ai == Some(tenant)
    }

    /// Session options of one tenant. The tenant's path carries the **shared** uplink
    /// config (so propagation and outage reporting describe the bottleneck its packets
    /// really ride); conversations start cold and suppress deadline-hopeless NACKs, as in
    /// the conversation registry.
    pub fn tenant_options(&self, tenant: usize, ai_oriented: bool) -> NetSessionOptions {
        let path = PathConfig {
            uplink: self.shared_uplink.clone(),
            downlink: clean_downlink(),
        };
        let seed = self.seed + 31 * (tenant as u64 + 1);
        let mut options = if self.tenant_is_ai(tenant, ai_oriented) {
            NetSessionOptions::ai_oriented(seed, path)
        } else {
            NetSessionOptions::traditional(seed, path)
        };
        options.capture_fps = self.capture_fps;
        options.deadline_aware_nack = true;
        if self.resilience {
            options = options.with_resilience();
        }
        options
    }

    /// The scripted turns of one tenant: each tenant watches the same scene from a
    /// tenant-specific offset and rotates through the facts from a tenant-specific
    /// phase, so tenants ask different questions about different windows —
    /// deterministically.
    pub fn tenant_turns(&self, tenant: usize) -> Vec<TenantTurn> {
        let scene = basketball_game(1);
        let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
        let duration = source.duration_secs();
        let count = (self.window_secs * self.capture_fps).floor().max(1.0) as usize;
        (0..self.turns)
            .map(|turn| {
                let question = Question::from_fact(
                    &scene.facts[(turn + tenant) % scene.facts.len()],
                    QuestionFormat::FreeResponse,
                );
                let start = ((turn as f64 + tenant as f64 * 0.37) * self.window_secs) % duration;
                let frames = (0..count)
                    .map(|i| source.frame_at((start + i as f64 / self.capture_fps) % duration))
                    .collect();
                TenantTurn { frames, question }
            })
            .collect()
    }

    /// The full spec of one tenant for the given report leg.
    pub fn tenant_spec(&self, tenant: usize, ai_oriented: bool) -> TenantSpec {
        TenantSpec {
            label: format!("tenant-{tenant}"),
            mode: if self.tenant_is_ai(tenant, ai_oriented) {
                "ai_oriented"
            } else {
                "traditional"
            }
            .to_string(),
            join_at: SimTime::from_secs_f64(self.joins[tenant]),
            think: SimDuration::from_secs_f64(self.think_secs),
            options: self.tenant_options(tenant, ai_oriented),
            turns: self.tenant_turns(tenant),
        }
    }
}

/// The contention registry: named, seeded shared-bottleneck conditions.
pub fn contention_registry() -> Vec<ContentionScenario> {
    let secs = SimTime::from_secs_f64;
    vec![
        ContentionScenario {
            name: "shared-blackout",
            summary: "four staggered tenants on a 16 Mbps bottleneck that goes totally \
                      dark for 500 ms mid-conversation — every tenant must degrade, \
                      recover with finite time-to-recover, and share evenly again",
            seed: 9_101,
            tenants: 4,
            turns: 5,
            window_secs: 1.0,
            capture_fps: 12.0,
            think_secs: 0.3,
            joins: vec![0.0, 0.1, 0.2, 0.3],
            resilience: true,
            nominal_bps: 16e6,
            shared_uplink: LinkConfig {
                bandwidth: BandwidthTrace::constant(16e6),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(16e6, 300),
                loss: LossModel::Iid { rate: 0.005 },
                max_jitter: SimDuration::ZERO,
                faults: FaultSchedule::blackout(secs(3.2), SimDuration::from_millis(500)),
            },
            fairness_window_ms: 500,
            starvation: StarvationConfig {
                enabled: true,
                floor_bps: 120_000.0,
                consecutive_windows: 2,
            },
            admission: AdmissionConfig::disabled(),
            cross_traffic: Vec::new(),
            pinned_ai: None,
        },
        ContentionScenario {
            name: "hotspot-join",
            summary: "three incumbents on an 8 Mbps bottleneck, a fourth tenant joining \
                      mid-conversation right as a 30% loss storm hits — admission clamps \
                      the joiner to its fair share instead of letting it stampede",
            seed: 9_202,
            tenants: 4,
            turns: 5,
            window_secs: 1.0,
            capture_fps: 12.0,
            think_secs: 0.3,
            joins: vec![0.0, 0.0, 0.0, 4.0],
            resilience: true,
            nominal_bps: 8e6,
            shared_uplink: LinkConfig {
                bandwidth: BandwidthTrace::constant(8e6),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(8e6, 300),
                loss: LossModel::Iid { rate: 0.01 },
                max_jitter: SimDuration::ZERO,
                faults: FaultSchedule::new(vec![FaultEpisode {
                    start: secs(3.5),
                    duration: SimDuration::from_secs_f64(1.5),
                    kind: FaultKind::BurstLoss { loss_rate: 0.3 },
                }]),
            },
            fairness_window_ms: 500,
            starvation: StarvationConfig {
                enabled: true,
                floor_bps: 120_000.0,
                consecutive_windows: 2,
            },
            admission: AdmissionConfig {
                enabled: true,
                fair_share_cap: 1.0,
            },
            cross_traffic: Vec::new(),
            pinned_ai: None,
        },
        ContentionScenario {
            name: "cross-traffic-surge",
            summary: "three tenants on a 10 Mbps bottleneck while a 9.5 Mbps elastic \
                      cross-traffic surge squeezes them for 4 s — the starvation \
                      watchdog must notice sustained sub-floor goodput and escalate",
            seed: 9_303,
            tenants: 3,
            turns: 5,
            window_secs: 1.0,
            capture_fps: 12.0,
            think_secs: 0.4,
            joins: vec![0.0, 0.0, 0.0],
            resilience: true,
            nominal_bps: 10e6,
            shared_uplink: LinkConfig {
                bandwidth: BandwidthTrace::constant(10e6),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(10e6, 300),
                loss: LossModel::Iid { rate: 0.005 },
                max_jitter: SimDuration::ZERO,
                faults: FaultSchedule::none(),
            },
            fairness_window_ms: 500,
            starvation: StarvationConfig {
                enabled: true,
                floor_bps: 350_000.0,
                consecutive_windows: 2,
            },
            admission: AdmissionConfig::disabled(),
            cross_traffic: vec![CrossTrafficSpec {
                rate_bps: 9.5e6,
                packet_bytes: 1_200,
                start: secs(2.0),
                stop: secs(6.0),
            }],
            pinned_ai: None,
        },
        ContentionScenario {
            name: "ai-floor-vs-traditional",
            summary: "one AI-oriented tenant holding its accuracy floor among three \
                      traditional peers on a fault-free 5 Mbps bottleneck — does the \
                      floor starve anyone? (watchdog armed, expected silent)",
            seed: 9_404,
            tenants: 4,
            turns: 5,
            window_secs: 1.0,
            capture_fps: 12.0,
            think_secs: 0.3,
            joins: vec![0.0, 0.1, 0.2, 0.3],
            resilience: false,
            nominal_bps: 5e6,
            shared_uplink: LinkConfig {
                bandwidth: BandwidthTrace::constant(5e6),
                propagation_delay: SimDuration::from_millis(30),
                queue_capacity_bytes: queue_bytes_for(5e6, 300),
                loss: LossModel::Iid { rate: 0.01 },
                max_jitter: SimDuration::ZERO,
                faults: FaultSchedule::none(),
            },
            fairness_window_ms: 500,
            starvation: StarvationConfig {
                enabled: true,
                floor_bps: 200_000.0,
                consecutive_windows: 2,
            },
            admission: AdmissionConfig::disabled(),
            cross_traffic: Vec::new(),
            pinned_ai: Some(0),
        },
    ]
}

/// Looks a contention scenario up by name.
pub fn contention_by_name(name: &str) -> Option<ContentionScenario> {
    contention_registry().into_iter().find(|s| s.name == name)
}

/// The per-contention-scenario report: both ABR legs side by side, each a full
/// multi-tenant [`ContentionReport`]. A `pinned_ai` tenant stays AI-oriented in both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionScenarioReport {
    /// The scenario's registry name.
    pub scenario: String,
    /// The run with (unpinned) tenants on traditional estimate-riding ABR.
    pub traditional: ContentionReport,
    /// The run with every tenant on AI-oriented accuracy-floor ABR.
    pub ai_oriented: ContentionReport,
}

/// Runs one contention scenario under one ABR leg.
pub fn run_contention_mode(scenario: &ContentionScenario, ai_oriented: bool) -> ContentionReport {
    let specs = (0..scenario.tenants)
        .map(|t| scenario.tenant_spec(t, ai_oriented))
        .collect();
    run_contention(&scenario.config(), specs)
}

/// Runs one contention scenario under both ABR legs.
pub fn run_contention_scenario(scenario: &ContentionScenario) -> ContentionScenarioReport {
    ContentionScenarioReport {
        scenario: scenario.name.to_string(),
        traditional: run_contention_mode(scenario, false),
        ai_oriented: run_contention_mode(scenario, true),
    }
}

/// Runs the whole contention registry, in registry order.
pub fn run_contention_registry() -> Vec<ContentionScenarioReport> {
    contention_registry()
        .iter()
        .map(run_contention_scenario)
        .collect()
}

/// Runs the contention registry as independent cells across a [`MiniPool`] of
/// `pool_size` lanes, one scenario per cell. Cells share nothing — each builds its own
/// shared link, tenants and timeline — so the result is **bit-identical for any pool
/// size**, the same contract the server engines honour (pinned by the pool-sweep
/// property tests).
pub fn run_contention_cells(pool_size: usize) -> Vec<ContentionScenarioReport> {
    let mut slots: Vec<(ContentionScenario, Option<ContentionScenarioReport>)> =
        contention_registry().into_iter().map(|s| (s, None)).collect();
    let pool = MiniPool::new(pool_size);
    let chunks = slots.len();
    let mut lane_units = vec![(); pool.lanes()];
    pool.for_each_chunk(&mut slots, chunks, &mut lane_units, |_, cells, ()| {
        for (scenario, out) in cells.iter_mut() {
            *out = Some(run_contention_scenario(scenario));
        }
    });
    slots
        .into_iter()
        .map(|(_, report)| report.expect("every cell ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_six_unique_named_scenarios() {
        let reg = registry();
        assert!(reg.len() >= 6, "registry has {}", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "scenario names must be unique");
        assert!(by_name("step-down").is_some());
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn scenario_turns_are_reproducible() {
        let scenario = by_name("constant").unwrap();
        let (frames_a, q_a) = scenario.turn();
        let (frames_b, q_b) = scenario.turn();
        assert_eq!(frames_a, frames_b);
        assert_eq!(q_a, q_b);
        assert_eq!(frames_a.len(), 36);
    }

    #[test]
    fn conversation_registry_has_at_least_three_unique_named_scenarios() {
        let reg = conversation_registry();
        assert!(reg.len() >= 3, "registry has {}", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            reg.len(),
            "conversation scenario names must be unique"
        );
        assert!(conversation_by_name("lte-8turn").is_some());
        assert!(conversation_by_name("no-such-conversation").is_none());
        // At least one scenario exercises trace looping (the wrap-around satellite).
        assert!(reg
            .iter()
            .any(|s| s.path.uplink.bandwidth.loop_period().is_some()));
    }

    #[test]
    fn conversation_turns_are_reproducible_and_rotate_questions() {
        let scenario = conversation_by_name("bursty-think-time").unwrap();
        let (frames_a, q_a) = scenario.turn(2);
        let (frames_b, q_b) = scenario.turn(2);
        assert_eq!(frames_a, frames_b);
        assert_eq!(q_a, q_b);
        assert_eq!(frames_a.len(), 18);
        let (_, q_other) = scenario.turn(3);
        assert_ne!(q_a, q_other, "consecutive turns ask different questions");
    }

    #[test]
    fn fault_scenarios_engage_the_ladder_and_recover() {
        let scenario = by_name("handover-blackout").unwrap();
        assert!(scenario.resilience);
        let (trad, ai) = run_modes(&scenario);
        for (mode, r) in [("traditional", &trad), ("ai_oriented", &ai)] {
            let res = &r.resilience;
            assert_eq!(res.outage_ms, 500.0, "{mode}: the schedule's blackout length");
            assert!(res.outage_drops > 0, "{mode}: blackout must drop sends");
            assert!(res.watchdog_fallbacks > 0, "{mode}: watchdog must fire");
            assert!(
                res.captures_suppressed > 0 && res.probes_sent == res.captures_suppressed,
                "{mode}: every suppressed capture sends one keep-alive probe"
            );
            assert!(res.degradation_events > 0, "{mode}: ladder transitions counted");
            let ttr = res.time_to_recover_ms.unwrap_or(f64::NAN);
            assert!(
                ttr.is_finite() && ttr > 0.0,
                "{mode}: time_to_recover_ms must be finite, got {ttr}"
            );
        }
    }

    #[test]
    fn duplication_and_reordering_counters_are_surfaced() {
        let scenario = by_name("rtt-spike-midturn").unwrap();
        let (trad, ai) = run_modes(&scenario);
        assert!(
            trad.resilience.packets_duplicated + ai.resilience.packets_duplicated > 0,
            "a 5% duplicate episode over two seconds must duplicate something"
        );
        assert!(
            trad.resilience.packets_reordered + ai.resilience.packets_reordered > 0,
            "a 5% reorder episode over two seconds must reorder something"
        );
    }

    #[test]
    fn fault_free_scenarios_report_quiet_telemetry() {
        // The serialization-omission condition behind fixture bit-identity: without a
        // fault schedule or the resilience stack, the telemetry stays all-default.
        let scenario = by_name("constant").unwrap();
        let (trad, ai) = run_modes(&scenario);
        assert!(trad.resilience.is_quiet());
        assert!(ai.resilience.is_quiet());
    }

    #[test]
    fn burst_storm_conversation_recovers_within_the_conversation() {
        let scenario = conversation_by_name("burst-storm-conversation").unwrap();
        assert!(scenario.resilience);
        let report = run_conversation_mode(&scenario, true);
        let res = &report.resilience;
        assert_eq!(res.outage_ms, 400.0);
        assert!(res.watchdog_fallbacks > 0);
        let ttr = res.time_to_recover_ms.unwrap_or(f64::NAN);
        assert!(ttr.is_finite() && ttr > 0.0, "conversation ttr {ttr}");
        // The storm is confined to one turn; the others stay quiet.
        assert!(report.turns.iter().any(|t| t.resilience.is_quiet()));
    }

    #[test]
    fn contention_registry_is_well_formed() {
        let reg = contention_registry();
        assert!(reg.len() >= 4, "registry has {}", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "contention scenario names must be unique");
        for s in &reg {
            assert_eq!(s.joins.len(), s.tenants, "{}: one join time per tenant", s.name);
            assert!(s.tenants >= 3, "{}: contention needs several tenants", s.name);
            if let Some(pinned) = s.pinned_ai {
                assert!(pinned < s.tenants, "{}: pinned tenant exists", s.name);
            }
        }
        assert!(contention_by_name("shared-blackout").is_some());
        assert!(contention_by_name("no-such-contention").is_none());
        // The acceptance scenario: K ≥ 4 tenants sharing one blackout.
        let blackout = contention_by_name("shared-blackout").unwrap();
        assert!(blackout.tenants >= 4);
        assert!(blackout
            .shared_uplink
            .faults
            .episodes()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Outage)));
    }

    #[test]
    fn contention_tenant_scripts_differ_between_tenants() {
        let scenario = contention_by_name("shared-blackout").unwrap();
        let a = scenario.tenant_turns(0);
        let b = scenario.tenant_turns(1);
        assert_eq!(a.len(), scenario.turns);
        assert_ne!(a[0].question, b[0].question, "tenants ask from different phases");
        assert_ne!(a[0].frames, b[0].frames, "tenants watch different windows");
        // And the scripts are reproducible.
        assert_eq!(a, scenario.tenant_turns(0));
    }

    #[test]
    fn pinned_tenant_stays_ai_oriented_in_both_legs() {
        let scenario = contention_by_name("ai-floor-vs-traditional").unwrap();
        let trad_leg = scenario.tenant_spec(0, false);
        assert_eq!(trad_leg.mode, "ai_oriented");
        let peer = scenario.tenant_spec(1, false);
        assert_eq!(peer.mode, "traditional");
        let ai_leg = scenario.tenant_spec(1, true);
        assert_eq!(ai_leg.mode, "ai_oriented");
    }

    #[test]
    fn options_differ_only_in_abr_objective() {
        let scenario = by_name("bursty-loss").unwrap();
        let trad = scenario.options(false);
        let ai = scenario.options(true);
        assert_eq!(trad.seed, ai.seed);
        assert_eq!(trad.capture_fps, ai.capture_fps);
        assert_ne!(
            trad.abr.target_bitrate(8e6),
            ai.abr.target_bitrate(8e6),
            "the two modes must pursue different objectives"
        );
    }
}
