//! The scenario engine: named, seeded network conditions under which every future
//! congestion/scheduling change is evaluated.
//!
//! A [`Scenario`] bundles a time-varying uplink ([`BandwidthTrace`] + loss model), a seed
//! and a turn shape. [`run_scenario`] pushes one chat turn through the network-in-the-loop
//! session ([`crate::NetworkedChatSession`]) **twice** — once with traditional
//! estimate-riding ABR and once with the paper's AI-oriented accuracy-floor ABR — and once
//! more as a small multi-session [`crate::NetworkedChatServer`] workload, then reports
//! goodput, per-frame latency percentiles, loss/recovery counters and answer accuracy side
//! by side (§2.2 / §3.2, Figure 3).
//!
//! Everything is deterministic: a given registry entry reproduces bit-identical
//! [`ScenarioReport`]s across runs and pool sizes, which the golden regression fixtures
//! under `tests/fixtures/` pin down — transport behaviour changes must be intentional and
//! reviewed alongside a fixture update.

use crate::conversation::{Conversation, ConversationReport};
use crate::net_session::{queue_bytes_for, NetSessionOptions, NetTurnReport, NetworkedChatSession};
use crate::server::NetworkedChatServer;
use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::{
    BandwidthTrace, FaultEpisode, FaultKind, FaultSchedule, LinkConfig, LossModel, PathConfig, SimDuration,
    SimTime,
};
use aivc_scene::templates::basketball_game;
use aivc_scene::{Frame, SourceConfig, VideoSource};
use serde::{Deserialize, Serialize};

/// One named network scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key (also the fixture file name).
    pub name: &'static str,
    /// One-line description of the condition being modelled.
    pub summary: &'static str,
    /// Seed for every stochastic process of the scenario.
    pub seed: u64,
    /// Length of the captured turn window in seconds.
    pub window_secs: f64,
    /// Capture rate of the turn window.
    pub capture_fps: f64,
    /// When true, the session runs with the full outage-resilience stack on
    /// ([`NetSessionOptions::with_resilience`]): feedback watchdog, adaptive FEC and the
    /// graceful-degradation ladder. Fault-injection scenarios set this; the pre-existing
    /// registry entries keep it off, preserving their fixtures bit for bit.
    pub resilience: bool,
    /// The bidirectional path (the uplink carries the video).
    pub path: PathConfig,
}

impl Scenario {
    /// The session options this scenario uses for the given ABR mode.
    pub fn options(&self, ai_oriented: bool) -> NetSessionOptions {
        let mut options = if ai_oriented {
            NetSessionOptions::ai_oriented(self.seed, self.path.clone())
        } else {
            NetSessionOptions::traditional(self.seed, self.path.clone())
        };
        options.capture_fps = self.capture_fps;
        // Scenarios model a mid-conversation turn: the controller already holds a
        // several-Mbps estimate from earlier turns, so traditional ABR is immediately
        // aggressive while AI-oriented ABR sticks to its floor.
        options.gcc.initial_estimate_bps = 2_500_000.0;
        if self.resilience {
            options = options.with_resilience();
        }
        options
    }

    /// The turn window and question every scenario run uses (same scene and detail
    /// question, so accuracy differences come from the network alone).
    pub fn turn(&self) -> (Vec<Frame>, Question) {
        let scene = basketball_game(1);
        let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
        let question = Question::from_fact(&scene.facts[1], QuestionFormat::FreeResponse);
        let start = (source.duration_secs() - self.window_secs).max(0.0);
        let count = (self.window_secs * self.capture_fps).floor().max(1.0) as usize;
        let frames = (0..count)
            .map(|i| source.frame_at(start + i as f64 / self.capture_fps))
            .collect();
        (frames, question)
    }
}

/// A clean 30 ms one-way downlink for feedback, as in the paper's testbed.
fn clean_downlink() -> LinkConfig {
    LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None)
}

fn uplink(bandwidth: BandwidthTrace, nominal_bps: f64, loss: LossModel) -> PathConfig {
    uplink_with_faults(bandwidth, nominal_bps, loss, FaultSchedule::none())
}

/// [`uplink`] with a deterministic fault schedule composed over the uplink's sends.
fn uplink_with_faults(
    bandwidth: BandwidthTrace,
    nominal_bps: f64,
    loss: LossModel,
    faults: FaultSchedule,
) -> PathConfig {
    PathConfig {
        uplink: LinkConfig {
            bandwidth,
            propagation_delay: SimDuration::from_millis(30),
            queue_capacity_bytes: queue_bytes_for(nominal_bps, 300),
            loss,
            max_jitter: SimDuration::ZERO,
            faults,
        },
        downlink: clean_downlink(),
    }
}

/// The scenario registry: ≥ 6 named, seeded network conditions covering the shapes the
/// related adaptive-transport literature validates against (constant, step, periodic,
/// random-walk, bursty loss, LTE-like segment schedules).
pub fn registry() -> Vec<Scenario> {
    let secs = SimTime::from_secs_f64;
    vec![
        Scenario {
            name: "constant",
            summary: "the paper's 10 Mbps / 30 ms link with 1% i.i.d. loss",
            seed: 101,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::constant(10e6),
                10e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "step-down",
            summary: "8 Mbps dropping to 1.2 Mbps mid-turn (handover / contention onset)",
            seed: 202,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::step(8e6, 1.2e6, secs(1.5)),
                8e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "square-wave",
            summary: "capacity oscillating 8 ↔ 1.5 Mbps every second (periodic cross traffic)",
            seed: 303,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::square_wave(8e6, 1.5e6, secs(1.0), secs(8.0)),
                8e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "random-walk",
            summary: "a bounded multiplicative random walk between 1 and 9 Mbps",
            seed: 404,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::random_walk(404, 5e6, 1e6, 9e6, secs(0.5), secs(8.0)),
                5e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        Scenario {
            name: "bursty-loss",
            summary: "4 Mbps with Gilbert–Elliott bursts (8% mean loss, ~16-packet bursts)",
            seed: 505,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(BandwidthTrace::constant(4e6), 4e6, LossModel::bursty(0.08, 16.0)),
        },
        Scenario {
            name: "lte-like",
            summary: "LTE-like segments: 12 → 5 → 0.9 → 3 → 10 Mbps across the turn",
            seed: 606,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::from_segments(vec![
                    (SimTime::ZERO, 12e6),
                    (secs(1.0), 5e6),
                    (secs(1.8), 0.9e6),
                    (secs(2.6), 3e6),
                    (secs(3.2), 10e6),
                ]),
                12e6,
                LossModel::Iid { rate: 0.005 },
            ),
        },
        Scenario {
            name: "handover-blackout",
            summary: "10 Mbps with a 500 ms total blackout mid-turn (radio handover) — the \
                      watchdog falls back during the silence and the ladder suppresses \
                      captures until feedback returns",
            seed: 707,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: true,
            path: uplink_with_faults(
                BandwidthTrace::constant(10e6),
                10e6,
                LossModel::Iid { rate: 0.01 },
                FaultSchedule::blackout(secs(1.2), SimDuration::from_millis(500)),
            ),
        },
        Scenario {
            name: "rtt-spike-midturn",
            summary: "8 Mbps where the path reroutes mid-turn: a 250 ms blackout at the \
                      switch, +250 ms one-way delay for a second, and 5% duplication and \
                      bounded reordering while the routes converge",
            seed: 808,
            window_secs: 3.0,
            capture_fps: 12.0,
            resilience: true,
            path: uplink_with_faults(
                BandwidthTrace::constant(8e6),
                8e6,
                LossModel::Iid { rate: 0.005 },
                FaultSchedule::new(vec![
                    FaultEpisode {
                        start: secs(1.0),
                        duration: SimDuration::from_millis(250),
                        kind: FaultKind::Outage,
                    },
                    FaultEpisode {
                        start: secs(1.0),
                        duration: SimDuration::from_secs_f64(1.0),
                        kind: FaultKind::RttSpike {
                            extra_delay: SimDuration::from_millis(250),
                        },
                    },
                    FaultEpisode {
                        start: secs(0.5),
                        duration: SimDuration::from_secs_f64(2.0),
                        kind: FaultKind::Duplicate { probability: 0.05 },
                    },
                    FaultEpisode {
                        start: secs(0.5),
                        duration: SimDuration::from_secs_f64(2.0),
                        kind: FaultKind::Reorder {
                            probability: 0.05,
                            max_delay: SimDuration::from_millis(40),
                        },
                    },
                ]),
            ),
        },
    ]
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The per-scenario report: both ABR modes side by side plus a small multi-session
/// [`NetworkedChatServer`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The scenario's registry name.
    pub scenario: String,
    /// The turn under traditional estimate-riding ABR.
    pub traditional: NetTurnReport,
    /// The turn under AI-oriented accuracy-floor ABR.
    pub ai_oriented: NetTurnReport,
    /// Sessions in the multi-session server run (AI-oriented mode).
    pub server_sessions: usize,
    /// Fraction of server sessions that answered correctly.
    pub server_correct_fraction: f64,
    /// Mean probability of a correct answer across server sessions.
    pub server_mean_probability: f64,
}

/// Runs a scenario's single-session turns: `(traditional, ai_oriented)`.
pub fn run_modes(scenario: &Scenario) -> (NetTurnReport, NetTurnReport) {
    let (frames, question) = scenario.turn();
    run_modes_on(scenario, &frames, &question)
}

/// [`run_modes`] over an already-synthesized turn window.
fn run_modes_on(
    scenario: &Scenario,
    frames: &[Frame],
    question: &Question,
) -> (NetTurnReport, NetTurnReport) {
    let mut traditional = NetworkedChatSession::with_defaults(scenario.options(false));
    let mut ai = NetworkedChatSession::with_defaults(scenario.options(true));
    (
        traditional.run_turn(frames, question),
        ai.run_turn(frames, question),
    )
}

/// Sessions the multi-session leg of [`run_scenario`] uses.
pub const SERVER_SESSIONS: usize = 3;

/// Runs one scenario end to end: both single-session ABR modes plus a
/// [`SERVER_SESSIONS`]-session server workload spread over `pool_size` lanes. The result
/// is bit-identical for any `pool_size` (sessions share nothing).
pub fn run_scenario(scenario: &Scenario, pool_size: usize) -> ScenarioReport {
    let (frames, question) = scenario.turn();
    let (traditional, ai_oriented) = run_modes_on(scenario, &frames, &question);
    let mut server = NetworkedChatServer::new(pool_size, SERVER_SESSIONS, scenario.options(true));
    server.run_turns(&frames, &question);
    ScenarioReport {
        scenario: scenario.name.to_string(),
        traditional,
        ai_oriented,
        server_sessions: SERVER_SESSIONS,
        server_correct_fraction: server.correct_fraction(),
        server_mean_probability: server.mean_probability_correct(),
    }
}

/// Runs the whole registry, in registry order.
pub fn run_registry(pool_size: usize) -> Vec<ScenarioReport> {
    registry().iter().map(|s| run_scenario(s, pool_size)).collect()
}

// ---------------------------------------------------------------------------------------
// Multi-turn conversation scenarios (the continuous-timeline engine, `crate::Conversation`)
// ---------------------------------------------------------------------------------------

/// One named multi-turn conversation scenario: a sequence of chat turns over one
/// persistent transport timeline, with user think time between turns. Where the
/// single-turn registry pins a *turn*'s behaviour, these pin a *conversation*'s —
/// GCC warm-up across turns, queue carry-over, trace position spanning turns, NACK/RTX
/// state surviving think gaps.
#[derive(Debug, Clone)]
pub struct ConversationScenario {
    /// Registry key (also the fixture file name).
    pub name: &'static str,
    /// One-line description of the condition being modelled.
    pub summary: &'static str,
    /// Seed for every stochastic process of the scenario.
    pub seed: u64,
    /// Number of chat turns in the conversation.
    pub turns: usize,
    /// Length of each captured turn window in seconds.
    pub window_secs: f64,
    /// Capture rate of the turn windows.
    pub capture_fps: f64,
    /// The user's think time between consecutive turns, in seconds.
    pub think_secs: f64,
    /// When true, the session runs with the full outage-resilience stack on
    /// ([`NetSessionOptions::with_resilience`]). Fault-injection scenarios set this; the
    /// pre-existing registry entries keep it off, preserving their fixtures bit for bit.
    pub resilience: bool,
    /// The bidirectional path (the uplink carries the video). The uplink trace may be
    /// shorter than the conversation — looping traces span turns by design.
    pub path: PathConfig,
}

impl ConversationScenario {
    /// The session options this scenario uses for the given ABR mode. Conversations start
    /// **cold** (the default 1 Mbps initial estimate) so warm-up across turns is visible,
    /// and enable deadline-aware NACK suppression — a retransmit that cannot beat a turn's
    /// answer deadline is wasted uplink on a shared timeline.
    pub fn options(&self, ai_oriented: bool) -> NetSessionOptions {
        let mut options = if ai_oriented {
            NetSessionOptions::ai_oriented(self.seed, self.path.clone())
        } else {
            NetSessionOptions::traditional(self.seed, self.path.clone())
        };
        options.capture_fps = self.capture_fps;
        options.deadline_aware_nack = true;
        if self.resilience {
            options = options.with_resilience();
        }
        options
    }

    /// The think gap as a simulated duration.
    pub fn think_gap(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.think_secs)
    }

    /// The captured window and question of turn `turn`. Successive turns advance through
    /// the source video (wrapping at its end) and rotate through the scene's facts, so a
    /// conversation asks about evolving content — deterministically.
    pub fn turn(&self, turn: usize) -> (Vec<Frame>, Question) {
        let scene = basketball_game(1);
        let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
        let question = Question::from_fact(
            &scene.facts[turn % scene.facts.len()],
            QuestionFormat::FreeResponse,
        );
        let duration = source.duration_secs();
        let count = (self.window_secs * self.capture_fps).floor().max(1.0) as usize;
        let start = (turn as f64 * self.window_secs) % duration;
        let frames = (0..count)
            .map(|i| source.frame_at((start + i as f64 / self.capture_fps) % duration))
            .collect();
        (frames, question)
    }
}

/// The conversation registry: ≥ 3 named, seeded multi-turn conditions.
pub fn conversation_registry() -> Vec<ConversationScenario> {
    let secs = SimTime::from_secs_f64;
    vec![
        ConversationScenario {
            name: "lte-8turn",
            summary: "an 8-turn conversation over a looping LTE-like trace (12→5→0.9→3→10 Mbps \
                      per 4 s period) with 1 s think time — the trace wraps several times",
            seed: 1_001,
            turns: 8,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 1.0,
            resilience: false,
            path: uplink(
                BandwidthTrace::from_segments(vec![
                    (SimTime::ZERO, 12e6),
                    (secs(1.0), 5e6),
                    (secs(1.8), 0.9e6),
                    (secs(2.6), 3e6),
                    (secs(3.2), 10e6),
                ])
                .looping(SimDuration::from_secs_f64(4.0)),
                12e6,
                LossModel::Iid { rate: 0.005 },
            ),
        },
        ConversationScenario {
            name: "stepdown-mid-conversation",
            summary: "8 Mbps collapsing to 1.2 Mbps at t = 6 s — mid-conversation, between \
                      turns, so only a warm controller sees it coming",
            seed: 2_002,
            turns: 6,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 0.8,
            resilience: false,
            path: uplink(
                BandwidthTrace::step(8e6, 1.2e6, secs(6.0)),
                8e6,
                LossModel::Iid { rate: 0.01 },
            ),
        },
        ConversationScenario {
            name: "bursty-think-time",
            summary: "4 Mbps with Gilbert–Elliott bursts (8% mean loss, ~16-packet bursts) and \
                      1.2 s think gaps — recovery state must survive the silences",
            seed: 3_003,
            turns: 6,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 1.2,
            resilience: false,
            path: uplink(BandwidthTrace::constant(4e6), 4e6, LossModel::bursty(0.08, 16.0)),
        },
        ConversationScenario {
            name: "burst-storm-conversation",
            summary: "4 Mbps with Gilbert–Elliott bursts plus an injected loss storm (50% for \
                      1 s) containing a 400 ms blackout that lands mid-turn — the resilience \
                      stack degrades gracefully and recovers within the conversation",
            seed: 4_004,
            turns: 6,
            window_secs: 1.5,
            capture_fps: 12.0,
            think_secs: 1.2,
            resilience: true,
            path: uplink_with_faults(
                BandwidthTrace::constant(4e6),
                4e6,
                LossModel::bursty(0.08, 16.0),
                FaultSchedule::new(vec![
                    FaultEpisode {
                        start: SimTime::from_secs_f64(3.0),
                        duration: SimDuration::from_secs_f64(1.0),
                        kind: FaultKind::BurstLoss { loss_rate: 0.5 },
                    },
                    FaultEpisode {
                        start: SimTime::from_secs_f64(3.2),
                        duration: SimDuration::from_millis(400),
                        kind: FaultKind::Outage,
                    },
                ]),
            ),
        },
    ]
}

/// Looks a conversation scenario up by name.
pub fn conversation_by_name(name: &str) -> Option<ConversationScenario> {
    conversation_registry().into_iter().find(|s| s.name == name)
}

/// The per-conversation-scenario report: both ABR modes side by side, each a full
/// cross-turn [`ConversationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversationScenarioReport {
    /// The scenario's registry name.
    pub scenario: String,
    /// The conversation under traditional estimate-riding ABR.
    pub traditional: ConversationReport,
    /// The conversation under AI-oriented accuracy-floor ABR.
    pub ai_oriented: ConversationReport,
}

/// Runs one conversation scenario end to end under one ABR mode.
pub fn run_conversation_mode(scenario: &ConversationScenario, ai_oriented: bool) -> ConversationReport {
    let mut conversation = Conversation::with_defaults(scenario.options(ai_oriented), scenario.think_gap());
    for turn in 0..scenario.turns {
        let (frames, question) = scenario.turn(turn);
        conversation.run_turn(&frames, &question);
    }
    conversation.report()
}

/// Runs one conversation scenario under both ABR modes.
pub fn run_conversation_scenario(scenario: &ConversationScenario) -> ConversationScenarioReport {
    ConversationScenarioReport {
        scenario: scenario.name.to_string(),
        traditional: run_conversation_mode(scenario, false),
        ai_oriented: run_conversation_mode(scenario, true),
    }
}

/// Runs the whole conversation registry, in registry order.
pub fn run_conversation_registry() -> Vec<ConversationScenarioReport> {
    conversation_registry()
        .iter()
        .map(run_conversation_scenario)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_six_unique_named_scenarios() {
        let reg = registry();
        assert!(reg.len() >= 6, "registry has {}", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "scenario names must be unique");
        assert!(by_name("step-down").is_some());
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn scenario_turns_are_reproducible() {
        let scenario = by_name("constant").unwrap();
        let (frames_a, q_a) = scenario.turn();
        let (frames_b, q_b) = scenario.turn();
        assert_eq!(frames_a, frames_b);
        assert_eq!(q_a, q_b);
        assert_eq!(frames_a.len(), 36);
    }

    #[test]
    fn conversation_registry_has_at_least_three_unique_named_scenarios() {
        let reg = conversation_registry();
        assert!(reg.len() >= 3, "registry has {}", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            reg.len(),
            "conversation scenario names must be unique"
        );
        assert!(conversation_by_name("lte-8turn").is_some());
        assert!(conversation_by_name("no-such-conversation").is_none());
        // At least one scenario exercises trace looping (the wrap-around satellite).
        assert!(reg
            .iter()
            .any(|s| s.path.uplink.bandwidth.loop_period().is_some()));
    }

    #[test]
    fn conversation_turns_are_reproducible_and_rotate_questions() {
        let scenario = conversation_by_name("bursty-think-time").unwrap();
        let (frames_a, q_a) = scenario.turn(2);
        let (frames_b, q_b) = scenario.turn(2);
        assert_eq!(frames_a, frames_b);
        assert_eq!(q_a, q_b);
        assert_eq!(frames_a.len(), 18);
        let (_, q_other) = scenario.turn(3);
        assert_ne!(q_a, q_other, "consecutive turns ask different questions");
    }

    #[test]
    fn fault_scenarios_engage_the_ladder_and_recover() {
        let scenario = by_name("handover-blackout").unwrap();
        assert!(scenario.resilience);
        let (trad, ai) = run_modes(&scenario);
        for (mode, r) in [("traditional", &trad), ("ai_oriented", &ai)] {
            let res = &r.resilience;
            assert_eq!(res.outage_ms, 500.0, "{mode}: the schedule's blackout length");
            assert!(res.outage_drops > 0, "{mode}: blackout must drop sends");
            assert!(res.watchdog_fallbacks > 0, "{mode}: watchdog must fire");
            assert!(
                res.captures_suppressed > 0 && res.probes_sent == res.captures_suppressed,
                "{mode}: every suppressed capture sends one keep-alive probe"
            );
            assert!(res.degradation_events > 0, "{mode}: ladder transitions counted");
            let ttr = res.time_to_recover_ms.unwrap_or(f64::NAN);
            assert!(
                ttr.is_finite() && ttr > 0.0,
                "{mode}: time_to_recover_ms must be finite, got {ttr}"
            );
        }
    }

    #[test]
    fn duplication_and_reordering_counters_are_surfaced() {
        let scenario = by_name("rtt-spike-midturn").unwrap();
        let (trad, ai) = run_modes(&scenario);
        assert!(
            trad.resilience.packets_duplicated + ai.resilience.packets_duplicated > 0,
            "a 5% duplicate episode over two seconds must duplicate something"
        );
        assert!(
            trad.resilience.packets_reordered + ai.resilience.packets_reordered > 0,
            "a 5% reorder episode over two seconds must reorder something"
        );
    }

    #[test]
    fn fault_free_scenarios_report_quiet_telemetry() {
        // The serialization-omission condition behind fixture bit-identity: without a
        // fault schedule or the resilience stack, the telemetry stays all-default.
        let scenario = by_name("constant").unwrap();
        let (trad, ai) = run_modes(&scenario);
        assert!(trad.resilience.is_quiet());
        assert!(ai.resilience.is_quiet());
    }

    #[test]
    fn burst_storm_conversation_recovers_within_the_conversation() {
        let scenario = conversation_by_name("burst-storm-conversation").unwrap();
        assert!(scenario.resilience);
        let report = run_conversation_mode(&scenario, true);
        let res = &report.resilience;
        assert_eq!(res.outage_ms, 400.0);
        assert!(res.watchdog_fallbacks > 0);
        let ttr = res.time_to_recover_ms.unwrap_or(f64::NAN);
        assert!(ttr.is_finite() && ttr > 0.0, "conversation ttr {ttr}");
        // The storm is confined to one turn; the others stay quiet.
        assert!(report.turns.iter().any(|t| t.resilience.is_quiet()));
    }

    #[test]
    fn options_differ_only_in_abr_objective() {
        let scenario = by_name("bursty-loss").unwrap();
        let trad = scenario.options(false);
        let ai = scenario.options(true);
        assert_eq!(trad.seed, ai.seed);
        assert_eq!(trad.capture_fps, ai.capture_fps);
        assert_ne!(
            trad.abr.target_bitrate(8e6),
            ai.abr.target_bitrate(8e6),
            "the two modes must pursue different objectives"
        );
    }
}
