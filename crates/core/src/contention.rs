//! Multi-tenant contention: K conversations (plus cross-traffic) on one shared bottleneck.
//!
//! Single-tenant experiments ([`crate::Conversation`]) give every session a private link,
//! so PR 6's outage resilience is only ever proven in isolation. Production serving is the
//! opposite: many users squeeze through one uplink/cell, and a blackout there hits every
//! tenant at once. This module multiplexes K persistent conversation timelines onto **one**
//! `aivc-sim` event queue and **one** [`SharedLink`]:
//!
//! * every tenant keeps its own [`NetCompute`]/[`GccController`]/[`Transport`] — exactly
//!   the state a [`crate::Conversation`] owns — but its uplink packets ride a shared
//!   bottleneck as one flow among K (+ cross-traffic), via
//!   [`crate::net_turn::UplinkPort::Shared`];
//! * tenant turn lifecycles become events ([`MtEvent::TurnBegin`]/[`MtEvent::TurnEnd`])
//!   on the global timeline, so turns of different tenants interleave packet-by-packet in
//!   strict chronological order — the dslab-style ping-pong actor pattern, scaled out;
//! * a **starvation watchdog** samples per-tenant goodput every fairness window: a tenant
//!   whose share stays below a configured floor for consecutive windows gets its PR 6
//!   degradation ladder escalated ([`GccController::force_fallback`]) and the event is
//!   *counted*, never silently absorbed;
//! * **fairness telemetry** records each window's per-tenant share and Jain's index, plus
//!   a post-recovery index over everything delivered after the last shared outage ends;
//! * **late-joiner admission** clamps a joining tenant's initial estimate to its fair
//!   share of the nominal rate, so it converges without stampeding incumbents.
//!
//! Determinism: one global event queue, one shared-link RNG, tie-break by insertion
//! order. With K = 1 and the shared link seeded like the tenant's private uplink, the
//! engine reproduces a [`crate::Conversation`] bit-for-bit (pinned by a test below). The
//! single measure-zero caveat: a packet left in flight by turn `k` that lands exactly one
//! microsecond after turn `k+1`'s answer deadline is processed before that turn concludes
//! here, whereas a `Conversation` would process it just after — both orders are
//! deterministic, and no integer-microsecond schedule in the registry exhibits the tie.

use crate::context_aware::StreamerConfig;
use crate::conversation::ConversationReport;
use crate::net_session::{FaultTelemetry, NetSessionOptions, NetTurnReport};
use crate::net_turn::{
    begin_turn_window, conclude_turn_window, finish_turn, NetCompute, NetEvent, NetEventSink, PacketRun,
    Transport, TurnMachine, TurnPlan, UplinkPort,
};
use aivc_mllm::Question;
use aivc_netsim::{jain_index, FaultKind, LatencyStats, LinkConfig, LinkCounters, Packet, SharedLink};
use aivc_rtc::cc::GccController;
use aivc_scene::Frame;
use aivc_semantics::ClipModel;
use aivc_sim::{Actor, SimDuration, SimTime, Simulation};
use serde::{Deserialize, Serialize};

/// One scripted turn of a tenant's conversation.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTurn {
    /// The turn's capture window.
    pub frames: Vec<Frame>,
    /// The user's question for the turn.
    pub question: Question,
}

/// One tenant: a full conversation (options + scripted turns) joining the shared
/// bottleneck at `join_at`.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display label ("tenant-0", "joiner", ...).
    pub label: String,
    /// ABR-mode label for the report ("ai_oriented" / "traditional").
    pub mode: String,
    /// When the tenant's first turn begins on the global timeline.
    pub join_at: SimTime,
    /// Think time inserted between consecutive turns.
    pub think: SimDuration,
    /// Session options. `options.path.uplink` must equal the shared link's config so
    /// propagation delays and outage reporting see the bottleneck the packets really
    /// ride; the private uplink it configures sits idle (its RNG is never drawn from).
    pub options: NetSessionOptions,
    /// The scripted turns.
    pub turns: Vec<TenantTurn>,
}

/// Background cross-traffic: fixed-size packets offered at a constant rate over
/// `[start, stop)`, contending as one extra flow on the shared link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossTrafficSpec {
    /// Offered rate in bits per second.
    pub rate_bps: f64,
    /// Size of each packet.
    pub packet_bytes: u32,
    /// First send time.
    pub start: SimTime,
    /// Exclusive end of the sending window.
    pub stop: SimTime,
}

/// Starvation-watchdog configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StarvationConfig {
    /// Master switch.
    pub enabled: bool,
    /// Windowed-goodput floor (bits per second) below which a tenant counts as starving.
    pub floor_bps: f64,
    /// How many *consecutive* starving windows escalate the tenant's degradation ladder.
    pub consecutive_windows: u32,
}

impl StarvationConfig {
    /// Watchdog off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            floor_bps: 0.0,
            consecutive_windows: u32::MAX,
        }
    }
}

/// Late-joiner admission configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Master switch.
    pub enabled: bool,
    /// A joiner's initial estimate is clamped to
    /// `nominal_bps * fair_share_cap / active_tenants`.
    pub fair_share_cap: f64,
}

impl AdmissionConfig {
    /// Admission control off: joiners start from their configured initial estimate.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            fair_share_cap: 1.0,
        }
    }
}

/// Configuration of one contention run.
#[derive(Debug, Clone)]
pub struct ContentionConfig {
    /// The shared bottleneck every tenant (and cross-traffic source) contends for.
    pub shared_uplink: LinkConfig,
    /// Seed of the shared link's random processes.
    pub shared_seed: u64,
    /// Nominal bottleneck rate (bits per second) — the fair-share denominator for
    /// admission control.
    pub nominal_bps: f64,
    /// Width of the fairness-telemetry sampling window.
    pub fairness_window: SimDuration,
    /// Starvation-watchdog settings.
    pub starvation: StarvationConfig,
    /// Late-joiner admission settings.
    pub admission: AdmissionConfig,
    /// Background cross-traffic sources.
    pub cross_traffic: Vec<CrossTrafficSpec>,
}

/// One fairness-telemetry sample: shares over the window ending at `end_ms`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessWindow {
    /// Window end, in milliseconds of global simulated time.
    pub end_ms: f64,
    /// Tenants mid-conversation during the window (the Jain population).
    pub active_tenants: u32,
    /// Jain's index over the active tenants' windowed goodput shares.
    pub jain: f64,
    /// Windowed goodput of every tenant (active or not), bits per second.
    pub shares_bps: Vec<f64>,
}

/// Fairness telemetry over a whole contention run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Sampling window width in milliseconds.
    pub window_ms: f64,
    /// Jain's index over each tenant's total delivered bytes.
    pub jain_overall: f64,
    /// Jain's index over bytes delivered after the last shared outage ended — the
    /// "did everyone recover *together*" number. `None` when the shared link has no
    /// outage episodes.
    pub jain_post_recovery: Option<f64>,
    /// Every sampled window, in time order.
    pub windows: Vec<FairnessWindow>,
}

/// One tenant's slice of a [`ContentionReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// The tenant's label.
    pub label: String,
    /// ABR-mode label.
    pub mode: String,
    /// Join time in milliseconds.
    pub join_ms: f64,
    /// Bytes the shared link delivered for this tenant.
    pub delivered_bytes: u64,
    /// This tenant's fraction of all tenant-delivered bytes.
    pub goodput_share: f64,
    /// Starvation-watchdog escalations charged to this tenant.
    pub starvation_events: u64,
    /// The tenant's full conversation report (same shape as a single-tenant run).
    pub conversation: ConversationReport,
}

/// The report of one multi-tenant contention run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Per-tenant results, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Windowed fairness telemetry.
    pub fairness: FairnessReport,
    /// Aggregate counters of the shared link (tenants + cross-traffic).
    pub shared_link: LinkCounters,
    /// Bytes delivered for cross-traffic flows.
    pub cross_traffic_delivered_bytes: u64,
}

impl ContentionReport {
    /// Every tenant observed a finite outage recovery (`time_to_recover_ms`).
    pub fn all_tenants_recovered(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.conversation.resilience.time_to_recover_ms.is_some())
    }

    /// Total starvation escalations across tenants.
    pub fn starvation_events_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.starvation_events).sum()
    }
}

/// Events of the multi-tenant timeline.
#[derive(Debug)]
enum MtEvent {
    /// A tenant's transport event (capture, send, arrival, poll, feedback).
    Net { tenant: usize, ev: NetEvent },
    /// A tenant's next turn window opens.
    TurnBegin { tenant: usize },
    /// A tenant's turn deadline passed: conclude and report.
    TurnEnd { tenant: usize },
    /// A cross-traffic source offers its next packet.
    Cross { source: usize },
    /// The fairness/starvation sampling tick.
    FairnessTick,
}

/// Tags a tenant's [`NetEvent`]s on their way into the global queue.
struct TenantSink<'a> {
    tenant: usize,
    sim: &'a mut Simulation<MtEvent>,
}

impl NetEventSink for TenantSink<'_> {
    fn schedule_net(&mut self, when: SimTime, event: NetEvent) {
        self.sim.schedule_at(
            when,
            MtEvent::Net {
                tenant: self.tenant,
                ev: event,
            },
        );
    }

    fn schedule_net_run(&mut self, when: SimTime, mut run: PacketRun) {
        // The run's seq lives on the *global* multi-tenant timeline.
        run.seq = self.sim.next_seq();
        self.sim.schedule_at(
            when,
            MtEvent::Net {
                tenant: self.tenant,
                ev: NetEvent::UplinkRun(run),
            },
        );
    }

    fn reschedule_net_run(&mut self, when: SimTime, run: PacketRun) {
        self.sim.schedule_at_with_seq(
            when,
            run.seq,
            MtEvent::Net {
                tenant: self.tenant,
                ev: NetEvent::UplinkRun(run),
            },
        );
    }
}

/// Per-tenant engine state: everything a [`crate::Conversation`] owns, minus the private
/// simulation (the timeline is global here).
struct TenantState {
    spec: TenantSpec,
    compute: NetCompute,
    gcc: GccController,
    transport: Transport,
    /// Turns whose window has opened (≥ turns reported; they differ while one is live).
    turns_begun: usize,
    /// The live (or most recent) turn's plan.
    plan: Option<TurnPlan>,
    /// `[first capture, last capture]` of the live turn — the span inside which a
    /// fairness window is *eligible* for starvation accounting (a tenant thinking or
    /// draining is silent by design, not starved).
    capture_span: Option<(SimTime, SimTime)>,
    reports: Vec<NetTurnReport>,
    estimate_at_turn_start_bps: Vec<f64>,
    carryover_queue_delay_ms: Vec<f64>,
    turn_target_swing_bps: Vec<f64>,
    frame_latencies: Vec<SimDuration>,
    starve_streak: u32,
    starvation_events: u64,
    /// `delivered_bytes` of this tenant's flow at the last fairness tick.
    window_bytes_snapshot: u64,
}

impl TenantState {
    fn finished(&self) -> bool {
        self.reports.len() >= self.spec.turns.len()
    }

    /// Mid-conversation: the first window has opened and the last turn has not reported.
    fn mid_conversation(&self) -> bool {
        self.turns_begun > 0 && !self.finished()
    }

    /// Assembles this tenant's [`ConversationReport`], mirroring
    /// [`crate::Conversation::report`].
    fn conversation_report(&self) -> ConversationReport {
        let mut latency = LatencyStats::new();
        for d in &self.frame_latencies {
            latency.record(*d);
        }
        let mean_goodput_bps = if self.reports.is_empty() {
            0.0
        } else {
            self.reports.iter().map(|t| t.goodput_bps).sum::<f64>() / self.reports.len() as f64
        };
        let mut resilience = FaultTelemetry::default();
        for t in &self.reports {
            resilience.absorb(&t.resilience);
        }
        ConversationReport {
            turns: self.reports.clone(),
            estimate_at_turn_start_bps: self.estimate_at_turn_start_bps.clone(),
            carryover_queue_delay_ms: self.carryover_queue_delay_ms.clone(),
            turn_target_swing_bps: self.turn_target_swing_bps.clone(),
            p50_frame_latency_ms: latency.percentile_ms(0.5),
            p95_frame_latency_ms: latency.p95_ms(),
            mean_goodput_bps,
            nacks_suppressed: self.transport.nacks_suppressed(),
            resilience,
        }
    }
}

struct CrossState {
    spec: CrossTrafficSpec,
    interval_us: u64,
    next_id: u64,
}

/// The multi-tenant actor over the global timeline.
struct ContentionMachine {
    tenants: Vec<TenantState>,
    cross: Vec<CrossState>,
    shared: SharedLink,
    starvation: StarvationConfig,
    admission: AdmissionConfig,
    nominal_bps: f64,
    fairness_window_us: u64,
    windows: Vec<FairnessWindow>,
    /// End of the last shared outage episode, if any — the post-recovery anchor.
    recovery_time: Option<SimTime>,
    /// Per-tenant `delivered_bytes` at the first tick past `recovery_time`.
    post_recovery_snapshot: Option<Vec<u64>>,
    global_end: SimTime,
}

impl Actor for ContentionMachine {
    type Event = MtEvent;

    fn on_event(&mut self, now: SimTime, event: MtEvent, sim: &mut Simulation<MtEvent>) {
        match event {
            MtEvent::TurnBegin { tenant } => self.on_turn_begin(tenant, now, sim),
            MtEvent::TurnEnd { tenant } => self.on_turn_end(tenant, sim),
            MtEvent::Net { tenant, ev } => self.on_net(tenant, now, ev, sim),
            MtEvent::Cross { source } => self.on_cross(source, now, sim),
            MtEvent::FairnessTick => self.on_fairness_tick(now, sim),
        }
    }
}

impl ContentionMachine {
    fn on_turn_begin(&mut self, tenant: usize, now: SimTime, sim: &mut Simulation<MtEvent>) {
        // Fair share is over tenants currently mid-conversation (incumbents), plus the
        // joiner itself opening its first window right now.
        let active = self
            .tenants
            .iter()
            .filter(|t| t.mid_conversation() || (t.spec.join_at <= now && !t.finished()))
            .count()
            .max(1);
        let t = &mut self.tenants[tenant];
        let idx = t.turns_begun;
        debug_assert!(idx < t.spec.turns.len(), "turn begin past the script");
        if idx == 0 && self.admission.enabled {
            t.gcc
                .clamp_estimate(self.nominal_bps * self.admission.fair_share_cap / active as f64);
        }
        t.estimate_at_turn_start_bps.push(t.gcc.estimate_bps());
        t.carryover_queue_delay_ms
            .push(self.shared.backlog(now).as_millis_f64());
        let frame_count = t.spec.turns[idx].frames.len();
        let plan = begin_turn_window(
            &mut t.compute,
            &mut t.transport,
            now,
            &mut TenantSink { tenant, sim },
            frame_count,
            &t.spec.turns[idx].question,
        );
        let interval_us = (1e6 / t.compute.options.capture_fps).round() as u64;
        let last_capture = SimTime::from_micros(now.as_micros() + (frame_count as u64 - 1) * interval_us);
        t.capture_span = Some((now, last_capture));
        t.plan = Some(plan);
        t.turns_begun += 1;
        // One microsecond past the deadline: every event at the deadline itself (which a
        // single-tenant `run_until(horizon)` drains inclusively) pops first, by time; the
        // integer-microsecond clock leaves nothing in between.
        sim.schedule_at(
            plan.horizon + SimDuration::from_micros(1),
            MtEvent::TurnEnd { tenant },
        );
    }

    fn on_turn_end(&mut self, tenant: usize, sim: &mut Simulation<MtEvent>) {
        let shared = &mut self.shared;
        let t = &mut self.tenants[tenant];
        let plan = t.plan.expect("turn end without a live turn");
        let idx = t.turns_begun - 1;
        let turn = &t.spec.turns[idx];
        let report = conclude_turn_window(
            &mut t.compute,
            &mut t.gcc,
            &mut t.transport,
            &UplinkPort::Shared {
                link: shared,
                flow: tenant,
            },
            &plan,
            turn.frames.len(),
            &turn.question,
        );
        t.turn_target_swing_bps.push(t.transport.turn_target_swing_bps());
        t.frame_latencies
            .extend_from_slice(&t.transport.turn_frame_latencies);
        finish_turn(&mut t.transport);
        t.reports.push(report);
        t.capture_span = None;
        if t.turns_begun < t.spec.turns.len() {
            sim.schedule_at(plan.horizon + t.spec.think, MtEvent::TurnBegin { tenant });
        }
    }

    fn on_net(&mut self, tenant: usize, now: SimTime, ev: NetEvent, sim: &mut Simulation<MtEvent>) {
        let shared = &mut self.shared;
        let t = &mut self.tenants[tenant];
        let Some(plan) = t.plan else {
            debug_assert!(false, "net event before the tenant's first turn");
            return;
        };
        // Between windows the frame slice is only nominally live: capture events exist
        // strictly inside a window, and nothing else reads frames.
        let idx = t.turns_begun.saturating_sub(1);
        let frames: &[Frame] = &t.spec.turns[idx].frames;
        let mut machine = TurnMachine {
            compute: &mut t.compute,
            gcc: &mut t.gcc,
            t: &mut t.transport,
            frames,
            window: plan.window,
            port: UplinkPort::Shared {
                link: shared,
                flow: tenant,
            },
        };
        machine.handle(now, ev, &mut TenantSink { tenant, sim });
    }

    fn on_cross(&mut self, source: usize, now: SimTime, sim: &mut Simulation<MtEvent>) {
        let flow = self.tenants.len() + source;
        let c = &mut self.cross[source];
        if now >= c.spec.stop {
            return;
        }
        let packet = Packet::new(c.next_id, c.spec.packet_bytes, now);
        c.next_id += 1;
        self.shared.send(flow, &packet, now);
        let next = now + SimDuration::from_micros(c.interval_us);
        if next < c.spec.stop {
            sim.schedule_at(next, MtEvent::Cross { source });
        }
    }

    fn on_fairness_tick(&mut self, now: SimTime, sim: &mut Simulation<MtEvent>) {
        let window_secs = self.fairness_window_us as f64 / 1e6;
        let k = self.tenants.len();
        let mut shares = Vec::with_capacity(k);
        for i in 0..k {
            let bytes = self.shared.flow_counters(i).delivered_bytes;
            let delta = bytes - self.tenants[i].window_bytes_snapshot;
            self.tenants[i].window_bytes_snapshot = bytes;
            shares.push(delta as f64 * 8.0 / window_secs);
        }
        let active: Vec<f64> = (0..k)
            .filter(|&i| self.tenants[i].mid_conversation())
            .map(|i| shares[i])
            .collect();
        self.windows.push(FairnessWindow {
            end_ms: now.as_micros() as f64 / 1e3,
            active_tenants: active.len() as u32,
            jain: jain_index(&active),
            shares_bps: shares.clone(),
        });

        if self.starvation.enabled {
            let window_start = SimTime::from_micros(now.as_micros().saturating_sub(self.fairness_window_us));
            let floor = self.starvation.floor_bps;
            let needed = self.starvation.consecutive_windows;
            for (i, t) in self.tenants.iter_mut().enumerate() {
                // Eligible only when the whole window sits inside the tenant's capture
                // phase: goodput during think time or the post-capture drain is low by
                // design, and flagging it would make the watchdog fire on every healthy
                // tenant. The streak is *held* (not reset) across ineligible windows —
                // "sustained while transmitting" semantics.
                let eligible = t.capture_span.is_some_and(|(s, e)| s <= window_start && now <= e);
                if !eligible {
                    continue;
                }
                if shares[i] < floor {
                    t.starve_streak += 1;
                } else {
                    t.starve_streak = 0;
                }
                if t.starve_streak >= needed {
                    t.starvation_events += 1;
                    t.starve_streak = 0;
                    // Escalate the tenant's own degradation ladder: force_fallback makes
                    // `in_fallback()` true, so its next capture rides the SoftFallback
                    // rung and its sending rate steps down toward survivability.
                    t.gcc.force_fallback();
                }
            }
        }

        if let Some(rt) = self.recovery_time {
            if now >= rt && self.post_recovery_snapshot.is_none() {
                self.post_recovery_snapshot = Some(
                    (0..k)
                        .map(|i| self.shared.flow_counters(i).delivered_bytes)
                        .collect(),
                );
            }
        }

        let next = now + SimDuration::from_micros(self.fairness_window_us);
        if next <= self.global_end {
            sim.schedule_at(next, MtEvent::FairnessTick);
        }
    }
}

/// Runs a full contention experiment: K tenant conversations plus cross-traffic on one
/// shared bottleneck, from time zero to the last tenant's final answer deadline.
pub fn run_contention(config: &ContentionConfig, tenants: Vec<TenantSpec>) -> ContentionReport {
    assert!(!tenants.is_empty(), "a contention run needs at least one tenant");
    for t in &tenants {
        assert!(
            t.turns.iter().all(|turn| !turn.frames.is_empty()),
            "every scripted turn needs at least one frame"
        );
    }
    let tenant_count = tenants.len();
    let flow_count = tenant_count + config.cross_traffic.len();
    let shared = SharedLink::new(config.shared_uplink.clone(), config.shared_seed, flow_count);
    let recovery_time = config
        .shared_uplink
        .faults
        .episodes()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::Outage))
        .map(|e| e.end())
        .max();

    let states: Vec<TenantState> = tenants
        .into_iter()
        .map(|spec| {
            let gcc = GccController::new(spec.options.gcc);
            let transport = Transport::new(&spec.options, gcc.estimate_bps());
            let compute = NetCompute::new(
                spec.options.clone(),
                StreamerConfig::default(),
                ClipModel::mobile_default(),
            );
            TenantState {
                spec,
                compute,
                gcc,
                transport,
                turns_begun: 0,
                plan: None,
                capture_span: None,
                reports: Vec::new(),
                estimate_at_turn_start_bps: Vec::new(),
                carryover_queue_delay_ms: Vec::new(),
                turn_target_swing_bps: Vec::new(),
                frame_latencies: Vec::new(),
                starve_streak: 0,
                starvation_events: 0,
                window_bytes_snapshot: 0,
            }
        })
        .collect();

    // The global horizon: every tenant's final answer deadline (replicating the window
    // arithmetic of `begin_turn_window` exactly), plus the 1 µs TurnEnd offset.
    let mut global_end = SimTime::ZERO;
    for t in &states {
        let o = &t.compute.options;
        let interval_us = (1e6 / o.capture_fps).round() as u64;
        let drain_us = (o.drain_secs.max(0.0) * 1e6).round() as u64;
        let mut begin = t.spec.join_at.as_micros();
        let mut horizon = begin;
        for turn in &t.spec.turns {
            let last_capture = begin + (turn.frames.len() as u64 - 1) * interval_us;
            horizon = last_capture + drain_us;
            begin = horizon + t.spec.think.as_micros();
        }
        global_end = global_end.max(SimTime::from_micros(horizon + 1));
    }

    let cross: Vec<CrossState> = config
        .cross_traffic
        .iter()
        .map(|spec| CrossState {
            spec: spec.clone(),
            interval_us: ((spec.packet_bytes as f64 * 8.0 / spec.rate_bps) * 1e6)
                .round()
                .max(1.0) as u64,
            next_id: 0,
        })
        .collect();

    let fairness_window_us = config.fairness_window.as_micros().max(1);
    let mut machine = ContentionMachine {
        tenants: states,
        cross,
        shared,
        starvation: config.starvation,
        admission: config.admission,
        nominal_bps: config.nominal_bps,
        fairness_window_us,
        windows: Vec::new(),
        recovery_time,
        post_recovery_snapshot: None,
        global_end,
    };

    let mut sim = Simulation::new();
    for (i, t) in machine.tenants.iter().enumerate() {
        if !t.spec.turns.is_empty() {
            sim.schedule_at(t.spec.join_at, MtEvent::TurnBegin { tenant: i });
        }
    }
    for (s, c) in machine.cross.iter().enumerate() {
        sim.schedule_at(c.spec.start, MtEvent::Cross { source: s });
    }
    sim.schedule_at(SimTime::from_micros(fairness_window_us), MtEvent::FairnessTick);
    sim.run_until(global_end, &mut machine);

    // --- Assemble the report.
    let tenant_bytes: Vec<u64> = (0..tenant_count)
        .map(|i| machine.shared.flow_counters(i).delivered_bytes)
        .collect();
    let total_tenant_bytes: u64 = tenant_bytes.iter().sum();
    let overall: Vec<f64> = tenant_bytes.iter().map(|&b| b as f64).collect();
    let jain_post_recovery = machine.post_recovery_snapshot.as_ref().map(|snap| {
        let deltas: Vec<f64> = (0..tenant_count)
            .map(|i| (tenant_bytes[i] - snap[i]) as f64)
            .collect();
        jain_index(&deltas)
    });
    let cross_traffic_delivered_bytes: u64 = (tenant_count..flow_count)
        .map(|f| machine.shared.flow_counters(f).delivered_bytes)
        .sum();
    let tenants: Vec<TenantReport> = machine
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantReport {
            label: t.spec.label.clone(),
            mode: t.spec.mode.clone(),
            join_ms: t.spec.join_at.as_micros() as f64 / 1e3,
            delivered_bytes: tenant_bytes[i],
            goodput_share: if total_tenant_bytes == 0 {
                0.0
            } else {
                tenant_bytes[i] as f64 / total_tenant_bytes as f64
            },
            starvation_events: t.starvation_events,
            conversation: t.conversation_report(),
        })
        .collect();
    ContentionReport {
        tenants,
        fairness: FairnessReport {
            window_ms: fairness_window_us as f64 / 1e3,
            jain_overall: jain_index(&overall),
            jain_post_recovery,
            windows: machine.windows,
        },
        shared_link: machine.shared.counters(),
        cross_traffic_delivered_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversation::Conversation;
    use aivc_mllm::QuestionFormat;
    use aivc_netsim::{LossModel, PathConfig};
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn clean_downlink() -> LinkConfig {
        LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None)
    }

    fn turn_script(tenant: usize, turns: usize, frames_per_turn: usize, fps: f64) -> Vec<TenantTurn> {
        let scene = basketball_game(1);
        let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
        (0..turns)
            .map(|turn| {
                let start = (turn * frames_per_turn + tenant * 3) % 150;
                TenantTurn {
                    frames: (0..frames_per_turn)
                        .map(|i| source.frame(((start + i) as f64 * 30.0 / fps) as u64 % 170))
                        .collect(),
                    question: Question::from_fact(
                        &scene.facts[(turn + tenant) % scene.facts.len()],
                        QuestionFormat::FreeResponse,
                    ),
                }
            })
            .collect()
    }

    fn tenant_options(seed: u64, uplink: &LinkConfig, fps: f64) -> NetSessionOptions {
        let mut o = NetSessionOptions::ai_oriented(
            seed,
            PathConfig {
                uplink: uplink.clone(),
                downlink: clean_downlink(),
            },
        );
        o.capture_fps = fps;
        o
    }

    fn base_config(uplink: LinkConfig, seed: u64, nominal_bps: f64) -> ContentionConfig {
        ContentionConfig {
            shared_uplink: uplink,
            shared_seed: seed,
            nominal_bps,
            fairness_window: SimDuration::from_millis(500),
            starvation: StarvationConfig::disabled(),
            admission: AdmissionConfig::disabled(),
            cross_traffic: Vec::new(),
        }
    }

    #[test]
    fn single_tenant_contention_matches_a_private_conversation_bit_for_bit() {
        // K = 1 with the shared link seeded exactly like the tenant's private uplink:
        // the engine must reproduce `Conversation` — same interleaving, same RNG draws,
        // same report — which pins that multi-tenancy changed nothing single-tenant.
        let uplink = LinkConfig::constant(
            4e6,
            SimDuration::from_millis(30),
            300,
            LossModel::Iid { rate: 0.01 },
        );
        let seed = 42;
        let fps = 8.0;
        let think = SimDuration::from_millis(400);
        let options = tenant_options(seed, &uplink, fps);
        let script = turn_script(0, 3, 4, fps);

        let mut conv = Conversation::with_defaults(options.clone(), think);
        for turn in &script {
            conv.run_turn(&turn.frames, &turn.question);
        }
        let expected = conv.report();

        let config = base_config(uplink, seed, 4e6);
        let report = run_contention(
            &config,
            vec![TenantSpec {
                label: "solo".into(),
                mode: "ai_oriented".into(),
                join_at: SimTime::ZERO,
                think,
                options,
                turns: script,
            }],
        );
        assert_eq!(report.tenants[0].conversation, expected);
    }

    #[test]
    fn contention_runs_are_deterministic() {
        let uplink = LinkConfig::constant(
            6e6,
            SimDuration::from_millis(30),
            300,
            LossModel::Iid { rate: 0.01 },
        );
        let run = || {
            let config = base_config(uplink.clone(), 7, 6e6);
            let tenants = (0..3)
                .map(|i| TenantSpec {
                    label: format!("tenant-{i}"),
                    mode: "ai_oriented".into(),
                    join_at: SimTime::from_millis(i as u64 * 100),
                    think: SimDuration::from_millis(300),
                    options: tenant_options(7 + i as u64, &uplink, 8.0),
                    turns: turn_script(i, 2, 4, 8.0),
                })
                .collect();
            run_contention(&config, tenants)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_tenant_flow_counters_reconcile_with_the_shared_link() {
        let uplink = LinkConfig::constant(5e6, SimDuration::from_millis(30), 300, LossModel::None);
        let config = base_config(uplink.clone(), 11, 5e6);
        let tenants = (0..2)
            .map(|i| TenantSpec {
                label: format!("tenant-{i}"),
                mode: "ai_oriented".into(),
                join_at: SimTime::ZERO,
                think: SimDuration::from_millis(200),
                options: tenant_options(20 + i as u64, &uplink, 8.0),
                turns: turn_script(i, 2, 4, 8.0),
            })
            .collect();
        let report = run_contention(&config, tenants);
        let tenant_bytes: u64 = report.tenants.iter().map(|t| t.delivered_bytes).sum();
        assert_eq!(
            tenant_bytes + report.cross_traffic_delivered_bytes,
            report.shared_link.delivered_bytes
        );
        assert!(report.tenants.iter().all(|t| t.delivered_bytes > 0));
        let share_sum: f64 = report.tenants.iter().map(|t| t.goodput_share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn starvation_watchdog_stays_quiet_on_an_evenly_shared_clean_link() {
        // Ample fault-free bandwidth, identical tenants: nobody's windowed goodput dips
        // below a conservative floor, so the watchdog must never escalate.
        let uplink = LinkConfig::constant(16e6, SimDuration::from_millis(30), 300, LossModel::None);
        let mut config = base_config(uplink.clone(), 13, 16e6);
        config.starvation = StarvationConfig {
            enabled: true,
            floor_bps: 100_000.0,
            consecutive_windows: 2,
        };
        let tenants = (0..3)
            .map(|i| TenantSpec {
                label: format!("tenant-{i}"),
                mode: "ai_oriented".into(),
                join_at: SimTime::ZERO,
                think: SimDuration::from_millis(300),
                options: tenant_options(30 + i as u64, &uplink, 12.0),
                turns: turn_script(i, 3, 12, 12.0),
            })
            .collect();
        let report = run_contention(&config, tenants);
        assert_eq!(report.starvation_events_total(), 0);
        assert!(
            report.fairness.jain_overall > 0.9,
            "even tenants should share evenly"
        );
    }

    #[test]
    fn admission_clamps_a_late_joiner_to_its_fair_share() {
        let uplink = LinkConfig::constant(6e6, SimDuration::from_millis(30), 300, LossModel::None);
        let mut config = base_config(uplink.clone(), 17, 6e6);
        config.admission = AdmissionConfig {
            enabled: true,
            fair_share_cap: 1.0,
        };
        let mut joiner_options = tenant_options(50, &uplink, 8.0);
        joiner_options.gcc.initial_estimate_bps = 20e6; // wildly optimistic
        let tenants = vec![
            TenantSpec {
                label: "incumbent".into(),
                mode: "ai_oriented".into(),
                join_at: SimTime::ZERO,
                think: SimDuration::from_millis(300),
                options: tenant_options(51, &uplink, 8.0),
                turns: turn_script(0, 3, 6, 8.0),
            },
            TenantSpec {
                label: "joiner".into(),
                mode: "ai_oriented".into(),
                join_at: SimTime::from_millis(700),
                think: SimDuration::from_millis(300),
                options: joiner_options,
                turns: turn_script(1, 2, 6, 8.0),
            },
        ];
        let report = run_contention(&config, tenants);
        // Two active tenants at join time: the joiner starts from ≤ nominal/2, not 20 Mbps.
        let joiner = &report.tenants[1].conversation;
        assert!(
            joiner.estimate_at_turn_start_bps[0] <= 3e6 + 1.0,
            "admission must clamp the joiner's initial estimate, got {}",
            joiner.estimate_at_turn_start_bps[0]
        );
        // And the incumbent still completed all turns.
        assert_eq!(report.tenants[0].conversation.turns.len(), 3);
        assert_eq!(joiner.turns.len(), 2);
    }
}
