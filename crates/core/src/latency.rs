//! The end-to-end response-latency budget (§1).
//!
//! The paper's bound: a fluent conversation needs the response within ~300 ms, MLLM
//! inference alone costs ≥232 ms, so everything else — capture, client-side CLIP, encoding,
//! transmission, decoding — must fit in the remaining ≤68 ms. [`LatencyBudget`] itemizes a
//! chat turn so experiments can report exactly where the time went and whether the turn
//! would feel "like a real person".

use serde::{Deserialize, Serialize};

/// The conversational response-latency target in milliseconds (§1, citing [18]).
pub const RESPONSE_LATENCY_TARGET_MS: f64 = 300.0;

/// Millisecond breakdown of one AI Video Chat turn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBudget {
    /// Camera capture / sensor latency.
    pub capture_ms: f64,
    /// Client-side context-awareness compute (Mobile-CLIP pass); zero for the baseline.
    pub context_compute_ms: f64,
    /// Video encoding latency.
    pub encode_ms: f64,
    /// Network transmission latency (send start → frame completely received).
    pub transmission_ms: f64,
    /// Jitter-buffer residency (zero in AI mode, §2.1).
    pub jitter_buffer_ms: f64,
    /// Video decoding latency at the receiver.
    pub decode_ms: f64,
    /// MLLM inference latency up to the first response token.
    pub inference_ms: f64,
}

impl LatencyBudget {
    /// Total response latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.capture_ms
            + self.context_compute_ms
            + self.encode_ms
            + self.transmission_ms
            + self.jitter_buffer_ms
            + self.decode_ms
            + self.inference_ms
    }

    /// Whether the turn meets the 300 ms conversational bound.
    pub fn meets_target(&self) -> bool {
        self.total_ms() <= RESPONSE_LATENCY_TARGET_MS
    }

    /// The share of the total spent outside the MLLM (the part RTC research can optimize).
    pub fn network_side_ms(&self) -> f64 {
        self.total_ms() - self.inference_ms
    }

    /// The time left for everything except inference if the total must meet the target
    /// (the paper's "at most 68 ms" computation).
    pub fn transport_budget_ms(&self) -> f64 {
        (RESPONSE_LATENCY_TARGET_MS - self.inference_ms).max(0.0)
    }

    /// Renders a one-line breakdown, used by the examples and the experiment harness.
    pub fn to_line(&self) -> String {
        format!(
            "capture {:.1} + clip {:.1} + encode {:.1} + net {:.1} + jitter {:.1} + decode {:.1} + mllm {:.1} = {:.1} ms ({})",
            self.capture_ms,
            self.context_compute_ms,
            self.encode_ms,
            self.transmission_ms,
            self.jitter_buffer_ms,
            self.decode_ms,
            self.inference_ms,
            self.total_ms(),
            if self.meets_target() { "meets 300 ms" } else { "misses 300 ms" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> LatencyBudget {
        LatencyBudget {
            capture_ms: 8.0,
            context_compute_ms: 9.0,
            encode_ms: 4.0,
            transmission_ms: 35.0,
            jitter_buffer_ms: 0.0,
            decode_ms: 2.0,
            inference_ms: 238.0,
        }
    }

    #[test]
    fn totals_and_target() {
        let b = budget();
        assert!((b.total_ms() - 296.0).abs() < 1e-9);
        assert!(b.meets_target());
        assert!((b.network_side_ms() - 58.0).abs() < 1e-9);
    }

    #[test]
    fn paper_68ms_computation() {
        // §1: inference 232 ms inside a 300 ms budget leaves at most 68 ms for transport.
        let b = LatencyBudget {
            inference_ms: 232.0,
            ..LatencyBudget::default()
        };
        assert!((b.transport_budget_ms() - 68.0).abs() < 1e-9);
    }

    #[test]
    fn exceeding_target_detected() {
        let mut b = budget();
        b.transmission_ms = 120.0;
        assert!(!b.meets_target());
    }

    #[test]
    fn line_rendering_mentions_target() {
        assert!(budget().to_line().contains("meets 300 ms"));
    }
}
