//! The Figure 9 experiment: MLLM accuracy vs bitrate, context-aware streaming vs the
//! uniform-QP baseline, at matched actual bitrates.
//!
//! The paper reports (on an early, free-response DeViBench snapshot): the baseline drops
//! from 0.73 accuracy at 827.9 Kbps to 0.33 at 426.4 Kbps, while context-aware streaming
//! only drops from 0.93 at 850.1 Kbps to 0.87 at 432.7 Kbps. The reproduction evaluates
//! both methods on the corpus's quality-sensitive questions across a bitrate sweep and
//! reports the same curve; the *shape* (ours stays flat and high, the baseline collapses)
//! is the claim under test.

use crate::baseline::ContextAgnosticBaseline;
use crate::context_aware::ContextAwareStreamer;
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_scene::Corpus;
use serde::{Deserialize, Serialize};

/// Which method a point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// Uniform-QP baseline.
    Baseline,
    /// Context-aware streaming (ours).
    ContextAware,
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodKind::Baseline => f.write_str("baseline"),
            MethodKind::ContextAware => f.write_str("context-aware"),
        }
    }
}

/// One point of the Figure 9 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Method.
    pub method: MethodKind,
    /// Requested target bitrate in bits per second.
    pub target_bitrate_bps: f64,
    /// Mean achieved bitrate across clips in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Fraction of questions answered correctly.
    pub accuracy: f64,
    /// Mean model probability of a correct answer (smoother than sampled accuracy).
    pub mean_probability: f64,
    /// Number of questions evaluated.
    pub questions: usize,
}

/// Runs the accuracy-vs-bitrate experiment over a corpus.
///
/// For every quality-sensitive ground-truth fact (required detail ≥ `min_detail`), both
/// methods encode the clip's question window at each target bitrate (matched by trial and
/// error), the responder MLLM answers, and per-method/per-bitrate accuracy is aggregated.
/// Questions are posed free-response, matching the DeViBench snapshot used for the paper's
/// Figure 9.
pub fn run_accuracy_vs_bitrate(
    corpus: &Corpus,
    bitrates_bps: &[f64],
    min_detail: f64,
    frames_per_clip: usize,
    seed: u64,
) -> Vec<AccuracyPoint> {
    let streamer = ContextAwareStreamer::default();
    let baseline = ContextAgnosticBaseline::default();
    let responder = MllmChat::responder(seed);
    let mut points = Vec::new();

    for (b_idx, &bitrate) in bitrates_bps.iter().enumerate() {
        for method in [MethodKind::Baseline, MethodKind::ContextAware] {
            let mut correct = 0usize;
            let mut questions = 0usize;
            let mut prob_sum = 0.0;
            let mut achieved_sum = 0.0;
            let mut achieved_count = 0usize;

            for clip in corpus.clips() {
                let source = clip.source();
                let sensitive: Vec<Question> = clip
                    .scene
                    .facts
                    .iter()
                    .filter(|f| f.required_detail >= min_detail)
                    .map(|f| Question::from_fact(f, QuestionFormat::FreeResponse))
                    .collect();
                if sensitive.is_empty() {
                    continue;
                }
                // The baseline's encode does not depend on the question, so do it once per clip.
                let baseline_decode = if method == MethodKind::Baseline {
                    Some(baseline.offline_decode(&source, bitrate, frames_per_clip))
                } else {
                    None
                };
                for (q_idx, question) in sensitive.iter().enumerate() {
                    let (frames, achieved) = match method {
                        MethodKind::Baseline => {
                            let (frames, enc) = baseline_decode.as_ref().unwrap();
                            (frames.clone(), enc.achieved_bitrate_bps)
                        }
                        MethodKind::ContextAware => {
                            let (frames, enc) =
                                streamer.offline_decode(&source, question, bitrate, frames_per_clip);
                            (frames, enc.achieved_bitrate_bps)
                        }
                    };
                    achieved_sum += achieved;
                    achieved_count += 1;
                    let tag = (b_idx as u64) << 40
                        | (clip.id) << 20
                        | (q_idx as u64) << 4
                        | match method {
                            MethodKind::Baseline => 0,
                            MethodKind::ContextAware => 1,
                        };
                    let answer = responder.respond(question, &frames, tag);
                    questions += 1;
                    prob_sum += answer.probability_correct;
                    if answer.correct {
                        correct += 1;
                    }
                }
            }
            points.push(AccuracyPoint {
                method,
                target_bitrate_bps: bitrate,
                achieved_bitrate_bps: if achieved_count == 0 {
                    0.0
                } else {
                    achieved_sum / achieved_count as f64
                },
                accuracy: if questions == 0 {
                    0.0
                } else {
                    correct as f64 / questions as f64
                },
                mean_probability: if questions == 0 {
                    0.0
                } else {
                    prob_sum / questions as f64
                },
                questions,
            });
        }
    }
    points
}

/// Renders the points as a markdown table, paper values alongside (used by the Figure 9
/// harness and EXPERIMENTS.md).
pub fn accuracy_table(points: &[AccuracyPoint]) -> String {
    let mut out = String::from(
        "| method | target kbps | achieved kbps | accuracy | mean P(correct) | questions |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        out.push_str(&format!(
            "| {} | {:.0} | {:.1} | {:.2} | {:.2} | {} |\n",
            p.method,
            p.target_bitrate_bps / 1_000.0,
            p.achieved_bitrate_bps / 1_000.0,
            p.accuracy,
            p.mean_probability,
            p.questions
        ));
    }
    out.push_str(
        "\nPaper (Figure 9): baseline 0.73 @ 827.9 kbps -> 0.33 @ 426.4 kbps; ours 0.93 @ 850.1 kbps -> 0.87 @ 432.7 kbps\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        // Hold the capture rate at 30 FPS so the bitrate sweep is the only variable, as in
        // the paper's Figure 9 setup.
        let mut c = Corpus::streamingbench_like(31, 5, 10.0, 15.0);
        c.set_uniform_fps(30.0);
        c
    }

    #[test]
    fn figure9_shape_ours_stays_high_while_baseline_collapses() {
        let points = run_accuracy_vs_bitrate(&corpus(), &[850_000.0, 430_000.0], 0.55, 4, 77);
        let find = |method, bitrate: f64| {
            points
                .iter()
                .find(|p| p.method == method && (p.target_bitrate_bps - bitrate).abs() < 1.0)
                .copied()
                .unwrap()
        };
        let base_high = find(MethodKind::Baseline, 850_000.0);
        let base_low = find(MethodKind::Baseline, 430_000.0);
        let ours_high = find(MethodKind::ContextAware, 850_000.0);
        let ours_low = find(MethodKind::ContextAware, 430_000.0);

        // Baseline collapses when the bitrate is halved.
        assert!(
            base_low.mean_probability < base_high.mean_probability - 0.15,
            "baseline did not collapse: {} -> {}",
            base_high.mean_probability,
            base_low.mean_probability
        );
        // Ours degrades far more gracefully than the baseline (the paper's content keeps the
        // chat-relevant regions small, where ours is nearly flat; our corpus includes
        // whole-frame-evidence scenes such as lecture slides, so some drop remains).
        let ours_drop = ours_high.mean_probability - ours_low.mean_probability;
        let base_drop = base_high.mean_probability - base_low.mean_probability;
        assert!(
            ours_drop < base_drop,
            "ours dropped {ours_drop} vs baseline {base_drop}"
        );
        assert!(ours_drop < 0.35, "ours dropped too much: {ours_drop}");
        assert!(
            ours_low.mean_probability > base_low.mean_probability + 0.25,
            "ours {} should clearly beat baseline {} at ~430 kbps",
            ours_low.mean_probability,
            base_low.mean_probability
        );
        // Ours at ~430 kbps should be at least on par with the baseline at ~850 kbps — the
        // "half the bitrate, same accuracy" headline of §3.2.
        assert!(
            ours_low.mean_probability >= base_high.mean_probability - 0.05,
            "ours@430 {} vs baseline@850 {}",
            ours_low.mean_probability,
            base_high.mean_probability
        );
        // Bitrates are actually matched between the two methods.
        let ratio = ours_low.achieved_bitrate_bps / base_low.achieved_bitrate_bps;
        assert!(ratio > 0.6 && ratio < 1.6, "achieved bitrate ratio {ratio}");
    }

    #[test]
    fn table_rendering_includes_both_methods() {
        let points = run_accuracy_vs_bitrate(&corpus(), &[600_000.0], 0.55, 3, 5);
        let table = accuracy_table(&points);
        assert!(table.contains("baseline"));
        assert!(table.contains("context-aware"));
        assert!(table.contains("Paper (Figure 9)"));
    }
}
