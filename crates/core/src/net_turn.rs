//! The shared network-turn engine: one [`Actor`] state machine over the `aivc-sim`
//! kernel, driven by both [`crate::NetworkedChatSession`] (fresh transport every turn —
//! the pre-kernel semantics, byte-for-byte) and [`crate::Conversation`] (one persistent
//! transport timeline across every turn of a conversation).
//!
//! The split is deliberate:
//!
//! * [`NetCompute`] owns everything the *chat pipeline* needs — CLIP model and scratch,
//!   Eq. 2 allocator, encoder/decoder and their per-slot scratches, the MLLM responder —
//!   exactly the scratch-reuse structure of [`crate::ChatSession`];
//! * [`Transport`] owns everything the *network* needs — the emulated path, packetizer,
//!   pacer, RTX store, FEC encode/recovery, reassembly, NACK generation, and the pending
//!   congestion feedback — plus the per-turn counters the report reads;
//! * [`TurnMachine`] borrows both for the duration of a drain and implements
//!   [`Actor::on_event`]: the capture → encode → packetize → protect → pace → send →
//!   arrive → recover loop of §2.2.
//!
//! The engine never owns the [`Simulation`]: the caller does, which is what decides the
//! semantics. A fresh simulation per turn restarts the clock at zero and discards
//! in-flight events at the deadline (the single-turn contract the golden fixtures pin);
//! a persistent simulation keeps the clock, the queue backlog, the trace cursor and every
//! in-flight packet across turn boundaries (the conversation contract).

use crate::allocator::QpAllocator;
use crate::context_aware::StreamerConfig;
use crate::net_session::{FaultTelemetry, NetSessionOptions, NetTurnReport};
use crate::session::StreamingMode;
use aivc_metrics::SessionCounters;
use aivc_mllm::{MllmChat, MllmScratch, Question};
use aivc_netsim::emulator::Direction;
use aivc_netsim::link::LinkCounters;
use aivc_netsim::{DeliveryOutcome, LatencyStats, NetworkEmulator, Packet, SharedLink};
use aivc_rtc::cc::{FeedbackFold, GccController, PacketFeedback};
use aivc_rtc::fec::{group_of_index, FecEncoder, FecRecovery};
use aivc_rtc::nack::{NackGenerator, RtxQueue};
use aivc_rtc::pacer::{Pacer, PacerConfig};
use aivc_rtc::packetizer::{FrameAssembler, OutgoingFrame, Packetizer};
use aivc_rtc::rtp::{PayloadKind, RtpPacket};
use aivc_rtc::seq_ring::SeqRing;
use aivc_scene::Frame;
use aivc_semantics::{ClipModel, ClipScratch, TextQuery};
use aivc_sim::{Actor, SimDuration, SimTime, Simulation};
use aivc_videocodec::{
    DecodeScratch, DecodedFrame, Decoder, EncodeScratch, EncodedFrame, Encoder, Qp, QpMap, RatePlan,
};
use std::sync::Arc;

/// Events of the networked turn's discrete-event loop. Frame indices are *global* across
/// the owning timeline (a conversation numbers its frames continuously; a single-turn
/// session always starts at zero).
#[derive(Debug)]
pub(crate) enum NetEvent {
    /// Frame `i` is captured: drain mature feedback into GCC, pick the ABR target, encode
    /// at that target, packetize + protect + pace onto the uplink.
    Capture(usize),
    /// A packet leaves the pacer and enters the uplink.
    SendUplink(RtpPacket),
    /// A packet arrives at the receiver.
    UplinkArrival(RtpPacket),
    /// The receiver checks for due NACKs.
    ReceiverPoll,
    /// A feedback packet (NACKed sequences) arrives back at the sender.
    FeedbackArrival(Vec<u64>),
    /// A coalesced run of pacer departures: **one** timeline event standing in for the
    /// back-to-back [`NetEvent::SendUplink`]s of a capture (or retransmission batch). The
    /// event fires at each distinct departure time, delivers every packet due, then
    /// re-arms itself at the next departure *under its original insertion sequence* — see
    /// [`NetEventSink::reschedule_net_run`] for why that preserves exact event ordering.
    UplinkRun(PacketRun),
}

/// A contiguous batch of pacer departures travelling as one timeline event. The pacer is
/// globally FIFO-monotone — [`Pacer::schedule_send`] returns nondecreasing times across
/// *all* calls — so the departures of one scheduling burst (a capture's media + parity,
/// or one feedback event's retransmissions) are contiguous in `(time, seq)` order and can
/// ride a single slab slot instead of one per packet.
#[derive(Debug)]
pub(crate) struct PacketRun {
    /// The run event's insertion sequence on its timeline. Assigned by
    /// [`NetEventSink::schedule_net_run`]; re-arms reuse it so the run keeps its
    /// tie-break position among same-time events across every firing.
    pub(crate) seq: u64,
    /// Index of the first not-yet-delivered departure in `items`.
    pub(crate) cursor: usize,
    /// `(departure time µs, packet)` in pacer order (departure times nondecreasing).
    /// The buffer is pooled in [`Transport::run_pool`] once the run completes.
    pub(crate) items: Vec<(u64, RtpPacket)>,
}

/// Where a [`TurnMachine`] schedules its follow-on events. A single-tenant timeline is a
/// plain [`Simulation<NetEvent>`]; a multi-tenant engine wraps each tenant's events into
/// its own composite event type and implements this to tag them on the way in.
pub(crate) trait NetEventSink {
    /// Schedules `event` at `when` on the owning timeline.
    fn schedule_net(&mut self, when: SimTime, event: NetEvent);

    /// Schedules a fresh packet run at `when` (its first departure). Implementations must
    /// record the event's insertion sequence in `run.seq` before scheduling — the seq a
    /// plain schedule call would assign, i.e. the timeline's `next_seq()`.
    fn schedule_net_run(&mut self, when: SimTime, run: PacketRun);

    /// Re-arms a partially delivered run at `when` (its next departure) **under its
    /// original insertion sequence** (`run.seq`, via the kernel's `schedule_at_with_seq`).
    ///
    /// Keeping the seq is what makes coalescing invisible to event ordering: in
    /// per-packet mode every departure of the burst carries a seq from the burst's
    /// scheduling instant, so at a shared firing time the whole burst sorts before any
    /// later-scheduled event (arrivals, polls) and after any earlier-scheduled one. A
    /// re-armed run with its original seq sorts exactly the same way; a fresh seq would
    /// instead sort the tail of the run *after* events scheduled since, reordering
    /// same-instant deliveries. Safe because the run's previous firing has already
    /// popped — no two live events ever share the seq.
    fn reschedule_net_run(&mut self, when: SimTime, run: PacketRun);
}

impl NetEventSink for Simulation<NetEvent> {
    fn schedule_net(&mut self, when: SimTime, event: NetEvent) {
        self.schedule_at(when, event);
    }

    fn schedule_net_run(&mut self, when: SimTime, mut run: PacketRun) {
        run.seq = self.next_seq();
        self.schedule_at(when, NetEvent::UplinkRun(run));
    }

    fn reschedule_net_run(&mut self, when: SimTime, run: PacketRun) {
        self.schedule_at_with_seq(when, run.seq, NetEvent::UplinkRun(run));
    }
}

/// Which uplink a turn's packets ride. `Private` is the classic single-tenant path — the
/// transport's own emulated uplink, byte-for-byte the pre-contention behaviour. `Shared`
/// redirects every uplink operation to one flow of a [`SharedLink`] contended by other
/// tenants; the private uplink then sits idle (its RNG streams are never drawn from).
/// The downlink (feedback path) always stays private: the shared bottleneck models the
/// congested uplink/cell, not the return path.
pub(crate) enum UplinkPort<'a> {
    /// Use the transport's own emulator uplink.
    Private,
    /// Contend for a shared bottleneck as the given flow.
    Shared {
        /// The shared bottleneck link.
        link: &'a mut SharedLink,
        /// This tenant's flow index on it.
        flow: usize,
    },
}

impl UplinkPort<'_> {
    fn send(&mut self, emulator: &mut NetworkEmulator, packet: &Packet, now: SimTime) -> DeliveryOutcome {
        match self {
            UplinkPort::Private => emulator.send(Direction::Uplink, packet, now),
            UplinkPort::Shared { link, flow } => link.send(*flow, packet, now),
        }
    }

    fn take_duplicate(&mut self, emulator: &mut NetworkEmulator) -> Option<SimTime> {
        match self {
            UplinkPort::Private => emulator.take_uplink_duplicate(),
            UplinkPort::Shared { link, .. } => link.take_duplicate(),
        }
    }

    fn backlog_ms(&self, emulator: &NetworkEmulator, now: SimTime) -> f64 {
        match self {
            UplinkPort::Private => emulator.uplink().backlog(now).as_millis_f64(),
            UplinkPort::Shared { link, .. } => link.backlog(now).as_millis_f64(),
        }
    }

    fn counters(&self, emulator: &NetworkEmulator) -> LinkCounters {
        match self {
            UplinkPort::Private => emulator.uplink().counters(),
            UplinkPort::Shared { link, flow } => link.flow_counters(*flow),
        }
    }
}

/// Per-frame transport bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NetFrameProgress {
    pub(crate) send_start: Option<SimTime>,
    pub(crate) fec_recovered: bool,
}

/// The graceful-degradation ladder's current rung. The ladder only moves when
/// [`crate::net_session::DegradationConfig::enabled`] — otherwise the transport stays
/// pinned at [`DegradationLevel::Normal`] and behaves exactly as before the ladder
/// existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum DegradationLevel {
    /// Full operation: every capture is encoded and sent.
    #[default]
    Normal,
    /// Stressed: recovering from a fallback, or the send backlog is deep — late frames
    /// are shed whole before their parity is built.
    SoftFallback,
    /// The watchdog declared the feedback channel dead: captures are suppressed and tiny
    /// probes go out instead, so the first post-outage feedback can find its way back.
    OutageSuppress,
}

/// The compute half of a networked session: the chat pipeline and every reusable scratch.
#[derive(Debug, Clone)]
pub(crate) struct NetCompute {
    pub(crate) options: NetSessionOptions,
    clip_model: ClipModel,
    allocator: QpAllocator,
    encoder: Encoder,
    decoder: Decoder,
    responder: MllmChat,
    clip: ClipScratch,
    qp_map: QpMap,
    /// Scratch map the rate-control search refills for the one real encode.
    probe_map: QpMap,
    /// Per-frame probe coefficients (grid raster + QP-independent rate terms), prepared
    /// once per capture so the binary search's probes never re-rasterize the frame.
    rate_plan: RatePlan,
    encode_scratches: Vec<EncodeScratch>,
    /// The committed encode of each turn slot (needed again at decode time). Slots are
    /// turn-local: a conversation reuses them every turn.
    encoded_slots: Vec<EncodedFrame>,
    decode_scratch: DecodeScratch,
    decoded: Vec<DecodedFrame>,
    mllm: MllmScratch,
    cached_question: Option<Question>,
    query: TextQuery,
}

impl NetCompute {
    pub(crate) fn new(options: NetSessionOptions, config: StreamerConfig, clip_model: ClipModel) -> Self {
        Self {
            allocator: QpAllocator::new(config.allocator),
            encoder: Encoder::new(config.encoder),
            decoder: Decoder::new(),
            responder: MllmChat::responder(options.seed ^ 0x5EED),
            clip_model,
            options,
            clip: ClipScratch::new(),
            qp_map: QpMap::empty(),
            probe_map: QpMap::empty(),
            rate_plan: RatePlan::new(),
            encode_scratches: Vec::new(),
            encoded_slots: Vec::new(),
            decode_scratch: DecodeScratch::new(),
            decoded: Vec::new(),
            mllm: MllmScratch::new(),
            cached_question: None,
            query: TextQuery::from_concepts("", std::iter::empty::<String>()),
        }
    }

    /// Re-derives the text query only when the question changes (same memoization as
    /// [`crate::ChatSession`]).
    fn refresh_query(&mut self, question: &Question) {
        if self.cached_question.as_ref() != Some(question) {
            self.query = TextQuery::from_words_and_concepts(
                &question.text,
                self.clip_model.ontology(),
                question.query_concepts.iter().cloned(),
            );
            self.cached_question = Some(question.clone());
        }
    }

    /// Encodes `frame` into turn slot `slot` at the closest achievable size to
    /// `budget_bits`.
    ///
    /// Context-aware mode binary-searches a uniform QP offset on top of the frame's Eq. 2
    /// map (coded bits are monotone decreasing in the offset — the same §3.2
    /// bitrate-matching procedure `ContextAwareStreamer::encode_at_bitrate` uses, but per
    /// frame and per target); baseline mode binary-searches the single uniform QP a
    /// traditional WebRTC encoder's rate control would pick.
    fn encode_slot_to_budget(&mut self, slot: usize, frame: &Frame, budget_bits: f64) {
        if self.encode_scratches.len() <= slot {
            self.encode_scratches.resize_with(slot + 1, EncodeScratch::new);
        }
        if self.encoded_slots.len() <= slot {
            self.encoded_slots
                .resize_with(slot + 1, EncodedFrame::placeholder);
        }
        let grid = self.encoder.grid_for(frame);
        let (mut lo, mut hi) = match self.options.mode {
            StreamingMode::ContextAware => {
                let importance = self
                    .clip_model
                    .correlation_map_coherent(frame, &self.query, &mut self.clip);
                self.allocator.allocate_into(importance, grid, &mut self.qp_map);
                (-51i32, 51i32)
            }
            StreamingMode::Baseline => (0i32, 51i32),
        };
        // One rate plan per capture: the grid raster and every QP-independent rate term
        // are folded into per-block coefficients once, so each probe below is a tight
        // table-lookup pass instead of a full re-rasterization (this was ~90 % of a warm
        // turn before; see DESIGN.md §"Where the warm turn's microsecond goes").
        match self.options.mode {
            StreamingMode::ContextAware => {
                self.encoder
                    .prepare_rate_plan(frame, Some(&self.qp_map), &mut self.rate_plan)
            }
            StreamingMode::Baseline => self.encoder.prepare_rate_plan(frame, None, &mut self.rate_plan),
        }
        let mut best_level = lo;
        let mut best_err = f64::INFINITY;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            // Plan probes predict the coded size without materializing blocks — byte-exact
            // with `predict_map_size` and therefore with a real encode (test-asserted), so
            // the search trajectory and the `err < best_err` tie-breaking are identical to
            // probing with full encodes.
            let size = match self.options.mode {
                StreamingMode::ContextAware => self.encoder.predict_plan_offset_size(&self.rate_plan, mid),
                StreamingMode::Baseline => {
                    self.encoder.predict_plan_uniform_size(&self.rate_plan, Qp::new(mid))
                }
            };
            let bits = (size * 8) as f64;
            let err = (bits - budget_bits).abs();
            if err < best_err {
                best_err = err;
                best_level = mid;
            }
            if bits > budget_bits {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        // One real encode, at the level the search settled on.
        let mut probe_map = std::mem::replace(&mut self.probe_map, QpMap::empty());
        match self.options.mode {
            StreamingMode::ContextAware => self.qp_map.offset_all_into(best_level, &mut probe_map),
            StreamingMode::Baseline => probe_map.fill_uniform(grid, Qp::new(best_level)),
        }
        // `encode_into_planned` reuses the raster the plan just filled for this frame —
        // bit-identical to `encode_into`, one rasterization cheaper.
        self.encoder.encode_into_planned(
            frame,
            &probe_map,
            &self.rate_plan,
            &mut self.encode_scratches[slot],
            &mut self.encoded_slots[slot],
        );
        self.probe_map = probe_map;
    }
}

/// The transport half: the emulated path and every sender/receiver machine, with frame
/// bookkeeping indexed by *global* frame id and per-turn counters the report reads.
#[derive(Debug, Clone)]
pub(crate) struct Transport {
    emulator: NetworkEmulator,
    packetizer: Packetizer,
    pacer: Pacer,
    rtx: RtxQueue,
    fec_encoder: FecEncoder,
    fec_recovery: FecRecovery,
    assembler: FrameAssembler,
    pub(crate) nack_gen: NackGenerator,
    /// Feedback the receiver has produced but the sender has not yet seen:
    /// (time the sender learns the packet's fate, the per-packet feedback).
    cc_pending: Vec<(u64, PacketFeedback)>,
    /// Reusable per-drain feedback fold: matured entries stream into this while
    /// `cc_pending` compacts in place, then the fold goes to GCC whole — no
    /// intermediate report vector.
    cc_fold: FeedbackFold,
    /// Free list of completed NACK-sequence buffers (the payload of
    /// [`NetEvent::FeedbackArrival`]), recycled like `run_pool`.
    nack_pool: Vec<Vec<u64>>,
    /// Reusable packetization buffer.
    media: Vec<RtpPacket>,
    /// Reusable FEC parity buffer.
    parity: Vec<RtpPacket>,
    /// Free list of completed [`PacketRun`] buffers. Bounded by the peak number of
    /// simultaneously in-flight runs (a buffer only enters the pool when its run
    /// completes, and every new run drains the pool first), so warm turns schedule
    /// coalesced departures without touching the allocator.
    run_pool: Vec<Vec<(u64, RtpPacket)>>,
    poll_outstanding: bool,
    next_net_packet_id: u64,
    up_prop_us: u64,
    down_prop_us: u64,
    max_payload: u64,
    // --- global frame bookkeeping (indexed by frame id) ---
    outgoing: Vec<OutgoingFrame>,
    media_first_seq: Vec<u64>,
    /// Parity group size each live frame was protected with — arrival-side FEC lookups
    /// must use the size *the frame was encoded under*, not the encoder's current size
    /// (adaptive FEC re-sizes between frames).
    media_group_size: Vec<u32>,
    /// Sequence → (frame index, media packet index) for FEC-group reconstruction.
    seq_to_media: SeqRing<(usize, usize)>,
    progress: Vec<NetFrameProgress>,
    /// Frames below this id are retired: their turn has been reported, so arrivals for
    /// them only feed sequence-continuity bookkeeping.
    retired_below: usize,
    // --- per-turn counters, reset by `begin_turn` ---
    turn_packets_lost: u64,
    turn_retransmissions_sent: u64,
    turn_target_sum: f64,
    turn_target_min: f64,
    turn_target_max: f64,
    /// Frame transmission latencies recorded at the current turn's deadline.
    pub(crate) turn_frame_latencies: Vec<SimDuration>,
    /// Reusable percentile scratch for the turn report (cleared each turn).
    latency_scratch: LatencyStats,
    // --- resilience bookkeeping ---
    /// Current degradation-ladder rung (always `Normal` when the ladder is disabled).
    degradation_level: DegradationLevel,
    /// Time of the most recent outage-dropped uplink send, awaiting the first frame
    /// completion after it (the `time_to_recover_ms` anchor). Survives turn boundaries:
    /// an outage at a turn's tail is recovered from — and measured — in the next turn.
    pending_outage_recovery: Option<SimTime>,
    /// Uplink link-counter snapshot at the last report, for per-turn deltas.
    counters_reported: LinkCounters,
    /// GCC watchdog-fallback count at the last report, for per-turn deltas.
    watchdog_fallbacks_reported: u64,
    turn_degradation_events: u64,
    turn_frames_shed: u64,
    turn_captures_suppressed: u64,
    turn_probes_sent: u64,
    // --- always-on serving metrics ---
    /// The session's always-on counters. Shared by `Arc`: the owning session keeps a
    /// handle too, so counters survive transport rebuilds (a `NetworkedChatSession`
    /// builds a fresh transport every turn). Note `Transport: Clone` clones the *handle*
    /// — a cloned transport keeps ticking the same counters, which is what the
    /// lane-sharded server wants and what ad-hoc copies must not forget.
    metrics: Arc<SessionCounters>,
    /// `nack_gen.nacks_suppressed()` at the last report — per-turn commit delta.
    nacks_suppressed_reported: u64,
}

impl Transport {
    /// A fresh transport on `options.path`, with the pacer tuned to the congestion
    /// controller's current estimate (exactly how a turn begins). Owns a fresh counter
    /// set; sessions that rebuild their transport per turn pass a persistent handle via
    /// [`Transport::with_metrics`] instead.
    pub(crate) fn new(options: &NetSessionOptions, initial_estimate_bps: f64) -> Self {
        Self::with_metrics(options, initial_estimate_bps, Arc::new(SessionCounters::new()))
    }

    /// Like [`Transport::new`], but ticking the caller-owned `metrics` counters.
    pub(crate) fn with_metrics(
        options: &NetSessionOptions,
        initial_estimate_bps: f64,
        metrics: Arc<SessionCounters>,
    ) -> Self {
        Self {
            emulator: NetworkEmulator::new(options.path.clone(), options.seed),
            packetizer: Packetizer::default(),
            pacer: Pacer::new(PacerConfig::from_target_bitrate(initial_estimate_bps, 2.5)),
            rtx: RtxQueue::new(),
            fec_encoder: FecEncoder::new(options.fec),
            fec_recovery: FecRecovery::new(),
            assembler: FrameAssembler::new(),
            nack_gen: NackGenerator::new(options.nack),
            cc_pending: Vec::new(),
            cc_fold: FeedbackFold::new(),
            nack_pool: Vec::new(),
            media: Vec::new(),
            parity: Vec::new(),
            run_pool: Vec::new(),
            poll_outstanding: false,
            next_net_packet_id: 0,
            up_prop_us: options.path.uplink.propagation_delay.as_micros(),
            down_prop_us: options.path.downlink.propagation_delay.as_micros(),
            max_payload: Packetizer::default().max_payload() as u64,
            outgoing: Vec::new(),
            media_first_seq: Vec::new(),
            media_group_size: Vec::new(),
            seq_to_media: SeqRing::new(),
            progress: Vec::new(),
            retired_below: 0,
            turn_packets_lost: 0,
            turn_retransmissions_sent: 0,
            turn_target_sum: 0.0,
            turn_target_min: f64::INFINITY,
            turn_target_max: f64::NEG_INFINITY,
            turn_frame_latencies: Vec::new(),
            latency_scratch: LatencyStats::new(),
            degradation_level: DegradationLevel::Normal,
            pending_outage_recovery: None,
            counters_reported: LinkCounters::default(),
            watchdog_fallbacks_reported: 0,
            turn_degradation_events: 0,
            turn_frames_shed: 0,
            turn_captures_suppressed: 0,
            turn_probes_sent: 0,
            metrics,
            nacks_suppressed_reported: 0,
        }
    }

    /// A handle to the session's always-on counters (snapshot off the hot path).
    pub(crate) fn metrics_handle(&self) -> Arc<SessionCounters> {
        Arc::clone(&self.metrics)
    }

    /// Number of frames handed to this transport so far (= the next global frame id).
    pub(crate) fn frames_sent(&self) -> usize {
        self.retired_below + self.outgoing.len()
    }

    /// The live-window slot of global frame `frame`, or `None` when the frame is retired
    /// (or unknown). The per-frame vectors (`outgoing`, `progress`, `media_first_seq`)
    /// slide with `retired_below`, so a conversation's memory stays bounded by its live
    /// turn — global ids translate through this offset.
    fn live_slot(&self, frame: usize) -> Option<usize> {
        frame
            .checked_sub(self.retired_below)
            .filter(|slot| *slot < self.outgoing.len())
    }

    /// The uplink's current queueing backlog in milliseconds — what a new turn inherits
    /// from its predecessor on a shared timeline.
    pub(crate) fn uplink_backlog_ms(&self, now: SimTime) -> f64 {
        self.emulator.uplink().backlog(now).as_millis_f64()
    }

    /// Snapshot of the private uplink's cumulative counters (reads existing totals; no
    /// hot-path bookkeeping).
    pub(crate) fn uplink_counters(&self) -> LinkCounters {
        self.emulator.uplink().counters()
    }

    /// Resets the per-turn counters.
    fn begin_turn(&mut self) {
        self.turn_packets_lost = 0;
        self.turn_retransmissions_sent = 0;
        self.turn_target_sum = 0.0;
        self.turn_target_min = f64::INFINITY;
        self.turn_target_max = f64::NEG_INFINITY;
        self.turn_frame_latencies.clear();
        self.turn_degradation_events = 0;
        self.turn_frames_shed = 0;
        self.turn_captures_suppressed = 0;
        self.turn_probes_sent = 0;
    }

    /// The spread between the largest and smallest ABR target of the current turn — the
    /// within-turn convergence signal (a cold controller swings, a warm one holds).
    pub(crate) fn turn_target_swing_bps(&self) -> f64 {
        if self.turn_target_max >= self.turn_target_min {
            self.turn_target_max - self.turn_target_min
        } else {
            0.0
        }
    }

    /// NACK requests dropped by deadline-aware suppression so far.
    pub(crate) fn nacks_suppressed(&self) -> u64 {
        self.nack_gen.nacks_suppressed()
    }

    /// A cleared run buffer, recycled from the pool when one is free.
    fn take_run_buf(&mut self) -> Vec<(u64, RtpPacket)> {
        self.run_pool.pop().unwrap_or_default()
    }

    /// Schedules `items` as one coalesced [`PacketRun`] at its first departure, or
    /// returns the buffer to the pool when the burst turned out empty.
    fn dispatch_run<S: NetEventSink>(&mut self, items: Vec<(u64, RtpPacket)>, sink: &mut S) {
        match items.first() {
            Some(&(first_us, _)) => sink.schedule_net_run(
                SimTime::from_micros(first_us),
                PacketRun {
                    seq: 0, // assigned by the sink
                    cursor: 0,
                    items,
                },
            ),
            None => self.recycle_run_buf(items),
        }
    }

    /// Returns a completed run's buffer to the pool (capacity kept).
    fn recycle_run_buf(&mut self, mut buf: Vec<(u64, RtpPacket)>) {
        buf.clear();
        self.run_pool.push(buf);
    }

    /// A cleared NACK-sequence buffer, recycled from the pool when one is free.
    fn take_nack_buf(&mut self) -> Vec<u64> {
        self.nack_pool.pop().unwrap_or_default()
    }

    /// Returns a consumed [`NetEvent::FeedbackArrival`] payload to the pool
    /// (capacity kept).
    fn recycle_nack_buf(&mut self, mut buf: Vec<u64>) {
        buf.clear();
        self.nack_pool.push(buf);
    }

    /// Number of pooled (idle) run buffers — the reuse/leak invariant tests read this.
    #[cfg(test)]
    pub(crate) fn run_pool_len(&self) -> usize {
        self.run_pool.len()
    }

    /// True when every retired turn's tracking state was actually dropped — the
    /// bounded-memory invariant of long conversations, checked right after a turn was
    /// retired (so nothing live should remain either).
    #[cfg(test)]
    pub(crate) fn tracked_state_is_bounded(&self) -> bool {
        self.assembler.tracked_frames() == 0
            && self.seq_to_media.is_empty()
            && self.fec_recovery.tracked_groups() == 0
            && self.rtx.stored() == 0
            && self.outgoing.is_empty()
            && self.progress.is_empty()
            && self.media_first_seq.is_empty()
            && self.media_group_size.is_empty()
    }

    /// Retires every frame below `frame` (all reported turns): reassembly, FEC-group,
    /// sequence-mapping and per-frame bookkeeping state for them is dropped, bounding a
    /// conversation's memory to the live turn regardless of how many turns it has run
    /// (the drained vectors keep their capacity, so steady-state turns stay
    /// allocation-stable too). Sequence-continuity state (`highest_seen`) survives, so
    /// gap detection across the boundary stays exact.
    fn retire_below(&mut self, frame: usize) {
        if frame <= self.retired_below {
            return;
        }
        let drop_n = (frame - self.retired_below).min(self.outgoing.len());
        self.outgoing.drain(..drop_n);
        self.progress.drain(..drop_n);
        self.media_first_seq.drain(..drop_n);
        self.media_group_size.drain(..drop_n);
        self.retired_below = frame;
        let bound_seq = self.packetizer.next_sequence();
        self.seq_to_media.retain(|_, (f, _)| *f >= frame);
        self.assembler.retire_before(frame as u64);
        self.fec_recovery.retire_before(frame as u64);
        self.rtx.forget_before(bound_seq);
        self.nack_gen.forget_below(bound_seq);
    }
}

/// One turn's window geometry on the shared timeline.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TurnWindow {
    /// Global id of the turn's first frame.
    base: usize,
    /// Capture time of the turn's first frame, in absolute µs.
    start_us: u64,
    frame_interval_us: u64,
}

impl TurnWindow {
    fn capture_ts_us(&self, global: usize) -> u64 {
        self.start_us + (global - self.base) as u64 * self.frame_interval_us
    }

    /// A dummy window for think-time drains: no captures are pending, so only `base`
    /// anchors bookkeeping (mirrors [`drain_gap`]'s internal construction — external
    /// drivers like the lane-sharded server need the same shape).
    pub(crate) fn drain_at(base: usize, start: SimTime) -> Self {
        Self {
            base,
            start_us: start.as_micros(),
            frame_interval_us: 1,
        }
    }
}

/// The actor: borrows the compute and transport halves for one drain and handles the
/// turn's events. During think-time drains (between turns of a conversation) `frames` is
/// empty — no capture events are pending then, only deliveries, polls and feedback.
pub(crate) struct TurnMachine<'a> {
    pub(crate) compute: &'a mut NetCompute,
    pub(crate) gcc: &'a mut GccController,
    pub(crate) t: &'a mut Transport,
    pub(crate) frames: &'a [Frame],
    pub(crate) window: TurnWindow,
    pub(crate) port: UplinkPort<'a>,
}

impl Actor for TurnMachine<'_> {
    type Event = NetEvent;

    fn on_event(&mut self, now: SimTime, event: NetEvent, sim: &mut Simulation<NetEvent>) {
        self.handle(now, event, sim);
    }
}

impl TurnMachine<'_> {
    /// Handles one event, scheduling follow-ons into `sink`. This is [`Actor::on_event`]
    /// with the timeline abstracted: the single-tenant path passes the simulation itself,
    /// the multi-tenant engine passes a tagging wrapper.
    pub(crate) fn handle<S: NetEventSink>(&mut self, now: SimTime, event: NetEvent, sink: &mut S) {
        let t = &mut *self.t;
        match event {
            NetEvent::Capture(i) => {
                debug_assert!(
                    !self.frames.is_empty(),
                    "capture event fired outside a turn window"
                );
                // --- Close the loop: everything the sender has learned by now. Matured
                // entries fold straight into the GCC summary while the pending ring
                // compacts in place — maturity times are not monotone (a loss matures on
                // a fixed report delay, possibly before an earlier send's arrival), so
                // this must stay a full in-order scan, not a front-pop.
                t.cc_fold.clear();
                let fold = &mut t.cc_fold;
                t.cc_pending.retain(|(known_at, fb)| {
                    if *known_at <= now.as_micros() {
                        fold.push(fb);
                        false
                    } else {
                        true
                    }
                });
                if !t.cc_fold.is_empty() {
                    self.gcc.on_feedback_fold_at(now, &t.cc_fold);
                }
                self.gcc.poll_watchdog(now);

                // --- The degradation ladder decides what this capture tick does.
                let deg = self.compute.options.degradation;
                let backlog_ms = self.port.backlog_ms(&t.emulator, now);
                let level = if !deg.enabled {
                    DegradationLevel::Normal
                } else if self.gcc.is_silent() {
                    DegradationLevel::OutageSuppress
                } else if self.gcc.in_fallback() || backlog_ms > deg.shed_backlog_ms {
                    DegradationLevel::SoftFallback
                } else {
                    DegradationLevel::Normal
                };
                if level != t.degradation_level {
                    t.degradation_level = level;
                    t.turn_degradation_events += 1;
                }

                let fps = self.compute.options.capture_fps;
                let target_bps = self.compute.options.abr.target_bitrate(self.gcc.estimate_bps());
                t.turn_target_sum += target_bps;
                t.turn_target_min = t.turn_target_min.min(target_bps);
                t.turn_target_max = t.turn_target_max.max(target_bps);
                if t.pacer.set_rate(target_bps * 2.5, now) {
                    t.metrics.pacer_rate_clamps.inc();
                }

                let local = i - self.window.base;
                debug_assert_eq!(
                    t.retired_below + t.outgoing.len(),
                    i,
                    "captures must arrive in frame order"
                );
                let suppress = level == DegradationLevel::OutageSuppress;
                let shed = level == DegradationLevel::SoftFallback && backlog_ms > deg.shed_backlog_ms;
                if suppress || shed {
                    // Placeholder bookkeeping keeps the frame-order invariant and slot
                    // indexing intact: the frame's slot exists, but nothing is encoded,
                    // packetized or expected by the assembler — at the deadline the frame
                    // simply reads as never delivered (the decoder conceals the gap).
                    t.outgoing.push(OutgoingFrame {
                        frame_id: i as u64,
                        capture_ts_us: self.window.capture_ts_us(i),
                        size_bytes: 0,
                        is_keyframe: false,
                    });
                    t.progress.push(NetFrameProgress::default());
                    t.media_first_seq.push(u64::MAX);
                    t.media_group_size.push(0);
                    if shed {
                        t.turn_frames_shed += 1;
                        return;
                    }
                    t.turn_captures_suppressed += 1;
                    // The keep-alive probe rides the suppressed capture tick: a tiny
                    // uplink packet whose feedback (or continued silence) tells the
                    // watchdog whether the path is back.
                    let probe = Packet::new(t.next_net_packet_id, deg.probe_packet_bytes, now).with_flow(0);
                    t.next_net_packet_id += 1;
                    t.turn_probes_sent += 1;
                    t.metrics.packets_sent.inc();
                    let outcome = self.port.send(&mut t.emulator, &probe, now);
                    match outcome.arrival() {
                        Some(arrival) => t.cc_pending.push((
                            arrival.as_micros() + t.down_prop_us,
                            PacketFeedback {
                                sent_at: now,
                                arrived_at: Some(arrival),
                                size_bytes: deg.probe_packet_bytes,
                            },
                        )),
                        None => {
                            t.turn_packets_lost += 1;
                            if outcome == DeliveryOutcome::DroppedOutage {
                                // Blackout silence: no synthetic loss report (see the
                                // media-send loss path) — the watchdog keeps decaying
                                // until a probe actually makes it through.
                                t.pending_outage_recovery = Some(now);
                            } else {
                                t.cc_pending.push((
                                    now.as_micros() + t.up_prop_us + t.down_prop_us + 20_000,
                                    PacketFeedback {
                                        sent_at: now,
                                        arrived_at: None,
                                        size_bytes: deg.probe_packet_bytes,
                                    },
                                ));
                            }
                        }
                    }
                    return;
                }

                // --- Adaptive FEC: re-size the parity groups from the live loss estimate
                // and shave the parity overhead off the media budget, so media + parity
                // together never exceed the ABR target.
                let adaptive = self.compute.options.adaptive_fec;
                if adaptive.enabled && self.compute.options.fec.is_enabled() {
                    let g = adaptive
                        .group_for_loss(self.gcc.loss_estimate(), self.compute.options.fec.group_size);
                    t.fec_encoder.set_group_size(g);
                }
                let group_size = t.fec_encoder.group_size();
                let budget_bits = if adaptive.enabled && group_size > 0 {
                    (target_bps / fps) * group_size as f64 / (group_size as f64 + 1.0)
                } else {
                    target_bps / fps
                };

                // --- Encode frame i to the per-frame budget the target implies.
                self.compute
                    .encode_slot_to_budget(local, &self.frames[local], budget_bits);
                let encoded = &self.compute.encoded_slots[local];
                let frame_out = OutgoingFrame {
                    frame_id: i as u64,
                    capture_ts_us: self.window.capture_ts_us(i),
                    size_bytes: encoded.total_bytes(),
                    is_keyframe: encoded.frame_type == aivc_videocodec::FrameType::Intra,
                };
                t.outgoing.push(frame_out);
                t.progress.push(NetFrameProgress::default());
                t.assembler.expect_frame(&frame_out);

                // --- Packetize, protect, pace.
                t.packetizer.packetize_into(&frame_out, &mut t.media);
                if group_size > 0 {
                    for (pi, p) in t.media.iter_mut().enumerate() {
                        p.fec_group = group_of_index(group_size, pi);
                    }
                }
                let packetizer = &mut t.packetizer;
                let (fec_encoder, parity) = (&t.fec_encoder, &mut t.parity);
                fec_encoder.protect_into(&t.media, || packetizer.allocate_sequence(), parity);
                t.media_first_seq.push(t.media[0].header.sequence);
                t.media_group_size.push(group_size);
                // Coalesced mode rides the whole burst (media + parity) on one run event;
                // per-packet mode schedules one slab slot per departure (kept for the
                // equivalence property suite). Pacer state advances identically either way.
                let mut run_items = if self.compute.options.coalesce_delivery {
                    Some(t.take_run_buf())
                } else {
                    None
                };
                for (pi, p) in t.media.iter().enumerate() {
                    if !t.seq_to_media.insert(p.header.sequence, (i, pi)) {
                        t.metrics.late_seq_drops.inc();
                    }
                    let _ = t.rtx.remember(p);
                    let when = t.pacer.schedule_send(p.wire_size(), now);
                    match &mut run_items {
                        Some(items) => items.push((when.as_micros(), *p)),
                        None => sink.schedule_net(when, NetEvent::SendUplink(*p)),
                    }
                }
                for p in &t.parity {
                    let when = t.pacer.schedule_send(p.wire_size(), now);
                    match &mut run_items {
                        Some(items) => items.push((when.as_micros(), *p)),
                        None => sink.schedule_net(when, NetEvent::SendUplink(*p)),
                    }
                }
                if let Some(items) = run_items {
                    t.dispatch_run(items, sink);
                }
            }
            NetEvent::UplinkRun(mut run) => {
                // Deliver every departure due now (equal-time departures of one burst are
                // consecutive in per-packet pop order too — their seqs were consecutive),
                // then re-arm at the next departure under the run's original seq.
                let now_us = now.as_micros();
                while let Some(&(dep_us, packet)) = run.items.get(run.cursor) {
                    if dep_us > now_us {
                        break;
                    }
                    run.cursor += 1;
                    self.deliver_uplink(now, packet, sink);
                }
                match run.items.get(run.cursor) {
                    Some(&(next_us, _)) => sink.reschedule_net_run(SimTime::from_micros(next_us), run),
                    None => self.t.recycle_run_buf(run.items),
                }
            }
            NetEvent::SendUplink(packet) => self.deliver_uplink(now, packet, sink),
            NetEvent::UplinkArrival(packet) => {
                let late_before = t.nack_gen.late_drops();
                t.nack_gen.on_packet(packet.header.sequence, now);
                let late_now = t.nack_gen.late_drops();
                if late_now > late_before {
                    t.metrics.late_seq_drops.add(late_now - late_before);
                }
                let frame_idx = packet.header.frame_id as usize;
                if frame_idx >= t.retired_below {
                    // A group becomes XOR-recoverable when its *last-but-one* packet shows
                    // up — which can be the parity packet or a late media/RTX arrival — so
                    // every arrival nominates its group for a recovery check below.
                    let mut fec_candidate: Option<(usize, u32)> = None;
                    match packet.header.kind {
                        PayloadKind::Media | PayloadKind::Retransmission => {
                            t.assembler.on_packet(&packet, now);
                            // FEC bookkeeping keys off the group size the frame was
                            // *encoded* under (stored per frame), not the encoder's
                            // current size — adaptive FEC may have re-sized since.
                            if let Some((fi, media_idx)) = t.seq_to_media.get(packet.header.sequence).copied()
                            {
                                let group_size = t.live_slot(fi).map_or(0, |s| t.media_group_size[s]);
                                if let Some(group) = group_of_index(group_size, media_idx) {
                                    t.fec_recovery.on_media(fi as u64, group, media_idx);
                                    fec_candidate = Some((fi, group));
                                }
                            }
                        }
                        PayloadKind::Fec => {
                            if let (Some(group), Some(slot)) = (packet.fec_group, t.live_slot(frame_idx)) {
                                let frame = &t.outgoing[slot];
                                let group_size = t.media_group_size[slot];
                                let count = (frame.size_bytes.div_ceil(t.max_payload).max(1)) as usize;
                                for pi in 0..count {
                                    if group_of_index(group_size, pi) == Some(group) {
                                        t.fec_recovery.expect_media(frame.frame_id, group, pi);
                                    }
                                }
                                t.fec_recovery.on_parity(frame.frame_id, group);
                                fec_candidate = Some((frame_idx, group));
                            }
                        }
                        PayloadKind::Feedback => {}
                    }
                    if let Some((frame_idx, group)) = fec_candidate {
                        if let Some(slot) = t.live_slot(frame_idx) {
                            let frame = &t.outgoing[slot];
                            for recovered in t.fec_recovery.recoverable(frame.frame_id, group) {
                                let start = recovered as u64 * t.max_payload;
                                let end = ((recovered as u64 + 1) * t.max_payload).min(frame.size_bytes);
                                let synthetic = RtpPacket {
                                    header: packet.header,
                                    payload_start: start,
                                    payload_end: end,
                                    fec_group: Some(group),
                                };
                                t.assembler.on_packet(&synthetic, now);
                                // Mark the reconstructed packet received so the group is
                                // not re-recovered, and cancel its pending NACK — the
                                // receiver holds the bytes, retransmitting them would
                                // waste constrained uplink capacity.
                                t.fec_recovery.on_media(frame.frame_id, group, recovered);
                                t.nack_gen
                                    .on_packet(t.media_first_seq[slot] + recovered as u64, now);
                                t.progress[slot].fec_recovered = true;
                            }
                        }
                    }
                }
                let opts = &self.compute.options;
                if opts.enable_retransmission && t.nack_gen.pending_count() > 0 && !t.poll_outstanding {
                    t.poll_outstanding = true;
                    sink.schedule_net(now + opts.nack.reorder_guard, NetEvent::ReceiverPoll);
                }
            }
            NetEvent::ReceiverPoll => {
                let opts = &self.compute.options;
                t.poll_outstanding = false;
                if !opts.enable_retransmission {
                    return;
                }
                let mut due = t.take_nack_buf();
                t.nack_gen.due_nacks_into(now, &mut due);
                if due.is_empty() {
                    t.recycle_nack_buf(due);
                } else {
                    let fb_packet =
                        Packet::new(t.next_net_packet_id, opts.feedback_packet_bytes, now).with_flow(1);
                    t.next_net_packet_id += 1;
                    match t.emulator.send(Direction::Downlink, &fb_packet, now).arrival() {
                        Some(arrival) => sink.schedule_net(arrival, NetEvent::FeedbackArrival(due)),
                        None => t.recycle_nack_buf(due),
                    }
                }
                if t.nack_gen.pending_count() > 0 && !t.poll_outstanding {
                    t.poll_outstanding = true;
                    sink.schedule_net(now + opts.nack.retry_interval, NetEvent::ReceiverPoll);
                }
            }
            NetEvent::FeedbackArrival(sequences) => {
                // One retransmit call per NACKed sequence keeps the old→new sequence
                // pairing exact even when some sequences (e.g. lost parity packets) are
                // not in the retransmission store. The retransmission burst coalesces
                // into one run, exactly like a capture's media burst.
                let mut run_items = if self.compute.options.coalesce_delivery {
                    Some(t.take_run_buf())
                } else {
                    None
                };
                for &old_seq in &sequences {
                    let packetizer = &mut t.packetizer;
                    if let Some(p) = t.rtx.retransmit_one(old_seq, || packetizer.allocate_sequence()) {
                        if let Some(mapping) = t.seq_to_media.get(old_seq).copied() {
                            if !t.seq_to_media.insert(p.header.sequence, mapping) {
                                t.metrics.late_seq_drops.inc();
                            }
                        }
                        let when = t.pacer.schedule_send(p.wire_size(), now);
                        match &mut run_items {
                            Some(items) => items.push((when.as_micros(), p)),
                            None => sink.schedule_net(when, NetEvent::SendUplink(p)),
                        }
                    }
                }
                t.recycle_nack_buf(sequences);
                if let Some(items) = run_items {
                    t.dispatch_run(items, sink);
                }
            }
        }
    }

    /// One packet leaves the pacer and enters the uplink: the [`NetEvent::SendUplink`]
    /// body, shared verbatim by per-packet events and coalesced runs (a run calls this
    /// once per due departure, in departure order).
    fn deliver_uplink<S: NetEventSink>(&mut self, now: SimTime, packet: RtpPacket, sink: &mut S) {
        let t = &mut *self.t;
        t.metrics.packets_sent.inc();
        let frame_idx = packet.header.frame_id as usize;
        if let Some(entry) = t.live_slot(frame_idx).map(|s| &mut t.progress[s]) {
            if entry.send_start.is_none() && packet.header.kind == PayloadKind::Media {
                entry.send_start = Some(now);
            }
        }
        if packet.header.kind == PayloadKind::Retransmission {
            t.turn_retransmissions_sent += 1;
        }
        let net_packet = Packet::new(t.next_net_packet_id, packet.wire_size(), now)
            .with_flow(0)
            .with_tag(packet.header.sequence);
        t.next_net_packet_id += 1;
        let outcome = self.port.send(&mut t.emulator, &net_packet, now);
        match outcome.arrival() {
            Some(arrival) => {
                sink.schedule_net(arrival, NetEvent::UplinkArrival(packet));
                if let Some(dup_at) = self.port.take_duplicate(&mut t.emulator) {
                    // A Duplicate fault episode emitted a second copy one
                    // serialization time behind the original; reassembly and FEC
                    // bookkeeping absorb it idempotently.
                    sink.schedule_net(dup_at, NetEvent::UplinkArrival(packet));
                }
                // The receiver's next report reaches the sender one downlink
                // propagation after arrival.
                t.cc_pending.push((
                    arrival.as_micros() + t.down_prop_us,
                    PacketFeedback {
                        sent_at: now,
                        arrived_at: Some(arrival),
                        size_bytes: packet.wire_size(),
                    },
                ));
            }
            None => {
                t.turn_packets_lost += 1;
                if outcome == DeliveryOutcome::DroppedOutage {
                    // A blackout is *silence*, not a loss report: the receiver only
                    // discovers gaps from later arrivals, and during a full outage
                    // there are none. No synthetic feedback — this silence is
                    // exactly what the congestion controller's watchdog detects.
                    t.pending_outage_recovery = Some(now);
                    return;
                }
                // The sender infers the loss from the gap in the next report:
                // roughly one RTT plus a reporting guard after the send.
                t.cc_pending.push((
                    now.as_micros() + t.up_prop_us + t.down_prop_us + 20_000,
                    PacketFeedback {
                        sent_at: now,
                        arrived_at: None,
                        size_bytes: packet.wire_size(),
                    },
                ));
            }
        }
    }
}

/// Runs one chat-turn window on the given timeline, starting at `sim.now()`:
/// schedules the captures, drains every event up to the turn's answer deadline, decodes
/// whatever (partially) arrived and lets the MLLM answer.
///
/// On return the simulation clock sits exactly at the deadline; events beyond it (late
/// packets, pending polls) stay queued — a persistent caller carries them into the next
/// window, a single-turn caller drops the timeline.
pub(crate) fn run_turn_window(
    compute: &mut NetCompute,
    gcc: &mut GccController,
    transport: &mut Transport,
    sim: &mut Simulation<NetEvent>,
    frames: &[Frame],
    question: &Question,
) -> NetTurnReport {
    assert!(!frames.is_empty(), "a chat turn needs at least one frame");
    let now = sim.now();
    let plan = begin_turn_window(compute, transport, now, sim, frames.len(), question);

    {
        let mut machine = TurnMachine {
            compute,
            gcc,
            t: transport,
            frames,
            window: plan.window,
            port: UplinkPort::Private,
        };
        sim.run_until(plan.horizon, &mut machine);
    }

    conclude_turn_window(
        compute,
        gcc,
        transport,
        &UplinkPort::Private,
        &plan,
        frames.len(),
        question,
    )
}

/// One planned turn window: its geometry on the timeline plus the answer deadline the
/// caller must drain to before concluding.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TurnPlan {
    pub(crate) window: TurnWindow,
    pub(crate) horizon: SimTime,
}

/// Opens a turn window starting at `now`: refreshes the query, arms the deadline-aware
/// NACK budget, resets the per-turn counters and schedules the capture events into
/// `sink`. The caller then drains the timeline to the returned horizon (with a
/// [`TurnMachine`] owning the matching window) and calls [`conclude_turn_window`].
pub(crate) fn begin_turn_window(
    compute: &mut NetCompute,
    transport: &mut Transport,
    now: SimTime,
    sink: &mut impl NetEventSink,
    frame_count: usize,
    question: &Question,
) -> TurnPlan {
    compute.refresh_query(question);
    let opts = &compute.options;

    let fps = opts.capture_fps;
    let frame_interval_us = (1e6 / fps).round() as u64;
    let window = TurnWindow {
        base: transport.frames_sent(),
        start_us: now.as_micros(),
        frame_interval_us,
    };
    let last_capture_us = window.capture_ts_us(window.base + frame_count - 1);
    let horizon = SimTime::from_micros(last_capture_us + (opts.drain_secs.max(0.0) * 1e6).round() as u64);

    if opts.deadline_aware_nack {
        // Expected NACK → RTX arrival: the request rides the downlink, the retransmission
        // rides the uplink, plus a pacing/serialization guard.
        let recovery_estimate =
            SimDuration::from_micros(transport.down_prop_us + transport.up_prop_us + 10_000);
        transport.nack_gen.set_deadline(Some(horizon), recovery_estimate);
    }
    transport.begin_turn();
    for i in 0..frame_count {
        sink.schedule_net(
            SimTime::from_micros(window.capture_ts_us(window.base + i)),
            NetEvent::Capture(window.base + i),
        );
    }
    TurnPlan { window, horizon }
}

/// Concludes a drained turn window: decodes what arrived, lets the MLLM answer, and
/// assembles the report. `port` must be the same uplink the machine sent on — it is only
/// read here, for the per-turn fault-counter deltas.
pub(crate) fn conclude_turn_window(
    compute: &mut NetCompute,
    gcc: &mut GccController,
    transport: &mut Transport,
    port: &UplinkPort<'_>,
    plan: &TurnPlan,
    frame_count: usize,
    question: &Question,
) -> NetTurnReport {
    let window = plan.window;
    let horizon = plan.horizon;
    let fps = compute.options.capture_fps;

    // --- Deadline reached: decode whatever (partially) arrived, in capture order. The
    // per-frame vectors slide with retirement, so this turn's frames start at the slot
    // its global base translates to (callers retire all prior turns before a new one, so
    // in practice the slice is the whole live window).
    let base_slot = window.base - transport.retired_below;
    let mut decoded_count = 0usize;
    let mut frames_delivered = 0usize;
    let mut received_bits: u64 = 0;
    transport.latency_scratch.clear();
    // Time-to-recover anchor: the most recent outage-dropped send (possibly from a prior
    // turn or think gap); the first frame completing after it marks re-convergence.
    let outage_anchor = transport.pending_outage_recovery;
    let mut recovered_at: Option<SimTime> = None;
    for (local, frame_out) in transport.outgoing[base_slot..].iter().enumerate() {
        let Some(status) = transport.assembler.view(frame_out.frame_id) else {
            continue;
        };
        if status.complete {
            frames_delivered += 1;
            if let (Some(t0), Some(done)) = (outage_anchor, status.completed_at) {
                if done > t0 && recovered_at.is_none_or(|r| done < r) {
                    recovered_at = Some(done);
                }
            }
            if let (Some(done), Some(start)) = (
                status.completed_at,
                transport.progress[base_slot + local].send_start,
            ) {
                let elapsed = done.saturating_since(start);
                transport.latency_scratch.record(elapsed);
                transport.turn_frame_latencies.push(elapsed);
            }
        }
        received_bits += status.received_bytes * 8;
        if status.received_ranges.is_empty() {
            continue;
        }
        if compute.decoded.len() <= decoded_count {
            compute.decoded.push(DecodedFrame::placeholder());
        }
        compute.decoder.decode_into(
            &compute.encoded_slots[local],
            status.received_ranges,
            status.completed_at.map(|t| t.as_micros()),
            &mut compute.decode_scratch,
            &mut compute.decoded[decoded_count],
        );
        decoded_count += 1;
    }

    // --- The MLLM answers over everything that decoded before the deadline.
    let answer = compute.responder.respond_with(
        question,
        &compute.decoded[..decoded_count],
        compute.options.seed,
        &mut compute.mllm,
    );

    // --- Resilience telemetry: outage exposure, recovery time, ladder activity, and the
    // per-turn deltas of the always-on link fault counters. All-zero ("quiet") — and
    // omitted from serialization — whenever faults and the resilience stack are off.
    let time_to_recover_ms = match (transport.pending_outage_recovery, recovered_at) {
        (Some(t0), Some(done)) => {
            transport.pending_outage_recovery = None;
            Some(done.saturating_since(t0).as_millis_f64())
        }
        _ => None,
    };
    let uplink_counters = port.counters(&transport.emulator);
    let watchdog_fallbacks_now = gcc.watchdog_fallbacks();
    let resilience = FaultTelemetry {
        outage_ms: compute
            .options
            .path
            .uplink
            .faults
            .outage_overlap(SimTime::from_micros(window.start_us), horizon)
            .as_millis_f64(),
        time_to_recover_ms,
        degradation_events: transport.turn_degradation_events,
        frames_shed: transport.turn_frames_shed,
        captures_suppressed: transport.turn_captures_suppressed,
        probes_sent: transport.turn_probes_sent,
        watchdog_fallbacks: watchdog_fallbacks_now - transport.watchdog_fallbacks_reported,
        packets_duplicated: uplink_counters.duplicated - transport.counters_reported.duplicated,
        packets_reordered: uplink_counters.reordered - transport.counters_reported.reordered,
        outage_drops: uplink_counters.outage_drops - transport.counters_reported.outage_drops,
    };
    transport.counters_reported = uplink_counters;
    transport.watchdog_fallbacks_reported = watchdog_fallbacks_now;

    let window_secs = (frame_count as f64 / fps).max(1e-9);
    let encoded_bits: u64 = transport.outgoing[base_slot..]
        .iter()
        .map(|f| f.size_bytes * 8)
        .sum();
    let fec_recovered_frames = transport.progress[base_slot..]
        .iter()
        .filter(|p| p.fec_recovered)
        .count() as u64;

    // --- Commit the turn to the always-on counters, from the *same values the report
    // carries* — this is what makes the fleet rollup reconcile exactly against
    // per-session report sums at any pool size. Event-site commits would not: losses in
    // a think gap bump per-turn counters that `begin_turn` resets before any report
    // reads them. One batch of relaxed adds per turn, off the per-packet path.
    {
        let m = &transport.metrics;
        m.frames_sent.add(frame_count as u64);
        m.frames_delivered.add(frames_delivered as u64);
        m.fec_recovered_frames.add(fec_recovered_frames);
        m.packets_lost.add(transport.turn_packets_lost);
        m.retransmissions_sent.add(transport.turn_retransmissions_sent);
        m.frames_shed.add(transport.turn_frames_shed);
        m.captures_suppressed.add(transport.turn_captures_suppressed);
        m.watchdog_fallbacks.add(resilience.watchdog_fallbacks);
        let nacks_suppressed_now = transport.nack_gen.nacks_suppressed();
        m.nacks_suppressed
            .add(nacks_suppressed_now - transport.nacks_suppressed_reported);
        transport.nacks_suppressed_reported = nacks_suppressed_now;
        if decoded_count == 0 {
            // Nothing decoded by the answer deadline: the turn's answer shipped blind.
            m.deadline_missed.inc();
        }
    }
    NetTurnReport {
        answer,
        frames_sent: frame_count,
        frames_delivered,
        frames_decoded: decoded_count,
        mean_target_bitrate_bps: transport.turn_target_sum / frame_count as f64,
        achieved_bitrate_bps: encoded_bits as f64 / window_secs,
        goodput_bps: received_bits as f64 / window_secs,
        p50_frame_latency_ms: transport.latency_scratch.percentile_ms(0.5),
        p95_frame_latency_ms: transport.latency_scratch.p95_ms(),
        packets_lost: transport.turn_packets_lost,
        fec_recovered_frames,
        retransmissions_sent: transport.turn_retransmissions_sent,
        final_estimate_bps: gcc.estimate_bps(),
        resilience,
    }
    // Callers on a persistent timeline retire the reported frames via `finish_turn`.
}

/// Post-report bookkeeping for persistent timelines: retires every reported frame's
/// transport state (memory stays bounded by the live turn) — see
/// [`Transport::retire_below`].
pub(crate) fn finish_turn(transport: &mut Transport) {
    transport.retire_below(transport.frames_sent());
}

/// Drains in-flight events (deliveries, polls, feedback, retransmissions) for `gap` of
/// simulated time without capturing any frames — the user's think time between turns.
pub(crate) fn drain_gap(
    compute: &mut NetCompute,
    gcc: &mut GccController,
    transport: &mut Transport,
    sim: &mut Simulation<NetEvent>,
    gap: SimDuration,
) {
    let horizon = sim.now() + gap;
    let window = TurnWindow {
        base: transport.frames_sent(),
        start_us: sim.now().as_micros(),
        frame_interval_us: 1,
    };
    let mut machine = TurnMachine {
        compute,
        gcc,
        t: transport,
        frames: &[],
        window,
        port: UplinkPort::Private,
    };
    sim.run_until(horizon, &mut machine);
}
