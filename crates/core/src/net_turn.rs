//! The shared network-turn engine: one [`Actor`] state machine over the `aivc-sim`
//! kernel, driven by both [`crate::NetworkedChatSession`] (fresh transport every turn —
//! the pre-kernel semantics, byte-for-byte) and [`crate::Conversation`] (one persistent
//! transport timeline across every turn of a conversation).
//!
//! The split is deliberate:
//!
//! * [`NetCompute`] owns everything the *chat pipeline* needs — CLIP model and scratch,
//!   Eq. 2 allocator, encoder/decoder and their per-slot scratches, the MLLM responder —
//!   exactly the scratch-reuse structure of [`crate::ChatSession`];
//! * [`Transport`] owns everything the *network* needs — the emulated path, packetizer,
//!   pacer, RTX store, FEC encode/recovery, reassembly, NACK generation, and the pending
//!   congestion feedback — plus the per-turn counters the report reads;
//! * [`TurnMachine`] borrows both for the duration of a drain and implements
//!   [`Actor::on_event`]: the capture → encode → packetize → protect → pace → send →
//!   arrive → recover loop of §2.2.
//!
//! The engine never owns the [`Simulation`]: the caller does, which is what decides the
//! semantics. A fresh simulation per turn restarts the clock at zero and discards
//! in-flight events at the deadline (the single-turn contract the golden fixtures pin);
//! a persistent simulation keeps the clock, the queue backlog, the trace cursor and every
//! in-flight packet across turn boundaries (the conversation contract).

use crate::allocator::QpAllocator;
use crate::context_aware::StreamerConfig;
use crate::net_session::{NetSessionOptions, NetTurnReport};
use crate::session::StreamingMode;
use aivc_mllm::{MllmChat, MllmScratch, Question};
use aivc_netsim::emulator::Direction;
use aivc_netsim::{LatencyStats, NetworkEmulator, Packet};
use aivc_rtc::cc::{GccController, PacketFeedback};
use aivc_rtc::fec::{FecEncoder, FecRecovery};
use aivc_rtc::nack::{NackGenerator, RtxQueue};
use aivc_rtc::pacer::{Pacer, PacerConfig};
use aivc_rtc::packetizer::{FrameAssembler, OutgoingFrame, Packetizer};
use aivc_rtc::rtp::{PayloadKind, RtpPacket};
use aivc_scene::Frame;
use aivc_semantics::{ClipModel, ClipScratch, TextQuery};
use aivc_sim::{Actor, SimDuration, SimTime, Simulation};
use aivc_videocodec::{
    DecodeScratch, DecodedFrame, Decoder, EncodeScratch, EncodedFrame, Encoder, Qp, QpMap,
};
use std::collections::BTreeMap;

/// Events of the networked turn's discrete-event loop. Frame indices are *global* across
/// the owning timeline (a conversation numbers its frames continuously; a single-turn
/// session always starts at zero).
#[derive(Debug)]
pub(crate) enum NetEvent {
    /// Frame `i` is captured: drain mature feedback into GCC, pick the ABR target, encode
    /// at that target, packetize + protect + pace onto the uplink.
    Capture(usize),
    /// A packet leaves the pacer and enters the uplink.
    SendUplink(RtpPacket),
    /// A packet arrives at the receiver.
    UplinkArrival(RtpPacket),
    /// The receiver checks for due NACKs.
    ReceiverPoll,
    /// A feedback packet (NACKed sequences) arrives back at the sender.
    FeedbackArrival(Vec<u64>),
}

/// Per-frame transport bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NetFrameProgress {
    pub(crate) send_start: Option<SimTime>,
    pub(crate) fec_recovered: bool,
}

/// The compute half of a networked session: the chat pipeline and every reusable scratch.
#[derive(Debug, Clone)]
pub(crate) struct NetCompute {
    pub(crate) options: NetSessionOptions,
    clip_model: ClipModel,
    allocator: QpAllocator,
    encoder: Encoder,
    decoder: Decoder,
    responder: MllmChat,
    clip: ClipScratch,
    qp_map: QpMap,
    /// Scratch map the rate-control search refills per probed level.
    probe_map: QpMap,
    encode_scratches: Vec<EncodeScratch>,
    /// Scratch output for the QP-offset search.
    probe_encoded: EncodedFrame,
    /// The committed encode of each turn slot (needed again at decode time). Slots are
    /// turn-local: a conversation reuses them every turn.
    encoded_slots: Vec<EncodedFrame>,
    decode_scratch: DecodeScratch,
    decoded: Vec<DecodedFrame>,
    mllm: MllmScratch,
    cached_question: Option<Question>,
    query: TextQuery,
}

impl NetCompute {
    pub(crate) fn new(options: NetSessionOptions, config: StreamerConfig, clip_model: ClipModel) -> Self {
        Self {
            allocator: QpAllocator::new(config.allocator),
            encoder: Encoder::new(config.encoder),
            decoder: Decoder::new(),
            responder: MllmChat::responder(options.seed ^ 0x5EED),
            clip_model,
            options,
            clip: ClipScratch::new(),
            qp_map: QpMap::empty(),
            probe_map: QpMap::empty(),
            encode_scratches: Vec::new(),
            probe_encoded: EncodedFrame::placeholder(),
            encoded_slots: Vec::new(),
            decode_scratch: DecodeScratch::new(),
            decoded: Vec::new(),
            mllm: MllmScratch::new(),
            cached_question: None,
            query: TextQuery::from_concepts("", std::iter::empty::<String>()),
        }
    }

    /// Re-derives the text query only when the question changes (same memoization as
    /// [`crate::ChatSession`]).
    fn refresh_query(&mut self, question: &Question) {
        if self.cached_question.as_ref() != Some(question) {
            self.query = TextQuery::from_words_and_concepts(
                &question.text,
                self.clip_model.ontology(),
                question.query_concepts.iter().cloned(),
            );
            self.cached_question = Some(question.clone());
        }
    }

    /// Encodes `frame` into turn slot `slot` at the closest achievable size to
    /// `budget_bits`.
    ///
    /// Context-aware mode binary-searches a uniform QP offset on top of the frame's Eq. 2
    /// map (coded bits are monotone decreasing in the offset — the same §3.2
    /// bitrate-matching procedure `ContextAwareStreamer::encode_at_bitrate` uses, but per
    /// frame and per target); baseline mode binary-searches the single uniform QP a
    /// traditional WebRTC encoder's rate control would pick.
    fn encode_slot_to_budget(&mut self, slot: usize, frame: &Frame, budget_bits: f64) {
        if self.encode_scratches.len() <= slot {
            self.encode_scratches.resize_with(slot + 1, EncodeScratch::new);
        }
        if self.encoded_slots.len() <= slot {
            self.encoded_slots
                .resize_with(slot + 1, EncodedFrame::placeholder);
        }
        let grid = self.encoder.grid_for(frame);
        let (mut lo, mut hi) = match self.options.mode {
            StreamingMode::ContextAware => {
                let importance = self
                    .clip_model
                    .correlation_map_coherent(frame, &self.query, &mut self.clip);
                self.allocator.allocate_into(importance, grid, &mut self.qp_map);
                (-51i32, 51i32)
            }
            StreamingMode::Baseline => (0i32, 51i32),
        };
        // Probe maps are refilled in place (`probe_map`); after the first frame of a given
        // grid the search allocates nothing beyond what the encoder itself needs.
        let fill_probe_map =
            |options: &NetSessionOptions, base: &QpMap, level: i32, out: &mut QpMap| match options.mode {
                StreamingMode::ContextAware => base.offset_all_into(level, out),
                StreamingMode::Baseline => out.fill_uniform(grid, Qp::new(level)),
            };
        let mut probe_map = std::mem::replace(&mut self.probe_map, QpMap::empty());
        let mut best_level = lo;
        let mut best_err = f64::INFINITY;
        let mut last_probed = None;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            fill_probe_map(&self.options, &self.qp_map, mid, &mut probe_map);
            self.encoder.encode_into(
                frame,
                &probe_map,
                &mut self.encode_scratches[slot],
                &mut self.probe_encoded,
            );
            last_probed = Some(mid);
            let bits = self.probe_encoded.total_bits() as f64;
            let err = (bits - budget_bits).abs();
            if err < best_err {
                best_err = err;
                best_level = mid;
            }
            if bits > budget_bits {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        if last_probed == Some(best_level) {
            // The search converged on the last level probed: reuse that encode.
            self.encoded_slots[slot].clone_from(&self.probe_encoded);
        } else {
            fill_probe_map(&self.options, &self.qp_map, best_level, &mut probe_map);
            self.encoder.encode_into(
                frame,
                &probe_map,
                &mut self.encode_scratches[slot],
                &mut self.encoded_slots[slot],
            );
        }
        self.probe_map = probe_map;
    }
}

/// The transport half: the emulated path and every sender/receiver machine, with frame
/// bookkeeping indexed by *global* frame id and per-turn counters the report reads.
#[derive(Debug, Clone)]
pub(crate) struct Transport {
    emulator: NetworkEmulator,
    packetizer: Packetizer,
    pacer: Pacer,
    rtx: RtxQueue,
    fec_encoder: FecEncoder,
    fec_recovery: FecRecovery,
    assembler: FrameAssembler,
    pub(crate) nack_gen: NackGenerator,
    /// Feedback the receiver has produced but the sender has not yet seen:
    /// (time the sender learns the packet's fate, the per-packet feedback).
    cc_pending: Vec<(u64, PacketFeedback)>,
    cc_batch: Vec<PacketFeedback>,
    /// Reusable packetization buffer.
    media: Vec<RtpPacket>,
    poll_outstanding: bool,
    next_net_packet_id: u64,
    up_prop_us: u64,
    down_prop_us: u64,
    max_payload: u64,
    // --- global frame bookkeeping (indexed by frame id) ---
    outgoing: Vec<OutgoingFrame>,
    media_first_seq: Vec<u64>,
    /// Sequence → (frame index, media packet index) for FEC-group reconstruction.
    seq_to_media: BTreeMap<u64, (usize, usize)>,
    progress: Vec<NetFrameProgress>,
    /// Frames below this id are retired: their turn has been reported, so arrivals for
    /// them only feed sequence-continuity bookkeeping.
    retired_below: usize,
    // --- per-turn counters, reset by `begin_turn` ---
    turn_packets_lost: u64,
    turn_retransmissions_sent: u64,
    turn_target_sum: f64,
    turn_target_min: f64,
    turn_target_max: f64,
    /// Frame transmission latencies recorded at the current turn's deadline.
    pub(crate) turn_frame_latencies: Vec<SimDuration>,
}

impl Transport {
    /// A fresh transport on `options.path`, with the pacer tuned to the congestion
    /// controller's current estimate (exactly how a turn begins).
    pub(crate) fn new(options: &NetSessionOptions, initial_estimate_bps: f64) -> Self {
        Self {
            emulator: NetworkEmulator::new(options.path.clone(), options.seed),
            packetizer: Packetizer::default(),
            pacer: Pacer::new(PacerConfig::from_target_bitrate(initial_estimate_bps, 2.5)),
            rtx: RtxQueue::new(),
            fec_encoder: FecEncoder::new(options.fec),
            fec_recovery: FecRecovery::new(),
            assembler: FrameAssembler::new(),
            nack_gen: NackGenerator::new(options.nack),
            cc_pending: Vec::new(),
            cc_batch: Vec::new(),
            media: Vec::new(),
            poll_outstanding: false,
            next_net_packet_id: 0,
            up_prop_us: options.path.uplink.propagation_delay.as_micros(),
            down_prop_us: options.path.downlink.propagation_delay.as_micros(),
            max_payload: Packetizer::default().max_payload() as u64,
            outgoing: Vec::new(),
            media_first_seq: Vec::new(),
            seq_to_media: BTreeMap::new(),
            progress: Vec::new(),
            retired_below: 0,
            turn_packets_lost: 0,
            turn_retransmissions_sent: 0,
            turn_target_sum: 0.0,
            turn_target_min: f64::INFINITY,
            turn_target_max: f64::NEG_INFINITY,
            turn_frame_latencies: Vec::new(),
        }
    }

    /// Number of frames handed to this transport so far (= the next global frame id).
    pub(crate) fn frames_sent(&self) -> usize {
        self.retired_below + self.outgoing.len()
    }

    /// The live-window slot of global frame `frame`, or `None` when the frame is retired
    /// (or unknown). The per-frame vectors (`outgoing`, `progress`, `media_first_seq`)
    /// slide with `retired_below`, so a conversation's memory stays bounded by its live
    /// turn — global ids translate through this offset.
    fn live_slot(&self, frame: usize) -> Option<usize> {
        frame
            .checked_sub(self.retired_below)
            .filter(|slot| *slot < self.outgoing.len())
    }

    /// The uplink's current queueing backlog in milliseconds — what a new turn inherits
    /// from its predecessor on a shared timeline.
    pub(crate) fn uplink_backlog_ms(&self, now: SimTime) -> f64 {
        self.emulator.uplink().backlog(now).as_millis_f64()
    }

    /// Resets the per-turn counters.
    fn begin_turn(&mut self) {
        self.turn_packets_lost = 0;
        self.turn_retransmissions_sent = 0;
        self.turn_target_sum = 0.0;
        self.turn_target_min = f64::INFINITY;
        self.turn_target_max = f64::NEG_INFINITY;
        self.turn_frame_latencies.clear();
    }

    /// The spread between the largest and smallest ABR target of the current turn — the
    /// within-turn convergence signal (a cold controller swings, a warm one holds).
    pub(crate) fn turn_target_swing_bps(&self) -> f64 {
        if self.turn_target_max >= self.turn_target_min {
            self.turn_target_max - self.turn_target_min
        } else {
            0.0
        }
    }

    /// NACK requests dropped by deadline-aware suppression so far.
    pub(crate) fn nacks_suppressed(&self) -> u64 {
        self.nack_gen.nacks_suppressed()
    }

    /// True when every retired turn's tracking state was actually dropped — the
    /// bounded-memory invariant of long conversations, checked right after a turn was
    /// retired (so nothing live should remain either).
    #[cfg(test)]
    pub(crate) fn tracked_state_is_bounded(&self) -> bool {
        self.assembler.tracked_frames() == 0
            && self.seq_to_media.is_empty()
            && self.fec_recovery.tracked_groups() == 0
            && self.rtx.stored() == 0
            && self.outgoing.is_empty()
            && self.progress.is_empty()
            && self.media_first_seq.is_empty()
    }

    /// Retires every frame below `frame` (all reported turns): reassembly, FEC-group,
    /// sequence-mapping and per-frame bookkeeping state for them is dropped, bounding a
    /// conversation's memory to the live turn regardless of how many turns it has run
    /// (the drained vectors keep their capacity, so steady-state turns stay
    /// allocation-stable too). Sequence-continuity state (`highest_seen`) survives, so
    /// gap detection across the boundary stays exact.
    fn retire_below(&mut self, frame: usize) {
        if frame <= self.retired_below {
            return;
        }
        let drop_n = (frame - self.retired_below).min(self.outgoing.len());
        self.outgoing.drain(..drop_n);
        self.progress.drain(..drop_n);
        self.media_first_seq.drain(..drop_n);
        self.retired_below = frame;
        let bound_seq = self.packetizer.next_sequence();
        self.seq_to_media.retain(|_, (f, _)| *f >= frame);
        self.assembler.retire_before(frame as u64);
        self.fec_recovery.retire_before(frame as u64);
        self.rtx.forget_before(bound_seq);
        self.nack_gen.forget_below(bound_seq);
    }
}

/// One turn's window geometry on the shared timeline.
#[derive(Debug, Clone, Copy)]
struct TurnWindow {
    /// Global id of the turn's first frame.
    base: usize,
    /// Capture time of the turn's first frame, in absolute µs.
    start_us: u64,
    frame_interval_us: u64,
}

impl TurnWindow {
    fn capture_ts_us(&self, global: usize) -> u64 {
        self.start_us + (global - self.base) as u64 * self.frame_interval_us
    }
}

/// The actor: borrows the compute and transport halves for one drain and handles the
/// turn's events. During think-time drains (between turns of a conversation) `frames` is
/// empty — no capture events are pending then, only deliveries, polls and feedback.
struct TurnMachine<'a> {
    compute: &'a mut NetCompute,
    gcc: &'a mut GccController,
    t: &'a mut Transport,
    frames: &'a [Frame],
    window: TurnWindow,
}

impl Actor for TurnMachine<'_> {
    type Event = NetEvent;

    fn on_event(&mut self, now: SimTime, event: NetEvent, sim: &mut Simulation<NetEvent>) {
        let t = &mut *self.t;
        match event {
            NetEvent::Capture(i) => {
                debug_assert!(
                    !self.frames.is_empty(),
                    "capture event fired outside a turn window"
                );
                // --- Close the loop: everything the sender has learned by now.
                t.cc_batch.clear();
                let batch = &mut t.cc_batch;
                t.cc_pending.retain(|(known_at, fb)| {
                    if *known_at <= now.as_micros() {
                        batch.push(*fb);
                        false
                    } else {
                        true
                    }
                });
                if !t.cc_batch.is_empty() {
                    self.gcc.on_feedback_report(&t.cc_batch);
                }
                let fps = self.compute.options.capture_fps;
                let target_bps = self.compute.options.abr.target_bitrate(self.gcc.estimate_bps());
                t.turn_target_sum += target_bps;
                t.turn_target_min = t.turn_target_min.min(target_bps);
                t.turn_target_max = t.turn_target_max.max(target_bps);
                t.pacer.set_rate(target_bps * 2.5, now);

                // --- Encode frame i to the per-frame budget the target implies.
                let local = i - self.window.base;
                let budget_bits = target_bps / fps;
                self.compute
                    .encode_slot_to_budget(local, &self.frames[local], budget_bits);
                let encoded = &self.compute.encoded_slots[local];
                let frame_out = OutgoingFrame {
                    frame_id: i as u64,
                    capture_ts_us: self.window.capture_ts_us(i),
                    size_bytes: encoded.total_bytes(),
                    is_keyframe: encoded.frame_type == aivc_videocodec::FrameType::Intra,
                };
                debug_assert_eq!(
                    t.retired_below + t.outgoing.len(),
                    i,
                    "captures must arrive in frame order"
                );
                t.outgoing.push(frame_out);
                t.progress.push(NetFrameProgress::default());
                t.assembler.expect_frame(&frame_out);

                // --- Packetize, protect, pace.
                t.packetizer.packetize_into(&frame_out, &mut t.media);
                if self.compute.options.fec.is_enabled() {
                    for (pi, p) in t.media.iter_mut().enumerate() {
                        p.fec_group = t.fec_encoder.group_of(pi);
                    }
                }
                let packetizer = &mut t.packetizer;
                let parity = t.fec_encoder.protect(&t.media, || packetizer.allocate_sequence());
                t.media_first_seq.push(t.media[0].header.sequence);
                for (pi, p) in t.media.iter().enumerate() {
                    t.seq_to_media.insert(p.header.sequence, (i, pi));
                    t.rtx.remember(p);
                    let when = t.pacer.schedule_send(p.wire_size(), now);
                    sim.schedule_at(when, NetEvent::SendUplink(*p));
                }
                for p in &parity {
                    let when = t.pacer.schedule_send(p.wire_size(), now);
                    sim.schedule_at(when, NetEvent::SendUplink(*p));
                }
            }
            NetEvent::SendUplink(packet) => {
                let frame_idx = packet.header.frame_id as usize;
                if let Some(entry) = t.live_slot(frame_idx).map(|s| &mut t.progress[s]) {
                    if entry.send_start.is_none() && packet.header.kind == PayloadKind::Media {
                        entry.send_start = Some(now);
                    }
                }
                if packet.header.kind == PayloadKind::Retransmission {
                    t.turn_retransmissions_sent += 1;
                }
                let net_packet = Packet::new(t.next_net_packet_id, packet.wire_size(), now)
                    .with_flow(0)
                    .with_tag(packet.header.sequence);
                t.next_net_packet_id += 1;
                let outcome = t.emulator.send(Direction::Uplink, &net_packet, now);
                match outcome.arrival() {
                    Some(arrival) => {
                        sim.schedule_at(arrival, NetEvent::UplinkArrival(packet));
                        // The receiver's next report reaches the sender one downlink
                        // propagation after arrival.
                        t.cc_pending.push((
                            arrival.as_micros() + t.down_prop_us,
                            PacketFeedback {
                                sent_at: now,
                                arrived_at: Some(arrival),
                                size_bytes: packet.wire_size(),
                            },
                        ));
                    }
                    None => {
                        t.turn_packets_lost += 1;
                        // The sender infers the loss from the gap in the next report:
                        // roughly one RTT plus a reporting guard after the send.
                        t.cc_pending.push((
                            now.as_micros() + t.up_prop_us + t.down_prop_us + 20_000,
                            PacketFeedback {
                                sent_at: now,
                                arrived_at: None,
                                size_bytes: packet.wire_size(),
                            },
                        ));
                    }
                }
            }
            NetEvent::UplinkArrival(packet) => {
                t.nack_gen.on_packet(packet.header.sequence, now);
                let frame_idx = packet.header.frame_id as usize;
                if frame_idx >= t.retired_below {
                    // A group becomes XOR-recoverable when its *last-but-one* packet shows
                    // up — which can be the parity packet or a late media/RTX arrival — so
                    // every arrival nominates its group for a recovery check below.
                    let mut fec_candidate: Option<(usize, u32)> = None;
                    match packet.header.kind {
                        PayloadKind::Media | PayloadKind::Retransmission => {
                            t.assembler.on_packet(&packet, now);
                            if self.compute.options.fec.is_enabled() {
                                if let Some((fi, media_idx)) =
                                    t.seq_to_media.get(&packet.header.sequence).copied()
                                {
                                    if let Some(group) = t.fec_encoder.group_of(media_idx) {
                                        t.fec_recovery.on_media(fi as u64, group, media_idx);
                                        fec_candidate = Some((fi, group));
                                    }
                                }
                            }
                        }
                        PayloadKind::Fec => {
                            if let (Some(group), Some(frame)) =
                                (packet.fec_group, t.live_slot(frame_idx).map(|s| &t.outgoing[s]))
                            {
                                let count = (frame.size_bytes.div_ceil(t.max_payload).max(1)) as usize;
                                for pi in 0..count {
                                    if t.fec_encoder.group_of(pi) == Some(group) {
                                        t.fec_recovery.expect_media(frame.frame_id, group, pi);
                                    }
                                }
                                t.fec_recovery.on_parity(frame.frame_id, group);
                                fec_candidate = Some((frame_idx, group));
                            }
                        }
                        PayloadKind::Feedback => {}
                    }
                    if let Some((frame_idx, group)) = fec_candidate {
                        if let Some(slot) = t.live_slot(frame_idx) {
                            let frame = &t.outgoing[slot];
                            for recovered in t.fec_recovery.recoverable(frame.frame_id, group) {
                                let start = recovered as u64 * t.max_payload;
                                let end = ((recovered as u64 + 1) * t.max_payload).min(frame.size_bytes);
                                let synthetic = RtpPacket {
                                    header: packet.header,
                                    payload_start: start,
                                    payload_end: end,
                                    fec_group: Some(group),
                                };
                                t.assembler.on_packet(&synthetic, now);
                                // Mark the reconstructed packet received so the group is
                                // not re-recovered, and cancel its pending NACK — the
                                // receiver holds the bytes, retransmitting them would
                                // waste constrained uplink capacity.
                                t.fec_recovery.on_media(frame.frame_id, group, recovered);
                                t.nack_gen
                                    .on_packet(t.media_first_seq[slot] + recovered as u64, now);
                                t.progress[slot].fec_recovered = true;
                            }
                        }
                    }
                }
                let opts = &self.compute.options;
                if opts.enable_retransmission && t.nack_gen.pending_count() > 0 && !t.poll_outstanding {
                    t.poll_outstanding = true;
                    sim.schedule_at(now + opts.nack.reorder_guard, NetEvent::ReceiverPoll);
                }
            }
            NetEvent::ReceiverPoll => {
                let opts = &self.compute.options;
                t.poll_outstanding = false;
                if !opts.enable_retransmission {
                    return;
                }
                let due = t.nack_gen.due_nacks(now);
                if !due.is_empty() {
                    let fb_packet =
                        Packet::new(t.next_net_packet_id, opts.feedback_packet_bytes, now).with_flow(1);
                    t.next_net_packet_id += 1;
                    if let Some(arrival) = t.emulator.send(Direction::Downlink, &fb_packet, now).arrival() {
                        sim.schedule_at(arrival, NetEvent::FeedbackArrival(due));
                    }
                }
                if t.nack_gen.pending_count() > 0 && !t.poll_outstanding {
                    t.poll_outstanding = true;
                    sim.schedule_at(now + opts.nack.retry_interval, NetEvent::ReceiverPoll);
                }
            }
            NetEvent::FeedbackArrival(sequences) => {
                // One retransmit call per NACKed sequence keeps the old→new sequence
                // pairing exact even when some sequences (e.g. lost parity packets) are
                // not in the retransmission store.
                for &old_seq in &sequences {
                    let packetizer = &mut t.packetizer;
                    for p in t.rtx.retransmit(&[old_seq], || packetizer.allocate_sequence()) {
                        if let Some(mapping) = t.seq_to_media.get(&old_seq).copied() {
                            t.seq_to_media.insert(p.header.sequence, mapping);
                        }
                        let when = t.pacer.schedule_send(p.wire_size(), now);
                        sim.schedule_at(when, NetEvent::SendUplink(p));
                    }
                }
            }
        }
    }
}

/// Runs one chat-turn window on the given timeline, starting at `sim.now()`:
/// schedules the captures, drains every event up to the turn's answer deadline, decodes
/// whatever (partially) arrived and lets the MLLM answer.
///
/// On return the simulation clock sits exactly at the deadline; events beyond it (late
/// packets, pending polls) stay queued — a persistent caller carries them into the next
/// window, a single-turn caller drops the timeline.
pub(crate) fn run_turn_window(
    compute: &mut NetCompute,
    gcc: &mut GccController,
    transport: &mut Transport,
    sim: &mut Simulation<NetEvent>,
    frames: &[Frame],
    question: &Question,
) -> NetTurnReport {
    assert!(!frames.is_empty(), "a chat turn needs at least one frame");
    compute.refresh_query(question);
    let opts = &compute.options;

    let fps = opts.capture_fps;
    let frame_interval_us = (1e6 / fps).round() as u64;
    let window = TurnWindow {
        base: transport.frames_sent(),
        start_us: sim.now().as_micros(),
        frame_interval_us,
    };
    let last_capture_us = window.capture_ts_us(window.base + frames.len() - 1);
    let horizon = SimTime::from_micros(last_capture_us + (opts.drain_secs.max(0.0) * 1e6).round() as u64);

    if opts.deadline_aware_nack {
        // Expected NACK → RTX arrival: the request rides the downlink, the retransmission
        // rides the uplink, plus a pacing/serialization guard.
        let recovery_estimate =
            SimDuration::from_micros(transport.down_prop_us + transport.up_prop_us + 10_000);
        transport.nack_gen.set_deadline(Some(horizon), recovery_estimate);
    }
    transport.begin_turn();
    for i in 0..frames.len() {
        sim.schedule_at(
            SimTime::from_micros(window.capture_ts_us(window.base + i)),
            NetEvent::Capture(window.base + i),
        );
    }

    {
        let mut machine = TurnMachine {
            compute,
            gcc,
            t: transport,
            frames,
            window,
        };
        sim.run_until(horizon, &mut machine);
    }

    // --- Deadline reached: decode whatever (partially) arrived, in capture order. The
    // per-frame vectors slide with retirement, so this turn's frames start at the slot
    // its global base translates to (callers retire all prior turns before a new one, so
    // in practice the slice is the whole live window).
    let base_slot = window.base - transport.retired_below;
    let mut decoded_count = 0usize;
    let mut frames_delivered = 0usize;
    let mut received_bits: u64 = 0;
    let mut latency = LatencyStats::new();
    for (local, frame_out) in transport.outgoing[base_slot..].iter().enumerate() {
        let Some(status) = transport.assembler.status(frame_out.frame_id) else {
            continue;
        };
        if status.complete {
            frames_delivered += 1;
            if let (Some(done), Some(start)) = (
                status.completed_at,
                transport.progress[base_slot + local].send_start,
            ) {
                let elapsed = done.saturating_since(start);
                latency.record(elapsed);
                transport.turn_frame_latencies.push(elapsed);
            }
        }
        received_bits += status.received_bytes * 8;
        if status.received_ranges.is_empty() {
            continue;
        }
        if compute.decoded.len() <= decoded_count {
            compute.decoded.push(DecodedFrame::placeholder());
        }
        compute.decoder.decode_into(
            &compute.encoded_slots[local],
            &status.received_ranges,
            status.completed_at.map(|t| t.as_micros()),
            &mut compute.decode_scratch,
            &mut compute.decoded[decoded_count],
        );
        decoded_count += 1;
    }

    // --- The MLLM answers over everything that decoded before the deadline.
    let answer = compute.responder.respond_with(
        question,
        &compute.decoded[..decoded_count],
        compute.options.seed,
        &mut compute.mllm,
    );

    let window_secs = (frames.len() as f64 / fps).max(1e-9);
    let encoded_bits: u64 = transport.outgoing[base_slot..]
        .iter()
        .map(|f| f.size_bytes * 8)
        .sum();
    NetTurnReport {
        answer,
        frames_sent: frames.len(),
        frames_delivered,
        frames_decoded: decoded_count,
        mean_target_bitrate_bps: transport.turn_target_sum / frames.len() as f64,
        achieved_bitrate_bps: encoded_bits as f64 / window_secs,
        goodput_bps: received_bits as f64 / window_secs,
        p50_frame_latency_ms: latency.percentile_ms(0.5),
        p95_frame_latency_ms: latency.p95_ms(),
        packets_lost: transport.turn_packets_lost,
        fec_recovered_frames: transport.progress[base_slot..]
            .iter()
            .filter(|p| p.fec_recovered)
            .count() as u64,
        retransmissions_sent: transport.turn_retransmissions_sent,
        final_estimate_bps: gcc.estimate_bps(),
    }
    // Callers on a persistent timeline retire the reported frames via `finish_turn`.
}

/// Post-report bookkeeping for persistent timelines: retires every reported frame's
/// transport state (memory stays bounded by the live turn) — see
/// [`Transport::retire_below`].
pub(crate) fn finish_turn(transport: &mut Transport) {
    transport.retire_below(transport.frames_sent());
}

/// Drains in-flight events (deliveries, polls, feedback, retransmissions) for `gap` of
/// simulated time without capturing any frames — the user's think time between turns.
pub(crate) fn drain_gap(
    compute: &mut NetCompute,
    gcc: &mut GccController,
    transport: &mut Transport,
    sim: &mut Simulation<NetEvent>,
    gap: SimDuration,
) {
    let horizon = sim.now() + gap;
    let window = TurnWindow {
        base: transport.frames_sent(),
        start_us: sim.now().as_micros(),
        frame_interval_us: 1,
    };
    let mut machine = TurnMachine {
        compute,
        gcc,
        t: transport,
        frames: &[],
        window,
    };
    sim.run_until(horizon, &mut machine);
}
