//! Continuous multi-turn conversations: [`Conversation`].
//!
//! The paper's §2.2 loop is conversational — an MLLM chat is a *sequence* of turns over
//! one long-lived connection. [`crate::NetworkedChatSession`] restarts its transport clock
//! at `t = 0` every turn, which throws away exactly the state a real conversation carries:
//! GCC warm-up, pacer backlog, in-flight packets, NACK history and the bandwidth trace's
//! position. A [`Conversation`] keeps **one timeline**: the `aivc-sim` kernel's clock and
//! event queue, the emulated link (and therefore the trace cursor and bottleneck queue),
//! the congestion controller, pacer, packetizer sequence space, RTX store and FEC/NACK
//! machinery all persist across turns. Turn `k + 1` starts at the simulated time turn `k`'s
//! answer deadline passed, plus the user's think time, during which in-flight packets keep
//! arriving and pending retransmissions keep flowing.
//!
//! What this buys, measurably (the [`ConversationReport`] cross-turn aggregates):
//!
//! * **warm vs cold GCC convergence** — turn 0 starts from the configured initial estimate
//!   and swings its ABR target while the controller converges; later turns start from the
//!   previous turn's final estimate and hold ([`ConversationReport::cold_target_swing_bps`]
//!   vs [`ConversationReport::warm_target_swing_bps`]);
//! * **carry-over queue delay** — a turn that overshot the link leaves a standing queue
//!   the next turn inherits ([`ConversationReport::carryover_queue_delay_ms`]);
//! * **per-conversation percentiles** — p50/p95 frame latency over *every* turn's frames,
//!   the number a service-level objective would actually track.
//!
//! Memory stays bounded by the live turn: once a turn is reported, its reassembly, FEC and
//! sequence-mapping state is retired (`net_turn::finish_turn`), so a conversation can run
//! indefinitely — the steady-state benchmark (`conversation_turn_warm`) runs thousands of
//! turns on one instance.

use crate::context_aware::StreamerConfig;
use crate::net_session::{FaultTelemetry, NetSessionOptions, NetTurnReport};
use crate::net_turn::{
    begin_turn_window, conclude_turn_window, drain_gap, finish_turn, run_turn_window, NetCompute, NetEvent,
    NetEventSink, Transport, TurnMachine, TurnPlan, TurnWindow, UplinkPort,
};
use aivc_mllm::Question;
use aivc_netsim::{LatencyStats, LinkCounters};
use aivc_rtc::cc::GccController;
use aivc_scene::Frame;
use aivc_semantics::ClipModel;
use aivc_sim::{SimDuration, SimTime, Simulation};
use serde::{Deserialize, Serialize, Value};

/// The report of a whole conversation: every turn's [`NetTurnReport`] plus the cross-turn
/// aggregates only a shared timeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversationReport {
    /// Per-turn reports, in turn order.
    pub turns: Vec<NetTurnReport>,
    /// The GCC bandwidth estimate when each turn began. Index 0 is the cold start (the
    /// configured initial estimate); entry `k + 1` equals `turns[k].final_estimate_bps` —
    /// transport state persists across turns (asserted by tests).
    pub estimate_at_turn_start_bps: Vec<f64>,
    /// Uplink queueing backlog (ms) each turn inherited from its predecessor's traffic.
    pub carryover_queue_delay_ms: Vec<f64>,
    /// Within-turn spread (max − min) of the per-frame ABR target, per turn: a cold
    /// controller swings while it converges, a warm one holds near its operating point.
    pub turn_target_swing_bps: Vec<f64>,
    /// Median frame transmission latency across every turn's delivered frames.
    pub p50_frame_latency_ms: f64,
    /// 95th-percentile frame transmission latency across every turn's delivered frames —
    /// the per-conversation tail a service-level objective tracks.
    pub p95_frame_latency_ms: f64,
    /// Mean of the per-turn goodputs.
    pub mean_goodput_bps: f64,
    /// NACK requests dropped by deadline-aware suppression over the conversation.
    pub nacks_suppressed: u64,
    /// Conversation-level fault/resilience telemetry: counters summed over every turn,
    /// `outage_ms` accumulated across turn windows, and `time_to_recover_ms` from the first
    /// turn that observed a recovery. All-zero — and omitted from serialization, keeping
    /// fault-free fixtures byte-identical — when no faults or resilience features ran.
    pub resilience: FaultTelemetry,
}

// Serialized by hand (the derive emits every field unconditionally): the `resilience`
// object only appears when it carries information, so pre-existing conversation fixtures
// are unchanged byte-for-byte.
impl Serialize for ConversationReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("turns".to_string(), self.turns.to_value()),
            (
                "estimate_at_turn_start_bps".to_string(),
                self.estimate_at_turn_start_bps.to_value(),
            ),
            (
                "carryover_queue_delay_ms".to_string(),
                self.carryover_queue_delay_ms.to_value(),
            ),
            (
                "turn_target_swing_bps".to_string(),
                self.turn_target_swing_bps.to_value(),
            ),
            (
                "p50_frame_latency_ms".to_string(),
                self.p50_frame_latency_ms.to_value(),
            ),
            (
                "p95_frame_latency_ms".to_string(),
                self.p95_frame_latency_ms.to_value(),
            ),
            ("mean_goodput_bps".to_string(), self.mean_goodput_bps.to_value()),
            ("nacks_suppressed".to_string(), self.nacks_suppressed.to_value()),
        ];
        if !self.resilience.is_quiet() {
            fields.push(("resilience".to_string(), self.resilience.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ConversationReport {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            turns: Deserialize::from_value(v.field("turns")?)?,
            estimate_at_turn_start_bps: Deserialize::from_value(v.field("estimate_at_turn_start_bps")?)?,
            carryover_queue_delay_ms: Deserialize::from_value(v.field("carryover_queue_delay_ms")?)?,
            turn_target_swing_bps: Deserialize::from_value(v.field("turn_target_swing_bps")?)?,
            p50_frame_latency_ms: Deserialize::from_value(v.field("p50_frame_latency_ms")?)?,
            p95_frame_latency_ms: Deserialize::from_value(v.field("p95_frame_latency_ms")?)?,
            mean_goodput_bps: Deserialize::from_value(v.field("mean_goodput_bps")?)?,
            nacks_suppressed: Deserialize::from_value(v.field("nacks_suppressed")?)?,
            resilience: match v.field("resilience")? {
                Value::Null => FaultTelemetry::default(),
                present => Deserialize::from_value(present)?,
            },
        })
    }
}

impl ConversationReport {
    /// The cold turn's ABR-target swing (turn 0: the controller converging from its
    /// configured initial estimate).
    pub fn cold_target_swing_bps(&self) -> f64 {
        self.turn_target_swing_bps.first().copied().unwrap_or(0.0)
    }

    /// Mean ABR-target swing of the warm turns (every turn after the first, which start
    /// from the previous turn's final estimate).
    pub fn warm_target_swing_bps(&self) -> f64 {
        if self.turn_target_swing_bps.len() < 2 {
            return 0.0;
        }
        let warm = &self.turn_target_swing_bps[1..];
        warm.iter().sum::<f64>() / warm.len() as f64
    }

    /// Fraction of turns answered correctly.
    pub fn correct_fraction(&self) -> f64 {
        if self.turns.is_empty() {
            return 0.0;
        }
        self.turns.iter().filter(|t| t.answer.correct).count() as f64 / self.turns.len() as f64
    }
}

/// One continuous multi-turn conversation over a persistent transport timeline. See the
/// module docs; construct with [`Conversation::with_defaults`], run turns with
/// [`Conversation::run_turn`] (the configured think gap is inserted automatically between
/// turns), and read the cross-turn aggregates with [`Conversation::report`].
#[derive(Debug)]
pub struct Conversation {
    compute: NetCompute,
    gcc: GccController,
    transport: Transport,
    sim: Simulation<NetEvent>,
    think_gap: SimDuration,
    turns: Vec<NetTurnReport>,
    estimate_at_turn_start_bps: Vec<f64>,
    carryover_queue_delay_ms: Vec<f64>,
    turn_target_swing_bps: Vec<f64>,
    frame_latencies: Vec<SimDuration>,
}

impl Conversation {
    /// Creates a conversation with explicit compute configuration. `think_gap` is the
    /// user's think time inserted before every turn after the first (in-flight packets
    /// keep arriving and pending retransmissions keep flowing during it).
    pub fn new(
        options: NetSessionOptions,
        config: StreamerConfig,
        clip_model: ClipModel,
        think_gap: SimDuration,
    ) -> Self {
        let gcc = GccController::new(options.gcc);
        let transport = Transport::new(&options, gcc.estimate_bps());
        Self {
            compute: NetCompute::new(options, config, clip_model),
            gcc,
            transport,
            sim: Simulation::new(),
            think_gap,
            turns: Vec::new(),
            estimate_at_turn_start_bps: Vec::new(),
            carryover_queue_delay_ms: Vec::new(),
            turn_target_swing_bps: Vec::new(),
            frame_latencies: Vec::new(),
        }
    }

    /// A conversation with the paper's compute defaults (γ = 3 allocator, medium-preset
    /// encoder, Mobile-CLIP-class model).
    pub fn with_defaults(options: NetSessionOptions, think_gap: SimDuration) -> Self {
        Self::new(
            options,
            StreamerConfig::default(),
            ClipModel::mobile_default(),
            think_gap,
        )
    }

    /// The session options.
    pub fn options(&self) -> &NetSessionOptions {
        &self.compute.options
    }

    /// The current simulated time — the conversation's single monotonic clock.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The congestion controller's current bandwidth estimate in bits per second.
    pub fn bandwidth_estimate_bps(&self) -> f64 {
        self.gcc.estimate_bps()
    }

    /// Number of turns run so far.
    pub fn turn_count(&self) -> usize {
        self.turns.len()
    }

    /// The per-turn reports so far.
    pub fn turns(&self) -> &[NetTurnReport] {
        &self.turns
    }

    /// A point-in-time reading of this conversation's always-on serving counters —
    /// relaxed atomics the transport ticks as it works, aggregated here entirely off the
    /// hot path (see the `aivc-metrics` crate docs for the ordering rationale).
    pub fn metrics_snapshot(&self) -> aivc_metrics::SessionSnapshot {
        self.transport.metrics_handle().snapshot()
    }

    /// Snapshot of the conversation's cumulative uplink [`LinkCounters`] — offered,
    /// delivered, queue-dropped, randomly lost, duplicated, reordered and outage-dropped
    /// packets since the conversation began. Reads the emulator's existing totals; the
    /// transport hot path keeps no extra bookkeeping for it.
    pub fn link_counters(&self) -> LinkCounters {
        self.transport.uplink_counters()
    }

    /// Roll-up of the fault telemetry across every turn run so far (same aggregation as
    /// [`Conversation::report`], available mid-conversation without assembling a report).
    pub fn fault_telemetry(&self) -> FaultTelemetry {
        let mut resilience = FaultTelemetry::default();
        for t in &self.turns {
            resilience.absorb(&t.resilience);
        }
        resilience
    }

    /// Number of idle pooled run buffers in the transport — the buffer-pool
    /// reuse/leak invariant tests read this.
    #[cfg(test)]
    pub(crate) fn run_pool_len(&self) -> usize {
        self.transport.run_pool_len()
    }

    /// Advances the timeline by `gap` without capturing frames: in-flight packets arrive,
    /// NACK polls fire, retransmissions flow. [`Conversation::run_turn`] already inserts
    /// the configured think gap between turns; use this for extra idle time.
    pub fn think(&mut self, gap: SimDuration) {
        drain_gap(
            &mut self.compute,
            &mut self.gcc,
            &mut self.transport,
            &mut self.sim,
            gap,
        );
    }

    /// Runs the next turn of the conversation, starting at the current simulated time
    /// (plus the configured think gap, for every turn after the first). The transport —
    /// link, trace cursor, queue backlog, GCC, pacer, sequence space, recovery machinery —
    /// is exactly as the previous turn left it.
    pub fn run_turn(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        self.run_turn_in_place(frames, question).clone()
    }

    /// [`Conversation::run_turn`] without the returned-report clone: the report is pushed
    /// onto the history by move and handed back by reference. Combined with
    /// [`Conversation::reserve_turns`], a warmed conversation's turn is allocation-free
    /// end to end (the `zero_alloc` harness asserts exactly that).
    pub fn run_turn_in_place(&mut self, frames: &[Frame], question: &Question) -> &NetTurnReport {
        if !self.turns.is_empty() && self.think_gap > SimDuration::ZERO {
            self.think(self.think_gap);
        }
        self.estimate_at_turn_start_bps.push(self.gcc.estimate_bps());
        self.carryover_queue_delay_ms
            .push(self.transport.uplink_backlog_ms(self.sim.now()));
        let report = run_turn_window(
            &mut self.compute,
            &mut self.gcc,
            &mut self.transport,
            &mut self.sim,
            frames,
            question,
        );
        self.turn_target_swing_bps
            .push(self.transport.turn_target_swing_bps());
        self.frame_latencies
            .extend_from_slice(&self.transport.turn_frame_latencies);
        finish_turn(&mut self.transport);
        self.turns.push(report);
        self.turns.last().expect("just pushed")
    }

    /// Pre-grows the per-turn history vectors for `additional_turns` more turns of
    /// `frames_per_turn` frames each, so the pushes inside those turns are guaranteed
    /// not to reallocate. Purely an optimization — capacity is a lower bound, never a cap.
    pub fn reserve_turns(&mut self, additional_turns: usize, frames_per_turn: usize) {
        self.turns.reserve(additional_turns);
        self.estimate_at_turn_start_bps.reserve(additional_turns);
        self.carryover_queue_delay_ms.reserve(additional_turns);
        self.turn_target_swing_bps.reserve(additional_turns);
        self.frame_latencies.reserve(additional_turns * frames_per_turn);
    }

    /// The configured think gap.
    pub(crate) fn think_gap(&self) -> SimDuration {
        self.think_gap
    }

    /// Opens this conversation's next turn window on an *external* timeline at `now` —
    /// the lane-sharded server's per-lane kernel — doing exactly the pre-window
    /// bookkeeping [`Conversation::run_turn_in_place`] does on the private one: push the
    /// turn-start estimate and the inherited backlog, then schedule the captures into
    /// `sink`. The caller drains the timeline to the returned plan's horizon (routing
    /// this session's events to [`Conversation::handle_net`]) and then calls
    /// [`Conversation::conclude_turn_on`].
    pub(crate) fn begin_turn_on(
        &mut self,
        now: SimTime,
        sink: &mut impl NetEventSink,
        frame_count: usize,
        question: &Question,
    ) -> TurnPlan {
        self.estimate_at_turn_start_bps.push(self.gcc.estimate_bps());
        self.carryover_queue_delay_ms
            .push(self.transport.uplink_backlog_ms(now));
        begin_turn_window(
            &mut self.compute,
            &mut self.transport,
            now,
            sink,
            frame_count,
            question,
        )
    }

    /// Concludes a turn opened by [`Conversation::begin_turn_on`] after the external
    /// timeline drained to the plan's horizon: decode + answer + report, then the same
    /// post-window bookkeeping as [`Conversation::run_turn_in_place`] (swing, latencies,
    /// retirement, history push). Returns the stored report.
    pub(crate) fn conclude_turn_on(
        &mut self,
        plan: &TurnPlan,
        frame_count: usize,
        question: &Question,
    ) -> &NetTurnReport {
        let report = conclude_turn_window(
            &mut self.compute,
            &mut self.gcc,
            &mut self.transport,
            &UplinkPort::Private,
            plan,
            frame_count,
            question,
        );
        self.turn_target_swing_bps
            .push(self.transport.turn_target_swing_bps());
        self.frame_latencies
            .extend_from_slice(&self.transport.turn_frame_latencies);
        finish_turn(&mut self.transport);
        self.turns.push(report);
        self.turns.last().expect("just pushed")
    }

    /// Handles one of this conversation's transport events on an external timeline — the
    /// per-event [`TurnMachine`] construction the multi-tenant contention engine also
    /// uses. `live` carries the frames and window of the open turn; `None` is a
    /// think-time drain (deliveries, polls, retransmissions only — no captures pending).
    pub(crate) fn handle_net(
        &mut self,
        now: SimTime,
        event: NetEvent,
        live: Option<(&[Frame], TurnWindow)>,
        sink: &mut impl NetEventSink,
    ) {
        let (frames, window) = match live {
            Some((frames, window)) => (frames, window),
            None => (&[][..], TurnWindow::drain_at(self.transport.frames_sent(), now)),
        };
        let mut machine = TurnMachine {
            compute: &mut self.compute,
            gcc: &mut self.gcc,
            t: &mut self.transport,
            frames,
            window,
            port: UplinkPort::Private,
        };
        machine.handle(now, event, sink);
    }

    /// Assembles the conversation-level report (per-turn reports + cross-turn aggregates).
    pub fn report(&self) -> ConversationReport {
        let mut latency = LatencyStats::new();
        for d in &self.frame_latencies {
            latency.record(*d);
        }
        let mean_goodput_bps = if self.turns.is_empty() {
            0.0
        } else {
            self.turns.iter().map(|t| t.goodput_bps).sum::<f64>() / self.turns.len() as f64
        };
        let resilience = self.fault_telemetry();
        ConversationReport {
            turns: self.turns.clone(),
            estimate_at_turn_start_bps: self.estimate_at_turn_start_bps.clone(),
            carryover_queue_delay_ms: self.carryover_queue_delay_ms.clone(),
            turn_target_swing_bps: self.turn_target_swing_bps.clone(),
            p50_frame_latency_ms: latency.percentile_ms(0.5),
            p95_frame_latency_ms: latency.p95_ms(),
            mean_goodput_bps,
            nacks_suppressed: self.transport.nacks_suppressed(),
            resilience,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_netsim::PathConfig;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn window(offset: usize) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        (0..4)
            .map(|i| source.frame(((offset + i) * 15 % 170) as u64))
            .collect()
    }

    fn question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    fn options(seed: u64) -> NetSessionOptions {
        let mut o = NetSessionOptions::ai_oriented(seed, PathConfig::paper_section_2_2(0.01));
        o.capture_fps = 8.0;
        o
    }

    #[test]
    fn timeline_is_continuous_across_turns() {
        let mut conv = Conversation::with_defaults(options(3), SimDuration::from_millis(500));
        let q = question();
        assert_eq!(conv.now(), SimTime::ZERO);
        conv.run_turn(&window(0), &q);
        let after_first = conv.now();
        // 4 frames at 8 fps + 300 ms drain: the deadline of turn 0.
        assert_eq!(after_first.as_micros(), (3.0 / 8.0 * 1e6) as u64 + 300_000);
        conv.run_turn(&window(4), &q);
        // Turn 1 started at turn 0's deadline + 500 ms think time.
        assert_eq!(
            conv.now().as_micros(),
            after_first.as_micros() + 500_000 + (3.0 / 8.0 * 1e6) as u64 + 300_000
        );
        assert_eq!(conv.turn_count(), 2);
    }

    #[test]
    fn transport_state_persists_estimate_at_turn_start_equals_previous_final() {
        let mut conv = Conversation::with_defaults(options(7), SimDuration::from_millis(800));
        let q = question();
        for t in 0..4 {
            conv.run_turn(&window(t * 4), &q);
        }
        let report = conv.report();
        assert_eq!(report.turns.len(), 4);
        // The acceptance contract: the GCC estimate at the start of turn k+1 equals its
        // value at the end of turn k — nothing was reset in between.
        for k in 0..3 {
            assert_eq!(
                report.estimate_at_turn_start_bps[k + 1],
                report.turns[k].final_estimate_bps,
                "turn {k}"
            );
        }
        // And the cold start really was the configured initial estimate.
        assert_eq!(
            report.estimate_at_turn_start_bps[0],
            options(7).gcc.initial_estimate_bps
        );
    }

    /// The coalesced-delivery buffer pool is bounded by the peak number of in-flight
    /// runs, not by how long the conversation lives: once warm, turns neither grow the
    /// pool (a leak — buffers allocated but never recycled back out) nor shrink it
    /// (runs completing without returning their buffer).
    #[test]
    fn run_buffer_pool_is_bounded_by_peak_in_flight_not_turn_count() {
        let mut conv = Conversation::with_defaults(options(13), SimDuration::from_millis(400));
        let q = question();
        let mut lens = Vec::new();
        for t in 0..12 {
            conv.run_turn(&window(t * 4), &q);
            conv.think(SimDuration::from_millis(600)); // let stragglers complete their runs
            lens.push(conv.run_pool_len());
        }
        let warm = lens[3];
        assert!(warm > 0, "pool never recycled a buffer: {lens:?}");
        assert!(
            lens[3..].iter().all(|&l| l == warm),
            "pool size kept moving after warmup (leak or lost buffer): {lens:?}"
        );
        assert!(warm <= 8, "pool larger than any plausible in-flight peak: {lens:?}");
    }

    #[test]
    fn conversations_are_deterministic() {
        let run = || {
            let mut conv = Conversation::with_defaults(options(11), SimDuration::from_millis(400));
            let q = question();
            for t in 0..3 {
                conv.run_turn(&window(t * 4), &q);
            }
            conv.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_turns_swing_less_than_the_cold_turn() {
        // Traditional ABR rides the estimate, so convergence is visible in the target: a
        // cold controller that believes 5 Mbps crashes down onto the 1.2 Mbps link within
        // turn 0 (huge swing); warm turns start from the converged estimate and hold.
        use aivc_netsim::{LinkConfig, LossModel};
        let path = PathConfig {
            uplink: LinkConfig::constant(1.2e6, SimDuration::from_millis(30), 300, LossModel::None),
            downlink: LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None),
        };
        let mut o = NetSessionOptions::traditional(19, path);
        o.capture_fps = 12.0;
        o.gcc.initial_estimate_bps = 5_000_000.0;
        let mut conv = Conversation::with_defaults(o, SimDuration::from_millis(500));
        let q = question();
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        for t in 0..4 {
            let frames: Vec<Frame> = (0..24).map(|i| source.frame((t * 24 + i) as u64)).collect();
            conv.run_turn(&frames, &q);
        }
        let report = conv.report();
        assert!(
            report.cold_target_swing_bps() > 2.0 * report.warm_target_swing_bps(),
            "cold swing {} should exceed warm swing {}",
            report.cold_target_swing_bps(),
            report.warm_target_swing_bps()
        );
    }

    #[test]
    fn memory_stays_bounded_by_the_live_turn() {
        let mut conv = Conversation::with_defaults(options(23), SimDuration::from_millis(100));
        let q = question();
        for t in 0..10 {
            conv.run_turn(&window(t), &q);
        }
        // Retirement pruned every reported turn: only in-flight remnants may remain.
        assert!(
            conv.transport.tracked_state_is_bounded(),
            "transport state grew unbounded"
        );
    }

    #[test]
    fn report_on_empty_conversation_is_well_behaved() {
        let conv = Conversation::with_defaults(options(1), SimDuration::ZERO);
        let report = conv.report();
        assert!(report.turns.is_empty());
        assert_eq!(report.correct_fraction(), 0.0);
        assert_eq!(report.cold_target_swing_bps(), 0.0);
        assert_eq!(report.warm_target_swing_bps(), 0.0);
    }

    /// Regression test for the retired-then-late sequence hazard: on a slow, high-latency
    /// link, packets still in flight when the answer deadline fires arrive during the
    /// think gap — *after* `finish_turn` retired their sequence numbers. The ring/bitset
    /// stores must reject them as counted drops (`late_seq_drops`), not underflow
    /// `seq - base` and panic.
    #[test]
    fn retired_then_late_arrivals_are_counted_drops_across_turns() {
        use aivc_netsim::{LinkConfig, LossModel, PathConfig};
        let path = PathConfig {
            // 400 kbps with 150 ms one-way delay: the tail of every turn's window is
            // still in flight at the deadline and lands mid-think-gap.
            uplink: LinkConfig::constant(4e5, SimDuration::from_millis(150), 300, LossModel::None),
            downlink: LinkConfig::constant(100e6, SimDuration::from_millis(30), 300, LossModel::None),
        };
        let mut o = NetSessionOptions::ai_oriented(31, path);
        o.capture_fps = 8.0;
        let mut conv = Conversation::with_defaults(o, SimDuration::from_millis(500));
        let q = question();
        for t in 0..4 {
            conv.run_turn(&window(t * 4), &q);
        }
        assert_eq!(conv.turn_count(), 4);
        let snap = conv.metrics_snapshot();
        assert!(
            snap.late_seq_drops > 0,
            "expected retired-then-late arrivals on a 150 ms link; counters: {snap}"
        );
    }
}
