//! # aivchat-core — Context-Aware Video Streaming and the AI Video Chat pipeline
//!
//! This crate is the paper's primary contribution, assembled from the substrate crates:
//!
//! * [`allocator`] — Eq. 2: mapping per-patch semantic correlation ρ (Eq. 1, from
//!   `aivc-semantics`) to per-CTU quantization parameters with temperature γ = 3;
//! * [`context_aware`] — the context-aware streamer: user words → CLIP correlation map →
//!   QP map → ROI encode, plus the trial-and-error bitrate matching used to compare against
//!   the baseline at equal actual bitrates (§3.2);
//! * [`baseline`] — the context-agnostic uniform-QP baseline;
//! * [`latency`] — the end-to-end response-latency budget (capture, CLIP, encode,
//!   transmission, decode, MLLM inference) against the 300 ms conversational bound (§1);
//! * [`session`] — the full AI Video Chat turn: capture → encode → RTC over the emulated
//!   uplink → decode → MLLM answer, with per-stage latency accounting;
//! * [`net_session`] — the network-in-the-loop turn: per-frame GCC feedback → ABR target →
//!   encode-at-bitrate → FEC/NACK recovery → decode, on a trace-driven emulated uplink
//!   (single-turn driver of the shared `net_turn` engine over the `aivc-sim` kernel);
//! * [`conversation`] — continuous multi-turn conversations: one persistent transport
//!   timeline (clock, link, trace cursor, GCC, pacer, in-flight packets) across every
//!   turn, with think-time gaps and cross-turn aggregates ([`ConversationReport`]);
//! * [`contention`] — shared-bottleneck multi-tenant contention: K conversations plus
//!   cross-traffic contending for one [`aivc_netsim::SharedLink`] on one simulation
//!   timeline, with windowed Jain fairness, a per-tenant starvation watchdog, fair-share
//!   admission and tenant-isolated recovery ([`ContentionReport`]);
//! * [`server`] — the multi-session throughput engines ([`ChatServer`] for pure compute,
//!   [`NetworkedChatServer`] for network-in-the-loop turns, [`ConversationChatServer`]
//!   for continuous conversations): N independent sessions executing turns across a
//!   scoped thread pool, bit-identically for any pool size;
//! * [`scenarios`] — the registry of named, seeded network scenarios and the engine that
//!   reports traditional vs AI-oriented ABR on each (the golden-fixture substrate);
//! * [`eval`] — the Figure 9 experiment: DeViBench accuracy of ours vs the baseline across
//!   matched bitrates.

pub mod allocator;
pub mod baseline;
pub mod contention;
pub mod context_aware;
pub mod conversation;
pub mod eval;
pub mod latency;
pub mod net_session;
mod net_turn;
pub mod scenarios;
pub mod server;
pub mod session;

pub use aivc_metrics::{SessionCounters, SessionSnapshot};
pub use allocator::{QpAllocator, QpAllocatorConfig};
pub use baseline::ContextAgnosticBaseline;
pub use contention::{
    run_contention, AdmissionConfig, ContentionConfig, ContentionReport, CrossTrafficSpec, StarvationConfig,
    TenantReport, TenantSpec, TenantTurn,
};
pub use context_aware::{ContextAwareStreamer, StreamerConfig};
pub use conversation::{Conversation, ConversationReport};
pub use eval::{run_accuracy_vs_bitrate, AccuracyPoint, MethodKind};
pub use latency::{LatencyBudget, RESPONSE_LATENCY_TARGET_MS};
pub use net_session::{NetSessionOptions, NetTurnReport, NetworkedChatSession};
pub use scenarios::{
    ContentionScenario, ContentionScenarioReport, ConversationScenario, ConversationScenarioReport, Scenario,
    ScenarioReport,
};
pub use server::{
    ChatServer, ConversationChatServer, NetworkedChatServer, ServerError, ServingReport,
};
pub use session::{AiVideoChatSession, ChatSession, ChatTurnReport, PipelineTurnReport, SessionOptions};
