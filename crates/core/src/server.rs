//! [`ChatServer`] — the multi-session throughput engine.
//!
//! The paper's deployment story is not one user: a production AI-video-chat service runs
//! *many* concurrent conversations, and the ROADMAP's north star is serving heavy traffic
//! as fast as the hardware allows. [`ChatServer`] owns N independent [`ChatSession`]s and
//! runs each session's chat turn across a [`MiniPool`], one session per pool chunk, with a
//! **static** session→lane mapping (session `i` always executes on lane `i % lanes`):
//!
//! * **bit-identical results for any pool size** — a session's turn touches only the
//!   session's own state, so where it runs cannot change what it computes (proven by the
//!   pool-size-independence property tests);
//! * **allocation-free steady state** — every session owns its scratches, reports are
//!   plain values overwritten in place, and the pool dispatches without allocating, so
//!   post-warmup `run_turns` performs zero heap allocations (guarded by
//!   `crates/bench/tests/zero_alloc.rs`);
//! * **near-linear scaling** — sessions share nothing, so throughput scales with lanes up
//!   to the core count (the `pipeline_throughput_{1,8,64}_sessions` benchmarks).
//!
//! Sessions running on server lanes use the sequential stage paths internally — the pool
//! rejects nested parallel sections, and across-session parallelism already saturates the
//! cores at server scale (DESIGN.md §"Threading model").

use crate::conversation::{Conversation, ConversationReport};
use crate::net_session::{FaultTelemetry, NetSessionOptions, NetTurnReport, NetworkedChatSession};
use crate::session::{ChatSession, PipelineTurnReport};
use aivc_mllm::{Answer, Question};
use aivc_netsim::LinkCounters;
use aivc_par::MiniPool;
use aivc_scene::Frame;
use aivc_sim::SimDuration;

/// A session type a server can pool: one long-lived object per user whose turn produces a
/// plain-value report carrying the MLLM's [`Answer`]. Both server variants share the
/// pooling machinery ([`SessionPool`]) through this trait.
trait TurnSession: Send + std::fmt::Debug {
    /// The per-turn report type, overwritten in place in the session's slot.
    type Report: Clone + Send + std::fmt::Debug;

    /// The all-zero report a slot starts from.
    fn placeholder_report() -> Self::Report;

    /// Runs one turn and returns its report.
    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> Self::Report;

    /// The answer inside a report (for the service-level quality aggregates).
    fn answer(report: &Self::Report) -> &Answer;
}

impl TurnSession for ChatSession {
    type Report = PipelineTurnReport;

    fn placeholder_report() -> PipelineTurnReport {
        PipelineTurnReport::placeholder()
    }

    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> PipelineTurnReport {
        self.run_turn(frames, question)
    }

    fn answer(report: &PipelineTurnReport) -> &Answer {
        &report.answer
    }
}

impl TurnSession for NetworkedChatSession {
    type Report = NetTurnReport;

    fn placeholder_report() -> NetTurnReport {
        NetTurnReport::placeholder()
    }

    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        self.run_turn(frames, question)
    }

    fn answer(report: &NetTurnReport) -> &Answer {
        &report.answer
    }
}

impl TurnSession for Conversation {
    type Report = NetTurnReport;

    fn placeholder_report() -> NetTurnReport {
        NetTurnReport::placeholder()
    }

    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        self.run_turn(frames, question)
    }

    fn answer(report: &NetTurnReport) -> &Answer {
        &report.answer
    }
}

/// One session slot: the long-lived session plus the in-place report of its latest turn.
#[derive(Debug)]
struct ServerSlot<S: TurnSession> {
    session: S,
    report: S::Report,
}

/// The shared engine behind both server variants: N independent sessions of one type,
/// spread across a [`MiniPool`] with the static session→lane mapping the module docs
/// describe. Private — the public surface is [`ChatServer`] and [`NetworkedChatServer`].
#[derive(Debug)]
struct SessionPool<S: TurnSession> {
    pool: MiniPool,
    slots: Vec<ServerSlot<S>>,
    /// Per-lane scratch handed to the pool — the sessions own all real state, so the
    /// lanes need none; sized to the lane count once.
    lane_units: Vec<()>,
}

impl<S: TurnSession> SessionPool<S> {
    fn with_sessions(pool: MiniPool, sessions: Vec<S>) -> Self {
        let lane_units = vec![(); pool.lanes()];
        Self {
            pool,
            slots: sessions
                .into_iter()
                .map(|session| ServerSlot {
                    session,
                    report: S::placeholder_report(),
                })
                .collect(),
            lane_units,
        }
    }

    fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        if self.slots.is_empty() {
            return;
        }
        let chunks = self.slots.len();
        self.pool
            .for_each_chunk(&mut self.slots, chunks, &mut self.lane_units, |_, slots, ()| {
                for slot in slots {
                    slot.report = slot.session.turn_report(frames, question);
                }
            });
    }

    fn reports(&self) -> impl Iterator<Item = &S::Report> {
        self.slots.iter().map(|slot| &slot.report)
    }

    fn correct_fraction(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.reports().filter(|r| S::answer(r).correct).count() as f64 / self.slots.len() as f64
    }

    fn mean_probability_correct(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.reports()
            .map(|r| S::answer(r).probability_correct)
            .sum::<f64>()
            / self.slots.len() as f64
    }
}

/// A pool of independent chat sessions executing turns in parallel. See the module docs.
#[derive(Debug)]
pub struct ChatServer {
    inner: SessionPool<ChatSession>,
}

impl ChatServer {
    /// Creates a server with `session_count` default sessions (seeds `base_seed + i`, so
    /// every session is an independent, reproducible conversation) on a pool of
    /// `pool_size` lanes.
    pub fn new(pool_size: usize, session_count: usize, base_seed: u64) -> Self {
        Self::with_sessions(
            MiniPool::new(pool_size),
            (0..session_count)
                .map(|i| ChatSession::with_defaults(base_seed.wrapping_add(i as u64)))
                .collect(),
        )
    }

    /// Creates a server from explicit sessions and a pool.
    pub fn with_sessions(pool: MiniPool, sessions: Vec<ChatSession>) -> Self {
        Self {
            inner: SessionPool::with_sessions(pool, sessions),
        }
    }

    /// Number of pool lanes turns are spread across.
    pub fn pool_size(&self) -> usize {
        self.inner.pool.lanes()
    }

    /// Number of sessions the server owns.
    pub fn session_count(&self) -> usize {
        self.inner.slots.len()
    }

    /// Runs one chat turn on **every** session — all users ask `question` about the same
    /// captured window — spreading sessions across the pool (session `i` on lane
    /// `i % lanes`, deterministically). Each session's report replaces its previous one in
    /// place; read them back with [`ChatServer::reports`] or [`ChatServer::report`].
    ///
    /// Per-session results are bit-identical to calling [`ChatSession::run_turn`] directly,
    /// for any pool size. After every session's warmup turn, the call performs no heap
    /// allocation.
    pub fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        self.inner.run_turns(frames, question);
    }

    /// The latest report of every session, in session order.
    pub fn reports(&self) -> impl Iterator<Item = &PipelineTurnReport> {
        self.inner.reports()
    }

    /// The latest report of session `index`.
    pub fn report(&self, index: usize) -> &PipelineTurnReport {
        &self.inner.slots[index].report
    }

    /// Fraction of the latest turn's answers that were correct — the service-level quality
    /// signal a deployment would watch.
    pub fn correct_fraction(&self) -> f64 {
        self.inner.correct_fraction()
    }
}

impl PipelineTurnReport {
    /// The all-zero report sessions start from (every field is overwritten by the first
    /// turn). Plain values only, so slot initialization and replacement never allocate.
    pub fn placeholder() -> Self {
        Self {
            answer: Answer::default(),
            frames_processed: 0,
            encoded_bytes: 0,
            packets: 0,
            mean_encoded_quality: 0.0,
        }
    }
}

/// The network-in-the-loop counterpart of [`ChatServer`]: N independent
/// [`NetworkedChatSession`]s — each with its own emulated path, congestion controller and
/// MLLM — executing turns across a [`MiniPool`] with the same static session→lane mapping.
///
/// A networked session's turn touches only the session's own state (its emulator is seeded
/// per session and recreated per turn), so, exactly as for [`ChatServer`], **results are
/// bit-identical for any pool size** and deterministic across runs — the property the
/// scenario engine's golden fixtures and the pool-sweep tests pin down.
#[derive(Debug)]
pub struct NetworkedChatServer {
    inner: SessionPool<NetworkedChatSession>,
}

impl NetworkedChatServer {
    /// Creates a server of `session_count` sessions sharing `template`'s network and ABR
    /// configuration, with per-session seeds `template.seed + i` (independent loss/jitter
    /// streams and answer draws per user) on a pool of `pool_size` lanes.
    pub fn new(pool_size: usize, session_count: usize, template: NetSessionOptions) -> Self {
        Self::with_sessions(
            MiniPool::new(pool_size),
            (0..session_count)
                .map(|i| {
                    let mut options = template.clone();
                    options.seed = template.seed.wrapping_add(i as u64);
                    NetworkedChatSession::with_defaults(options)
                })
                .collect(),
        )
    }

    /// Creates a server from explicit sessions and a pool.
    pub fn with_sessions(pool: MiniPool, sessions: Vec<NetworkedChatSession>) -> Self {
        Self {
            inner: SessionPool::with_sessions(pool, sessions),
        }
    }

    /// Number of pool lanes turns are spread across.
    pub fn pool_size(&self) -> usize {
        self.inner.pool.lanes()
    }

    /// Number of sessions the server owns.
    pub fn session_count(&self) -> usize {
        self.inner.slots.len()
    }

    /// Runs one networked chat turn on every session (session `i` on lane `i % lanes`).
    /// Per-session results are bit-identical to calling
    /// [`NetworkedChatSession::run_turn`] directly, for any pool size.
    pub fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        self.inner.run_turns(frames, question);
    }

    /// The latest report of every session, in session order.
    pub fn reports(&self) -> impl Iterator<Item = &NetTurnReport> {
        self.inner.reports()
    }

    /// The latest report of session `index`.
    pub fn report(&self, index: usize) -> &NetTurnReport {
        &self.inner.slots[index].report
    }

    /// Fraction of the latest turn's answers that were correct.
    pub fn correct_fraction(&self) -> f64 {
        self.inner.correct_fraction()
    }

    /// Mean model-assigned probability of a correct answer across sessions.
    pub fn mean_probability_correct(&self) -> f64 {
        self.inner.mean_probability_correct()
    }
}

/// The conversational counterpart of [`NetworkedChatServer`]: N independent long-lived
/// [`Conversation`]s — each with its own persistent transport timeline, congestion
/// controller, in-flight packet set and think-time rhythm — executing turns across a
/// [`MiniPool`] with the same static session→lane mapping.
///
/// Each call to [`ConversationChatServer::run_turns`] advances *every* conversation by one
/// turn on its own timeline (turn `k + 1` starts where turn `k`'s deadline left the clock,
/// plus the per-session think gap). A conversation's turn touches only the session's own
/// state, so, exactly as for the other servers, **results are bit-identical for any pool
/// size** and deterministic across runs.
#[derive(Debug)]
pub struct ConversationChatServer {
    inner: SessionPool<Conversation>,
}

impl ConversationChatServer {
    /// Creates a server of `session_count` conversations sharing `template`'s network and
    /// ABR configuration, with per-session seeds `template.seed + i` and a common
    /// `think_gap`, on a pool of `pool_size` lanes.
    pub fn new(
        pool_size: usize,
        session_count: usize,
        template: NetSessionOptions,
        think_gap: SimDuration,
    ) -> Self {
        Self::with_sessions(
            MiniPool::new(pool_size),
            (0..session_count)
                .map(|i| {
                    let mut options = template.clone();
                    options.seed = template.seed.wrapping_add(i as u64);
                    Conversation::with_defaults(options, think_gap)
                })
                .collect(),
        )
    }

    /// Creates a server from explicit conversations and a pool.
    pub fn with_sessions(pool: MiniPool, sessions: Vec<Conversation>) -> Self {
        Self {
            inner: SessionPool::with_sessions(pool, sessions),
        }
    }

    /// Number of pool lanes turns are spread across.
    pub fn pool_size(&self) -> usize {
        self.inner.pool.lanes()
    }

    /// Number of conversations the server owns.
    pub fn session_count(&self) -> usize {
        self.inner.slots.len()
    }

    /// Advances every conversation by one turn (session `i` on lane `i % lanes`).
    /// Per-session results are bit-identical to calling [`Conversation::run_turn`]
    /// directly, for any pool size.
    pub fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        self.inner.run_turns(frames, question);
    }

    /// The latest per-turn report of every conversation, in session order.
    pub fn reports(&self) -> impl Iterator<Item = &NetTurnReport> {
        self.inner.reports()
    }

    /// The latest per-turn report of conversation `index`.
    pub fn report(&self, index: usize) -> &NetTurnReport {
        &self.inner.slots[index].report
    }

    /// The full cross-turn report of conversation `index`.
    pub fn conversation_report(&self, index: usize) -> ConversationReport {
        self.inner.slots[index].session.report()
    }

    /// Fraction of the latest turn's answers that were correct.
    pub fn correct_fraction(&self) -> f64 {
        self.inner.correct_fraction()
    }

    /// Mean model-assigned probability of a correct answer across conversations.
    pub fn mean_probability_correct(&self) -> f64 {
        self.inner.mean_probability_correct()
    }

    /// One fleet-level serving snapshot: session and turn counts, every conversation's
    /// uplink [`LinkCounters`] summed, the fault telemetry rolled up across sessions and
    /// the latest turn's answer quality. Assembled from per-session snapshots the
    /// transports already keep — the turn hot path pays nothing for it.
    pub fn serving_report(&self) -> ServingReport {
        let mut uplink = LinkCounters::default();
        let mut resilience = FaultTelemetry::default();
        let mut turns_completed = 0;
        for slot in &self.inner.slots {
            let session = &slot.session;
            turns_completed += session.turn_count();
            let c = session.link_counters();
            uplink.offered += c.offered;
            uplink.delivered += c.delivered;
            uplink.delivered_bytes += c.delivered_bytes;
            uplink.dropped_queue += c.dropped_queue;
            uplink.lost_random += c.lost_random;
            uplink.duplicated += c.duplicated;
            uplink.reordered += c.reordered;
            uplink.outage_drops += c.outage_drops;
            resilience.absorb(&session.fault_telemetry());
        }
        ServingReport {
            sessions: self.session_count(),
            turns_completed,
            uplink,
            resilience,
            correct_fraction: self.correct_fraction(),
        }
    }
}

/// A fleet-level snapshot of a [`ConversationChatServer`]: what operations would put on
/// one dashboard line. [`std::fmt::Display`] renders exactly that line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Conversations the server owns.
    pub sessions: usize,
    /// Turns completed across all conversations.
    pub turns_completed: usize,
    /// Sum of every conversation's uplink counters.
    pub uplink: LinkCounters,
    /// Fault telemetry rolled up across conversations (first finite recovery wins).
    pub resilience: FaultTelemetry,
    /// Fraction of the latest turn's answers that were correct.
    pub correct_fraction: f64,
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serving {} sessions | {} turns | uplink {}/{} pkts ({} B, {} queue-drop, {} lost, {} outage-drop) | \
             {} fallbacks, {} shed, ttr {} | {:.0}% correct",
            self.sessions,
            self.turns_completed,
            self.uplink.delivered,
            self.uplink.offered,
            self.uplink.delivered_bytes,
            self.uplink.dropped_queue,
            self.uplink.lost_random,
            self.uplink.outage_drops,
            self.resilience.watchdog_fallbacks,
            self.resilience.frames_shed,
            match self.resilience.time_to_recover_ms {
                Some(ms) => format!("{ms:.0} ms"),
                None => "-".to_string(),
            },
            self.correct_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn window() -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        (0..4).map(|i| source.frame(i * 15)).collect()
    }

    fn question() -> Question {
        Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::FreeResponse)
    }

    #[test]
    fn server_reports_match_standalone_sessions() {
        let frames = window();
        let q = question();
        let mut server = ChatServer::new(4, 6, 100);
        server.run_turns(&frames, &q);
        for i in 0..6 {
            let mut standalone = ChatSession::with_defaults(100 + i as u64);
            let expected = standalone.run_turn(&frames, &q);
            assert_eq!(server.report(i), &expected, "session {i}");
        }
    }

    #[test]
    fn results_are_independent_of_pool_size() {
        let frames = window();
        let q = question();
        let collect = |pool_size: usize| {
            let mut server = ChatServer::new(pool_size, 5, 7);
            // Two turns: the second exercises the warm, allocation-free steady state.
            server.run_turns(&frames, &q);
            server.run_turns(&frames, &q);
            server.reports().cloned().collect::<Vec<_>>()
        };
        let sequential = collect(1);
        assert_eq!(collect(2), sequential);
        assert_eq!(collect(8), sequential);
    }

    #[test]
    fn server_turns_are_deterministic_across_runs() {
        let frames = window();
        let q = question();
        let run = || {
            let mut server = ChatServer::new(2, 8, 42);
            server.run_turns(&frames, &q);
            server.reports().cloned().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // All sessions saw the same evidence, so aggregate quality is high.
        let mut server = ChatServer::new(2, 8, 42);
        server.run_turns(&frames, &q);
        assert!(server.correct_fraction() > 0.5);
        assert_eq!(server.session_count(), 8);
        assert_eq!(server.pool_size(), 2);
    }

    #[test]
    fn empty_server_and_empty_reports_are_well_behaved() {
        let mut server = ChatServer::new(2, 0, 1);
        server.run_turns(&window(), &question());
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.correct_fraction(), 0.0);
        assert_eq!(server.reports().count(), 0);
    }

    #[test]
    fn more_sessions_than_lanes_all_get_served() {
        let frames = window();
        let q = question();
        let mut server = ChatServer::new(3, 11, 9);
        server.run_turns(&frames, &q);
        assert!(server.reports().all(|r| r.frames_processed == frames.len()));
    }

    fn net_template(seed: u64) -> NetSessionOptions {
        let mut options =
            NetSessionOptions::ai_oriented(seed, aivc_netsim::PathConfig::paper_section_2_2(0.01));
        options.capture_fps = 8.0;
        options
    }

    #[test]
    fn networked_server_reports_match_standalone_sessions() {
        let frames = window();
        let q = question();
        let mut server = NetworkedChatServer::new(2, 3, net_template(40));
        server.run_turns(&frames, &q);
        for i in 0..3 {
            let mut options = net_template(40);
            options.seed += i as u64;
            let mut standalone = NetworkedChatSession::with_defaults(options);
            assert_eq!(server.report(i), &standalone.run_turn(&frames, &q), "session {i}");
        }
        assert_eq!(server.session_count(), 3);
        assert_eq!(server.pool_size(), 2);
        assert!(server.mean_probability_correct() > 0.5);
    }

    #[test]
    fn conversation_server_matches_standalone_conversations_across_turns() {
        let q = question();
        let think = SimDuration::from_millis(600);
        let mut server = ConversationChatServer::new(2, 3, net_template(70), think);
        for t in 0..3 {
            server.run_turns(&turn_window(t), &q);
        }
        for i in 0..3 {
            let mut options = net_template(70);
            options.seed += i as u64;
            let mut standalone = Conversation::with_defaults(options, think);
            for t in 0..3 {
                standalone.run_turn(&turn_window(t), &q);
            }
            assert_eq!(
                server.conversation_report(i),
                standalone.report(),
                "conversation {i}"
            );
        }
        assert!(server.mean_probability_correct() > 0.5);
    }

    fn turn_window(turn: usize) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        (0..4)
            .map(|i| source.frame(((turn * 4 + i) * 11 % 170) as u64))
            .collect()
    }

    #[test]
    fn serving_report_rolls_the_fleet_into_one_line() {
        let q = question();
        let think = SimDuration::from_millis(400);
        let mut server = ConversationChatServer::new(2, 3, net_template(80), think);
        for t in 0..2 {
            server.run_turns(&turn_window(t), &q);
        }
        let report = server.serving_report();
        assert_eq!(report.sessions, 3);
        assert_eq!(report.turns_completed, 6);
        assert!(
            report.uplink.offered >= report.uplink.delivered && report.uplink.delivered > 0,
            "summed counters must reflect real traffic: {:?}",
            report.uplink
        );
        // The sum reconciles with per-session resilience rollups.
        let mut expected = FaultTelemetry::default();
        for i in 0..3 {
            expected.absorb(&server.conversation_report(i).resilience);
        }
        assert_eq!(report.resilience, expected);
        let line = report.to_string();
        assert!(line.contains("serving 3 sessions"), "{line}");
        assert!(line.contains("6 turns"), "{line}");
        assert!(line.contains("% correct"), "{line}");
    }

    #[test]
    fn conversation_server_is_pool_size_independent() {
        let q = question();
        let collect = |pool_size: usize| {
            let mut server =
                ConversationChatServer::new(pool_size, 4, net_template(90), SimDuration::from_millis(300));
            for t in 0..2 {
                server.run_turns(&turn_window(t), &q);
            }
            (0..4).map(|i| server.conversation_report(i)).collect::<Vec<_>>()
        };
        let sequential = collect(1);
        assert_eq!(collect(2), sequential);
        assert_eq!(collect(8), sequential);
    }

    #[test]
    fn empty_networked_server_is_well_behaved() {
        let mut server = NetworkedChatServer::new(2, 0, net_template(1));
        server.run_turns(&window(), &question());
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.correct_fraction(), 0.0);
        assert_eq!(server.mean_probability_correct(), 0.0);
        assert_eq!(server.reports().count(), 0);
    }
}
