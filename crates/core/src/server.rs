//! [`ChatServer`] — the multi-session throughput engine.
//!
//! The paper's deployment story is not one user: a production AI-video-chat service runs
//! *many* concurrent conversations, and the ROADMAP's north star is serving heavy traffic
//! as fast as the hardware allows. [`ChatServer`] owns N independent [`ChatSession`]s and
//! runs each session's chat turn across a [`MiniPool`], one session per pool chunk, with a
//! **static** session→lane mapping (session `i` always executes on lane `i % lanes`):
//!
//! * **bit-identical results for any pool size** — a session's turn touches only the
//!   session's own state, so where it runs cannot change what it computes (proven by the
//!   pool-size-independence property tests);
//! * **allocation-free steady state** — every session owns its scratches, reports are
//!   plain values overwritten in place, and the pool dispatches without allocating, so
//!   post-warmup `run_turns` performs zero heap allocations (guarded by
//!   `crates/bench/tests/zero_alloc.rs`);
//! * **near-linear scaling** — sessions share nothing, so throughput scales with lanes up
//!   to the core count (the `pipeline_throughput_{1,8,64}_sessions` benchmarks).
//!
//! Sessions running on server lanes use the sequential stage paths internally — the pool
//! rejects nested parallel sections, and across-session parallelism already saturates the
//! cores at server scale (DESIGN.md §"Threading model").

use crate::conversation::{Conversation, ConversationReport};
use crate::net_session::{FaultTelemetry, NetSessionOptions, NetTurnReport, NetworkedChatSession};
use crate::net_turn::{NetEvent, NetEventSink, PacketRun, TurnPlan};
use crate::session::{ChatSession, PipelineTurnReport};
use aivc_metrics::SessionSnapshot;
use aivc_mllm::{Answer, Question};
use aivc_netsim::LinkCounters;
use aivc_par::MiniPool;
use aivc_scene::Frame;
use aivc_sim::{Actor, SimDuration, SimTime, Simulation};

/// Why a fleet of conversations was rejected at server admission
/// ([`ConversationChatServer::try_with_sessions`]). Lane shards merge member timelines
/// into one kernel, and that merge is only bit-identical to private timelines when every
/// member is fresh and shares the fleet's turn geometry — violations are structural
/// errors the caller can surface (rejecting one session, fixing its options) rather than
/// a process abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// Conversation `index` has already run (turns recorded or its clock moved): lane
    /// shards need fresh timelines so every member's phase boundaries coincide from
    /// turn zero.
    SessionNotFresh {
        /// Position of the offending conversation in the submitted fleet.
        index: usize,
    },
    /// Conversation `index` differs from the fleet's first member in turn geometry
    /// (think gap, capture fps or drain window): members of a shard must share their
    /// phase boundaries or the pool-size bit-identity contract is lost.
    MixedGeometry {
        /// Position of the offending conversation in the submitted fleet.
        index: usize,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::SessionNotFresh { index } => write!(
                f,
                "conversation {index} has already run: lane shards need fresh timelines"
            ),
            ServerError::MixedGeometry { index } => write!(
                f,
                "conversation {index} differs in turn geometry (think gap / fps / drain): \
                 lane shards need a uniform fleet"
            ),
        }
    }
}

impl std::error::Error for ServerError {}

/// A session type a server can pool: one long-lived object per user whose turn produces a
/// plain-value report carrying the MLLM's [`Answer`]. Both server variants share the
/// pooling machinery ([`SessionPool`]) through this trait.
trait TurnSession: Send + std::fmt::Debug {
    /// The per-turn report type, overwritten in place in the session's slot.
    type Report: Clone + Send + std::fmt::Debug;

    /// The all-zero report a slot starts from.
    fn placeholder_report() -> Self::Report;

    /// Runs one turn and returns its report.
    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> Self::Report;

    /// The answer inside a report (for the service-level quality aggregates).
    fn answer(report: &Self::Report) -> &Answer;
}

impl TurnSession for ChatSession {
    type Report = PipelineTurnReport;

    fn placeholder_report() -> PipelineTurnReport {
        PipelineTurnReport::placeholder()
    }

    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> PipelineTurnReport {
        self.run_turn(frames, question)
    }

    fn answer(report: &PipelineTurnReport) -> &Answer {
        &report.answer
    }
}

impl TurnSession for NetworkedChatSession {
    type Report = NetTurnReport;

    fn placeholder_report() -> NetTurnReport {
        NetTurnReport::placeholder()
    }

    fn turn_report(&mut self, frames: &[Frame], question: &Question) -> NetTurnReport {
        self.run_turn(frames, question)
    }

    fn answer(report: &NetTurnReport) -> &Answer {
        &report.answer
    }
}

/// One session slot: the long-lived session plus the in-place report of its latest turn.
#[derive(Debug)]
struct ServerSlot<S: TurnSession> {
    session: S,
    report: S::Report,
}

/// The shared engine behind both server variants: N independent sessions of one type,
/// spread across a [`MiniPool`] with the static session→lane mapping the module docs
/// describe. Private — the public surface is [`ChatServer`] and [`NetworkedChatServer`].
#[derive(Debug)]
struct SessionPool<S: TurnSession> {
    pool: MiniPool,
    slots: Vec<ServerSlot<S>>,
    /// Per-lane scratch handed to the pool — the sessions own all real state, so the
    /// lanes need none; sized to the lane count once.
    lane_units: Vec<()>,
}

impl<S: TurnSession> SessionPool<S> {
    fn with_sessions(pool: MiniPool, sessions: Vec<S>) -> Self {
        let lane_units = vec![(); pool.lanes()];
        Self {
            pool,
            slots: sessions
                .into_iter()
                .map(|session| ServerSlot {
                    session,
                    report: S::placeholder_report(),
                })
                .collect(),
            lane_units,
        }
    }

    fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        if self.slots.is_empty() {
            return;
        }
        let chunks = self.slots.len();
        self.pool
            .for_each_chunk(&mut self.slots, chunks, &mut self.lane_units, |_, slots, ()| {
                for slot in slots {
                    slot.report = slot.session.turn_report(frames, question);
                }
            });
    }

    fn reports(&self) -> impl Iterator<Item = &S::Report> {
        self.slots.iter().map(|slot| &slot.report)
    }

    fn correct_fraction(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.reports().filter(|r| S::answer(r).correct).count() as f64 / self.slots.len() as f64
    }

    fn mean_probability_correct(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.reports()
            .map(|r| S::answer(r).probability_correct)
            .sum::<f64>()
            / self.slots.len() as f64
    }
}

/// A pool of independent chat sessions executing turns in parallel. See the module docs.
#[derive(Debug)]
pub struct ChatServer {
    inner: SessionPool<ChatSession>,
}

impl ChatServer {
    /// Creates a server with `session_count` default sessions (seeds `base_seed + i`, so
    /// every session is an independent, reproducible conversation) on a pool of
    /// `pool_size` lanes.
    pub fn new(pool_size: usize, session_count: usize, base_seed: u64) -> Self {
        Self::with_sessions(
            MiniPool::new(pool_size),
            (0..session_count)
                .map(|i| ChatSession::with_defaults(base_seed.wrapping_add(i as u64)))
                .collect(),
        )
    }

    /// Creates a server from explicit sessions and a pool.
    pub fn with_sessions(pool: MiniPool, sessions: Vec<ChatSession>) -> Self {
        Self {
            inner: SessionPool::with_sessions(pool, sessions),
        }
    }

    /// Number of pool lanes turns are spread across.
    pub fn pool_size(&self) -> usize {
        self.inner.pool.lanes()
    }

    /// Number of sessions the server owns.
    pub fn session_count(&self) -> usize {
        self.inner.slots.len()
    }

    /// Runs one chat turn on **every** session — all users ask `question` about the same
    /// captured window — spreading sessions across the pool (session `i` on lane
    /// `i % lanes`, deterministically). Each session's report replaces its previous one in
    /// place; read them back with [`ChatServer::reports`] or [`ChatServer::report`].
    ///
    /// Per-session results are bit-identical to calling [`ChatSession::run_turn`] directly,
    /// for any pool size. After every session's warmup turn, the call performs no heap
    /// allocation.
    pub fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        self.inner.run_turns(frames, question);
    }

    /// The latest report of every session, in session order.
    pub fn reports(&self) -> impl Iterator<Item = &PipelineTurnReport> {
        self.inner.reports()
    }

    /// The latest report of session `index`.
    pub fn report(&self, index: usize) -> &PipelineTurnReport {
        &self.inner.slots[index].report
    }

    /// Fraction of the latest turn's answers that were correct — the service-level quality
    /// signal a deployment would watch.
    pub fn correct_fraction(&self) -> f64 {
        self.inner.correct_fraction()
    }
}

impl PipelineTurnReport {
    /// The all-zero report sessions start from (every field is overwritten by the first
    /// turn). Plain values only, so slot initialization and replacement never allocate.
    pub fn placeholder() -> Self {
        Self {
            answer: Answer::default(),
            frames_processed: 0,
            encoded_bytes: 0,
            packets: 0,
            mean_encoded_quality: 0.0,
        }
    }
}

/// The network-in-the-loop counterpart of [`ChatServer`]: N independent
/// [`NetworkedChatSession`]s — each with its own emulated path, congestion controller and
/// MLLM — executing turns across a [`MiniPool`] with the same static session→lane mapping.
///
/// A networked session's turn touches only the session's own state (its emulator is seeded
/// per session and recreated per turn), so, exactly as for [`ChatServer`], **results are
/// bit-identical for any pool size** and deterministic across runs — the property the
/// scenario engine's golden fixtures and the pool-sweep tests pin down.
#[derive(Debug)]
pub struct NetworkedChatServer {
    inner: SessionPool<NetworkedChatSession>,
}

impl NetworkedChatServer {
    /// Creates a server of `session_count` sessions sharing `template`'s network and ABR
    /// configuration, with per-session seeds `template.seed + i` (independent loss/jitter
    /// streams and answer draws per user) on a pool of `pool_size` lanes.
    pub fn new(pool_size: usize, session_count: usize, template: NetSessionOptions) -> Self {
        Self::with_sessions(
            MiniPool::new(pool_size),
            (0..session_count)
                .map(|i| {
                    let mut options = template.clone();
                    options.seed = template.seed.wrapping_add(i as u64);
                    NetworkedChatSession::with_defaults(options)
                })
                .collect(),
        )
    }

    /// Creates a server from explicit sessions and a pool.
    pub fn with_sessions(pool: MiniPool, sessions: Vec<NetworkedChatSession>) -> Self {
        Self {
            inner: SessionPool::with_sessions(pool, sessions),
        }
    }

    /// Number of pool lanes turns are spread across.
    pub fn pool_size(&self) -> usize {
        self.inner.pool.lanes()
    }

    /// Number of sessions the server owns.
    pub fn session_count(&self) -> usize {
        self.inner.slots.len()
    }

    /// Runs one networked chat turn on every session (session `i` on lane `i % lanes`).
    /// Per-session results are bit-identical to calling
    /// [`NetworkedChatSession::run_turn`] directly, for any pool size.
    pub fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        self.inner.run_turns(frames, question);
    }

    /// The latest report of every session, in session order.
    pub fn reports(&self) -> impl Iterator<Item = &NetTurnReport> {
        self.inner.reports()
    }

    /// The latest report of session `index`.
    pub fn report(&self, index: usize) -> &NetTurnReport {
        &self.inner.slots[index].report
    }

    /// Fraction of the latest turn's answers that were correct.
    pub fn correct_fraction(&self) -> f64 {
        self.inner.correct_fraction()
    }

    /// Mean model-assigned probability of a correct answer across sessions.
    pub fn mean_probability_correct(&self) -> f64 {
        self.inner.mean_probability_correct()
    }
}

/// One conversation pinned to a lane shard: the long-lived session plus the in-place
/// report of its latest turn.
#[derive(Debug)]
struct ConversationSlot {
    session: Conversation,
    report: NetTurnReport,
}

/// An event on a shard's kernel: a member conversation's transport event, tagged with the
/// member's position in the shard (the dslab actor-tagging pattern, same as the
/// multi-tenant contention engine's `MtEvent::Net`).
#[derive(Debug)]
struct LaneEvent {
    member: u32,
    inner: NetEvent,
}

/// Tags a member's [`NetEvent`]s on their way into the shard kernel.
struct LaneSink<'a> {
    member: u32,
    sim: &'a mut Simulation<LaneEvent>,
}

impl NetEventSink for LaneSink<'_> {
    fn schedule_net(&mut self, when: SimTime, event: NetEvent) {
        self.sim.schedule_at(
            when,
            LaneEvent {
                member: self.member,
                inner: event,
            },
        );
    }

    fn schedule_net_run(&mut self, when: SimTime, mut run: PacketRun) {
        // The run's seq lives on the *shard* timeline — the wrapped event's insertion seq.
        run.seq = self.sim.next_seq();
        self.sim.schedule_at(
            when,
            LaneEvent {
                member: self.member,
                inner: NetEvent::UplinkRun(run),
            },
        );
    }

    fn reschedule_net_run(&mut self, when: SimTime, run: PacketRun) {
        self.sim.schedule_at_with_seq(
            when,
            run.seq,
            LaneEvent {
                member: self.member,
                inner: NetEvent::UplinkRun(run),
            },
        );
    }
}

/// The per-event dispatcher over a shard's members. During a turn drain every member has
/// a plan (its live window geometry); during a think drain `plans` is empty and events
/// are deliveries/polls/feedback only.
struct ShardActor<'a> {
    members: &'a mut [ConversationSlot],
    plans: &'a [TurnPlan],
    frames: &'a [Frame],
}

impl Actor for ShardActor<'_> {
    type Event = LaneEvent;

    fn on_event(&mut self, now: SimTime, event: LaneEvent, sim: &mut Simulation<LaneEvent>) {
        let m = event.member as usize;
        let live = self.plans.get(m).map(|plan| (self.frames, plan.window));
        self.members[m].session.handle_net(
            now,
            event.inner,
            live,
            &mut LaneSink {
                member: event.member,
                sim,
            },
        );
    }
}

/// One lane's shard: **one** `aivc-sim` kernel shared by every conversation pinned to the
/// lane, instead of one kernel per conversation. Sessions on a shard are mutually
/// independent — their events are member-tagged and never interact — so sharing the
/// event queue changes *which heap* an event pops from, never what any session computes:
/// restricted to one member, the (time, insertion-order) pop order on the shared kernel
/// is exactly the pop order on a private one. That is the induction behind the
/// bit-identical-for-any-pool-size contract, and it requires the uniform turn geometry
/// [`ConversationChatServer::with_sessions`] asserts (same think gap, capture fps and
/// drain window, so every member's phase boundaries coincide).
#[derive(Debug)]
struct ConversationShard {
    sim: Simulation<LaneEvent>,
    members: Vec<ConversationSlot>,
    /// Reusable per-turn plan buffer (capacity retained across turns).
    plans: Vec<TurnPlan>,
}

impl ConversationShard {
    fn new() -> Self {
        Self {
            sim: Simulation::new(),
            members: Vec::new(),
            plans: Vec::new(),
        }
    }

    /// Advances every member by one turn on the shared kernel: think-drain, open every
    /// member's window, drain to the common horizon, conclude in member order.
    fn run_turn(&mut self, frames: &[Frame], question: &Question) {
        if self.members.is_empty() {
            return;
        }
        // Think gap (uniform across members, asserted at construction): in-flight
        // packets arrive, polls fire, retransmissions flow — no captures pending.
        let think = self.members[0].session.think_gap();
        if self.members[0].session.turn_count() > 0 && think > SimDuration::ZERO {
            let horizon = self.sim.now() + think;
            let mut actor = ShardActor {
                members: &mut self.members,
                plans: &[],
                frames: &[],
            };
            self.sim.run_until(horizon, &mut actor);
        }
        // Open every member's turn window at the common start time.
        let now = self.sim.now();
        self.plans.clear();
        for (m, slot) in self.members.iter_mut().enumerate() {
            let plan = slot.session.begin_turn_on(
                now,
                &mut LaneSink {
                    member: m as u32,
                    sim: &mut self.sim,
                },
                frames.len(),
                question,
            );
            self.plans.push(plan);
        }
        // Uniform geometry ⇒ one shared answer deadline.
        let horizon = self.plans[0].horizon;
        debug_assert!(
            self.plans.iter().all(|p| p.horizon == horizon),
            "lane members must share the turn horizon"
        );
        let mut actor = ShardActor {
            members: &mut self.members,
            plans: &self.plans,
            frames,
        };
        self.sim.run_until(horizon, &mut actor);
        // Conclude in member order (pure per-member state reads — order-independent).
        for (m, slot) in self.members.iter_mut().enumerate() {
            let report = slot
                .session
                .conclude_turn_on(&self.plans[m], frames.len(), question);
            slot.report.clone_from(report);
        }
    }
}

/// The conversational counterpart of [`NetworkedChatServer`]: N independent long-lived
/// [`Conversation`]s — each with its own persistent transport, congestion controller,
/// in-flight packet set and think-time rhythm — executing turns across a [`MiniPool`]
/// with the same static session→lane mapping.
///
/// Unlike the other servers, conversations here do **not** each own a private event
/// kernel: every lane runs *one* shared `aivc-sim` kernel ([`ConversationShard`]) that
/// multiplexes all of its pinned sessions' events — tens of thousands of sessions cost
/// lane-many kernels, not session-many. Session `i` is pinned to lane `i % lanes` (as
/// everywhere else) and sits at shard position `i / lanes`, so reports merge back into
/// global session order deterministically.
///
/// Each call to [`ConversationChatServer::run_turns`] advances *every* conversation by
/// one turn on its timeline (turn `k + 1` starts where turn `k`'s deadline left the
/// clock, plus the common think gap). Member events are tagged and never interact, so
/// **results are bit-identical for any pool size** and deterministic across runs —
/// property-tested at pool sizes 1/2/8.
#[derive(Debug)]
pub struct ConversationChatServer {
    pool: MiniPool,
    shards: Vec<ConversationShard>,
    /// Per-lane scratch handed to the pool — the shards own all real state.
    lane_units: Vec<()>,
    sessions: usize,
}

impl ConversationChatServer {
    /// Creates a server of `session_count` conversations sharing `template`'s network and
    /// ABR configuration, with per-session seeds `template.seed + i` and a common
    /// `think_gap`, on a pool of `pool_size` lanes.
    pub fn new(
        pool_size: usize,
        session_count: usize,
        template: NetSessionOptions,
        think_gap: SimDuration,
    ) -> Self {
        Self::with_sessions(
            MiniPool::new(pool_size),
            (0..session_count)
                .map(|i| {
                    let mut options = template.clone();
                    options.seed = template.seed.wrapping_add(i as u64);
                    Conversation::with_defaults(options, think_gap)
                })
                .collect(),
        )
    }

    /// Creates a server from explicit conversations and a pool.
    ///
    /// # Panics
    ///
    /// Panics on the fleet-admission errors [`ConversationChatServer::try_with_sessions`]
    /// reports structurally — a convenience for callers constructing fleets from uniform
    /// templates, where admission cannot fail.
    pub fn with_sessions(pool: MiniPool, sessions: Vec<Conversation>) -> Self {
        match Self::try_with_sessions(pool, sessions) {
            Ok(server) => server,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a server from explicit conversations and a pool, validating fleet
    /// admission.
    ///
    /// The lane-sharded kernels require every conversation to be fresh (no turns run, the
    /// clock at zero) and the fleet's turn geometry to be uniform — same think gap,
    /// capture fps and drain window — so that all members of a shard share their phase
    /// boundaries. Mixed-geometry fleets would interleave correctly but lose the
    /// bit-identity contract, so they are rejected with [`ServerError::MixedGeometry`]
    /// (or [`ServerError::SessionNotFresh`]) instead of being silently admitted.
    pub fn try_with_sessions(pool: MiniPool, sessions: Vec<Conversation>) -> Result<Self, ServerError> {
        if let Some(first) = sessions.first() {
            for (i, s) in sessions.iter().enumerate() {
                if s.turn_count() != 0 || s.now() != SimTime::ZERO {
                    return Err(ServerError::SessionNotFresh { index: i });
                }
                if s.think_gap() != first.think_gap()
                    || s.options().capture_fps != first.options().capture_fps
                    || s.options().drain_secs != first.options().drain_secs
                {
                    return Err(ServerError::MixedGeometry { index: i });
                }
            }
        }
        Ok(Self::admit_sessions(pool, sessions))
    }

    /// Shards validated sessions across the pool's lanes.
    fn admit_sessions(pool: MiniPool, sessions: Vec<Conversation>) -> Self {
        let lanes = pool.lanes();
        let mut shards: Vec<ConversationShard> = (0..lanes).map(|_| ConversationShard::new()).collect();
        let sessions_count = sessions.len();
        for (i, session) in sessions.into_iter().enumerate() {
            shards[i % lanes].members.push(ConversationSlot {
                session,
                report: NetTurnReport::placeholder(),
            });
        }
        Self {
            lane_units: vec![(); lanes],
            pool,
            shards,
            sessions: sessions_count,
        }
    }

    /// Number of pool lanes turns are spread across (= lane shards / kernels).
    pub fn pool_size(&self) -> usize {
        self.pool.lanes()
    }

    /// Number of conversations the server owns.
    pub fn session_count(&self) -> usize {
        self.sessions
    }

    /// The slot of global session `index` (lane `index % lanes`, position
    /// `index / lanes` — the static pinning, inverted).
    fn slot(&self, index: usize) -> &ConversationSlot {
        let lanes = self.pool.lanes();
        &self.shards[index % lanes].members[index / lanes]
    }

    fn slots(&self) -> impl Iterator<Item = &ConversationSlot> {
        (0..self.sessions).map(|i| self.slot(i))
    }

    /// Advances every conversation by one turn — each lane's kernel drains all of its
    /// pinned sessions' events in one merged chronological pass. Per-session results are
    /// bit-identical to calling [`Conversation::run_turn`] directly, for any pool size.
    pub fn run_turns(&mut self, frames: &[Frame], question: &Question) {
        if self.sessions == 0 {
            return;
        }
        let chunks = self.shards.len();
        self.pool
            .for_each_chunk(&mut self.shards, chunks, &mut self.lane_units, |_, shards, ()| {
                for shard in shards {
                    shard.run_turn(frames, question);
                }
            });
    }

    /// Pre-grows every conversation's history vectors (see
    /// [`Conversation::reserve_turns`]) so warmed steady-state turns never reallocate.
    pub fn reserve_turns(&mut self, additional_turns: usize, frames_per_turn: usize) {
        for shard in &mut self.shards {
            shard.plans.reserve(shard.members.len());
            for slot in &mut shard.members {
                slot.session.reserve_turns(additional_turns, frames_per_turn);
            }
        }
    }

    /// The latest per-turn report of every conversation, in session order.
    pub fn reports(&self) -> impl Iterator<Item = &NetTurnReport> {
        self.slots().map(|slot| &slot.report)
    }

    /// The latest per-turn report of conversation `index`.
    pub fn report(&self, index: usize) -> &NetTurnReport {
        &self.slot(index).report
    }

    /// The full cross-turn report of conversation `index`.
    pub fn conversation_report(&self, index: usize) -> ConversationReport {
        self.slot(index).session.report()
    }

    /// A point-in-time reading of conversation `index`'s always-on counters.
    pub fn metrics_snapshot(&self, index: usize) -> SessionSnapshot {
        self.slot(index).session.metrics_snapshot()
    }

    /// The whole fleet's always-on counters, summed across sessions. Relaxed-atomic
    /// reads plus plain adds — entirely off the turn hot path.
    pub fn fleet_metrics(&self) -> SessionSnapshot {
        let mut total = SessionSnapshot::default();
        for slot in self.slots() {
            total.accumulate(&slot.session.metrics_snapshot());
        }
        total
    }

    /// Fraction of the latest turn's answers that were correct.
    pub fn correct_fraction(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        self.reports().filter(|r| r.answer.correct).count() as f64 / self.sessions as f64
    }

    /// Mean model-assigned probability of a correct answer across conversations.
    pub fn mean_probability_correct(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        self.reports().map(|r| r.answer.probability_correct).sum::<f64>() / self.sessions as f64
    }

    /// One fleet-level serving snapshot: session and turn counts, every conversation's
    /// uplink [`LinkCounters`] summed, the fault telemetry rolled up across sessions, the
    /// always-on counter rollup and the latest turn's answer quality. Assembled from
    /// per-session snapshots the transports already keep — the turn hot path pays
    /// nothing for it.
    pub fn serving_report(&self) -> ServingReport {
        let mut uplink = LinkCounters::default();
        let mut resilience = FaultTelemetry::default();
        let mut counters = SessionSnapshot::default();
        let mut turns_completed = 0;
        for slot in self.slots() {
            let session = &slot.session;
            turns_completed += session.turn_count();
            let c = session.link_counters();
            uplink.offered += c.offered;
            uplink.delivered += c.delivered;
            uplink.delivered_bytes += c.delivered_bytes;
            uplink.dropped_queue += c.dropped_queue;
            uplink.lost_random += c.lost_random;
            uplink.duplicated += c.duplicated;
            uplink.reordered += c.reordered;
            uplink.outage_drops += c.outage_drops;
            resilience.absorb(&session.fault_telemetry());
            counters.accumulate(&session.metrics_snapshot());
        }
        ServingReport {
            sessions: self.session_count(),
            turns_completed,
            uplink,
            resilience,
            counters,
            correct_fraction: self.correct_fraction(),
        }
    }
}

/// A fleet-level snapshot of a [`ConversationChatServer`]: what operations would put on
/// one dashboard line. [`std::fmt::Display`] renders exactly that line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Conversations the server owns.
    pub sessions: usize,
    /// Turns completed across all conversations.
    pub turns_completed: usize,
    /// Sum of every conversation's uplink counters.
    pub uplink: LinkCounters,
    /// Fault telemetry rolled up across conversations (first finite recovery wins).
    pub resilience: FaultTelemetry,
    /// Always-on counter rollup: every session's [`SessionSnapshot`] summed.
    pub counters: SessionSnapshot,
    /// Fraction of the latest turn's answers that were correct.
    pub correct_fraction: f64,
}

impl ServingReport {
    /// Percentage of the latest turn's answers that were correct, or `None` on an empty
    /// fleet / before any turn ran — a 0-session server has no answer quality, and
    /// rendering it as `0%` (or `NaN%`) would misreport "no data" as "all wrong".
    pub fn percent_correct(&self) -> Option<f64> {
        (self.turns_completed > 0).then_some(self.correct_fraction * 100.0)
    }

    /// Mean uplink packets lost per completed turn, or `None` before any turn ran.
    pub fn packets_lost_per_turn(&self) -> Option<f64> {
        (self.turns_completed > 0).then(|| self.counters.packets_lost as f64 / self.turns_completed as f64)
    }

    /// Mean retransmissions per completed turn, or `None` before any turn ran.
    pub fn retransmissions_per_turn(&self) -> Option<f64> {
        (self.turns_completed > 0)
            .then(|| self.counters.retransmissions_sent as f64 / self.turns_completed as f64)
    }

    /// Mean turns completed per session, or `None` on an empty fleet.
    pub fn turns_per_session(&self) -> Option<f64> {
        (self.sessions > 0).then(|| self.turns_completed as f64 / self.sessions as f64)
    }
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serving {} sessions | {} turns | uplink {}/{} pkts ({} B, {} queue-drop, {} lost, {} outage-drop) | \
             {} fallbacks, {} shed, ttr {} | {} correct",
            self.sessions,
            self.turns_completed,
            self.uplink.delivered,
            self.uplink.offered,
            self.uplink.delivered_bytes,
            self.uplink.dropped_queue,
            self.uplink.lost_random,
            self.uplink.outage_drops,
            self.resilience.watchdog_fallbacks,
            self.resilience.frames_shed,
            match self.resilience.time_to_recover_ms {
                Some(ms) => format!("{ms:.0} ms"),
                None => "-".to_string(),
            },
            // An empty fleet renders "-%" instead of a number: see `percent_correct`.
            match self.percent_correct() {
                Some(pct) => format!("{pct:.0}%"),
                None => "-%".to_string(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn window() -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        (0..4).map(|i| source.frame(i * 15)).collect()
    }

    fn question() -> Question {
        Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::FreeResponse)
    }

    #[test]
    fn server_reports_match_standalone_sessions() {
        let frames = window();
        let q = question();
        let mut server = ChatServer::new(4, 6, 100);
        server.run_turns(&frames, &q);
        for i in 0..6 {
            let mut standalone = ChatSession::with_defaults(100 + i as u64);
            let expected = standalone.run_turn(&frames, &q);
            assert_eq!(server.report(i), &expected, "session {i}");
        }
    }

    #[test]
    fn results_are_independent_of_pool_size() {
        let frames = window();
        let q = question();
        let collect = |pool_size: usize| {
            let mut server = ChatServer::new(pool_size, 5, 7);
            // Two turns: the second exercises the warm, allocation-free steady state.
            server.run_turns(&frames, &q);
            server.run_turns(&frames, &q);
            server.reports().cloned().collect::<Vec<_>>()
        };
        let sequential = collect(1);
        assert_eq!(collect(2), sequential);
        assert_eq!(collect(8), sequential);
    }

    #[test]
    fn server_turns_are_deterministic_across_runs() {
        let frames = window();
        let q = question();
        let run = || {
            let mut server = ChatServer::new(2, 8, 42);
            server.run_turns(&frames, &q);
            server.reports().cloned().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // All sessions saw the same evidence, so aggregate quality is high.
        let mut server = ChatServer::new(2, 8, 42);
        server.run_turns(&frames, &q);
        assert!(server.correct_fraction() > 0.5);
        assert_eq!(server.session_count(), 8);
        assert_eq!(server.pool_size(), 2);
    }

    #[test]
    fn empty_server_and_empty_reports_are_well_behaved() {
        let mut server = ChatServer::new(2, 0, 1);
        server.run_turns(&window(), &question());
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.correct_fraction(), 0.0);
        assert_eq!(server.reports().count(), 0);
    }

    #[test]
    fn more_sessions_than_lanes_all_get_served() {
        let frames = window();
        let q = question();
        let mut server = ChatServer::new(3, 11, 9);
        server.run_turns(&frames, &q);
        assert!(server.reports().all(|r| r.frames_processed == frames.len()));
    }

    fn net_template(seed: u64) -> NetSessionOptions {
        let mut options =
            NetSessionOptions::ai_oriented(seed, aivc_netsim::PathConfig::paper_section_2_2(0.01));
        options.capture_fps = 8.0;
        options
    }

    #[test]
    fn networked_server_reports_match_standalone_sessions() {
        let frames = window();
        let q = question();
        let mut server = NetworkedChatServer::new(2, 3, net_template(40));
        server.run_turns(&frames, &q);
        for i in 0..3 {
            let mut options = net_template(40);
            options.seed += i as u64;
            let mut standalone = NetworkedChatSession::with_defaults(options);
            assert_eq!(server.report(i), &standalone.run_turn(&frames, &q), "session {i}");
        }
        assert_eq!(server.session_count(), 3);
        assert_eq!(server.pool_size(), 2);
        assert!(server.mean_probability_correct() > 0.5);
    }

    #[test]
    fn conversation_server_matches_standalone_conversations_across_turns() {
        let q = question();
        let think = SimDuration::from_millis(600);
        let mut server = ConversationChatServer::new(2, 3, net_template(70), think);
        for t in 0..3 {
            server.run_turns(&turn_window(t), &q);
        }
        for i in 0..3 {
            let mut options = net_template(70);
            options.seed += i as u64;
            let mut standalone = Conversation::with_defaults(options, think);
            for t in 0..3 {
                standalone.run_turn(&turn_window(t), &q);
            }
            assert_eq!(
                server.conversation_report(i),
                standalone.report(),
                "conversation {i}"
            );
        }
        assert!(server.mean_probability_correct() > 0.5);
    }

    fn turn_window(turn: usize) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
        (0..4)
            .map(|i| source.frame(((turn * 4 + i) * 11 % 170) as u64))
            .collect()
    }

    #[test]
    fn serving_report_rolls_the_fleet_into_one_line() {
        let q = question();
        let think = SimDuration::from_millis(400);
        let mut server = ConversationChatServer::new(2, 3, net_template(80), think);
        for t in 0..2 {
            server.run_turns(&turn_window(t), &q);
        }
        let report = server.serving_report();
        assert_eq!(report.sessions, 3);
        assert_eq!(report.turns_completed, 6);
        assert!(
            report.uplink.offered >= report.uplink.delivered && report.uplink.delivered > 0,
            "summed counters must reflect real traffic: {:?}",
            report.uplink
        );
        // The sum reconciles with per-session resilience rollups.
        let mut expected = FaultTelemetry::default();
        for i in 0..3 {
            expected.absorb(&server.conversation_report(i).resilience);
        }
        assert_eq!(report.resilience, expected);
        let line = report.to_string();
        assert!(line.contains("serving 3 sessions"), "{line}");
        assert!(line.contains("6 turns"), "{line}");
        assert!(line.contains("% correct"), "{line}");
    }

    #[test]
    fn conversation_server_is_pool_size_independent() {
        let q = question();
        let collect = |pool_size: usize| {
            let mut server =
                ConversationChatServer::new(pool_size, 4, net_template(90), SimDuration::from_millis(300));
            for t in 0..2 {
                server.run_turns(&turn_window(t), &q);
            }
            (0..4).map(|i| server.conversation_report(i)).collect::<Vec<_>>()
        };
        let sequential = collect(1);
        assert_eq!(collect(2), sequential);
        assert_eq!(collect(8), sequential);
    }

    #[test]
    fn empty_networked_server_is_well_behaved() {
        let mut server = NetworkedChatServer::new(2, 0, net_template(1));
        server.run_turns(&window(), &question());
        assert_eq!(server.session_count(), 0);
        assert_eq!(server.correct_fraction(), 0.0);
        assert_eq!(server.mean_probability_correct(), 0.0);
        assert_eq!(server.reports().count(), 0);
    }

    /// The always-on counter rollup reconciles *exactly* with per-session report sums —
    /// at every pool size. Turn-committed counters are batch-added at turn conclusion
    /// from the same numbers the `NetTurnReport` carries, so any drift here means an
    /// event site double-counts or a commit was skipped.
    #[test]
    fn fleet_metrics_reconcile_with_report_sums_at_any_pool_size() {
        let q = question();
        for pool_size in [1usize, 2, 8] {
            let mut server =
                ConversationChatServer::new(pool_size, 5, net_template(60), SimDuration::from_millis(350));
            for t in 0..3 {
                server.run_turns(&turn_window(t), &q);
            }
            let mut fleet = SessionSnapshot::default();
            for i in 0..5 {
                let snap = server.metrics_snapshot(i);
                let report = server.conversation_report(i);
                let sum = |f: fn(&NetTurnReport) -> u64| report.turns.iter().map(f).sum::<u64>();
                assert_eq!(
                    snap.frames_sent,
                    sum(|t| t.frames_sent as u64),
                    "pool {pool_size} session {i}"
                );
                assert_eq!(snap.frames_delivered, sum(|t| t.frames_delivered as u64));
                assert_eq!(snap.fec_recovered_frames, sum(|t| t.fec_recovered_frames));
                assert_eq!(snap.packets_lost, sum(|t| t.packets_lost));
                assert_eq!(snap.retransmissions_sent, sum(|t| t.retransmissions_sent));
                assert_eq!(snap.frames_shed, report.resilience.frames_shed);
                assert_eq!(snap.captures_suppressed, report.resilience.captures_suppressed);
                assert_eq!(snap.watchdog_fallbacks, report.resilience.watchdog_fallbacks);
                fleet.accumulate(&snap);
            }
            assert_eq!(server.fleet_metrics(), fleet, "pool {pool_size}");
            assert_eq!(server.serving_report().counters, fleet, "pool {pool_size}");
        }
    }

    /// An empty fleet (or one that has not run a turn) has *no* answer quality: the
    /// report must say "no data", not render `NaN%` or claim `0%` correct.
    #[test]
    fn empty_fleet_serving_report_renders_without_dividing_by_zero() {
        let server = ConversationChatServer::new(2, 0, net_template(1), SimDuration::from_millis(100));
        let report = server.serving_report();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.turns_completed, 0);
        assert_eq!(report.percent_correct(), None);
        assert_eq!(report.packets_lost_per_turn(), None);
        assert_eq!(report.retransmissions_per_turn(), None);
        assert_eq!(report.turns_per_session(), None);
        let line = report.to_string();
        assert!(line.contains("serving 0 sessions"), "{line}");
        assert!(line.contains("-% correct"), "{line}");
        assert!(!line.contains("NaN"), "{line}");
    }

    /// Mixed-geometry fleets would silently break the shared-kernel bit-identity
    /// contract, so construction rejects them loudly.
    #[test]
    #[should_panic(expected = "uniform fleet")]
    fn sharded_server_rejects_mixed_turn_geometry() {
        let a = Conversation::with_defaults(net_template(5), SimDuration::from_millis(100));
        let mut other = net_template(6);
        other.capture_fps = 12.0;
        let b = Conversation::with_defaults(other, SimDuration::from_millis(100));
        let _ = ConversationChatServer::with_sessions(MiniPool::new(2), vec![a, b]);
    }

    /// The fallible constructor reports fleet-admission violations structurally —
    /// naming the offending session — so a caller can reject or fix one conversation
    /// instead of aborting the process.
    #[test]
    fn try_with_sessions_reports_the_offending_session() {
        // Geometry mismatch in any of the three fields names the divergent member.
        let a = Conversation::with_defaults(net_template(5), SimDuration::from_millis(100));
        let b = Conversation::with_defaults(net_template(6), SimDuration::from_millis(250));
        let err = ConversationChatServer::try_with_sessions(MiniPool::new(2), vec![a, b])
            .expect_err("mixed think gaps must be rejected");
        assert_eq!(err, ServerError::MixedGeometry { index: 1 });
        assert!(err.to_string().contains("uniform fleet"), "{err}");

        let a = Conversation::with_defaults(net_template(5), SimDuration::from_millis(100));
        let mut other = net_template(6);
        other.drain_secs = 9.0;
        let c = Conversation::with_defaults(other, SimDuration::from_millis(100));
        let err = ConversationChatServer::try_with_sessions(MiniPool::new(2), vec![a, c])
            .expect_err("mixed drain windows must be rejected");
        assert_eq!(err, ServerError::MixedGeometry { index: 1 });

        // A conversation that has already run carries history the shared kernel
        // cannot replay; admission rejects it as not fresh.
        let mut used = Conversation::with_defaults(net_template(5), SimDuration::from_millis(100));
        used.run_turn(&window(), &question());
        let fresh = Conversation::with_defaults(net_template(5), SimDuration::from_millis(100));
        let err = ConversationChatServer::try_with_sessions(MiniPool::new(2), vec![fresh, used])
            .expect_err("a used conversation must be rejected");
        assert_eq!(err, ServerError::SessionNotFresh { index: 1 });
        assert!(err.to_string().contains("fresh timelines"), "{err}");

        // A uniform, fresh fleet is admitted and shards as before.
        let fleet = (0..4)
            .map(|i| Conversation::with_defaults(net_template(i), SimDuration::from_millis(100)))
            .collect();
        let server = ConversationChatServer::try_with_sessions(MiniPool::new(2), fleet)
            .expect("uniform fresh fleet admits");
        assert_eq!(server.session_count(), 4);
        assert_eq!(server.pool_size(), 2);
    }
}
