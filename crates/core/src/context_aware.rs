//! Context-Aware Video Streaming (§3.2): user words → CLIP correlation → Eq. 2 QP map →
//! ROI encode, at a bitrate matched to the baseline.
//!
//! The streamer reproduces the paper's procedure:
//!
//! 1. run (Mobile-)CLIP over the latest frame and the current user words to get the
//!    per-patch semantic correlation ρ_mn (Eq. 1);
//! 2. map ρ_mn to per-CTU QPs with Eq. 2 (γ = 3);
//! 3. encode with region-wise QP control;
//! 4. because the raw Eq. 2 map lands at whatever bitrate it lands at, apply a uniform QP
//!    *offset* found by trial and error so the actual bitrate matches the experiment's
//!    target (this is the paper's footnote about matching ours and baseline bitrates).

use crate::allocator::{QpAllocator, QpAllocatorConfig};
use aivc_mllm::Question;
use aivc_scene::{Frame, VideoSource};
use aivc_semantics::{ClipModel, ClipScratch, ImportanceMap, TextQuery};
use aivc_videocodec::{DecodedFrame, Decoder, EncodedFrame, Encoder, EncoderConfig, QpMap};
use serde::{Deserialize, Serialize};

/// Configuration of the context-aware streamer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamerConfig {
    /// Eq. 2 allocation parameters.
    pub allocator: QpAllocatorConfig,
    /// Encoder settings (CTU size, GOP, preset).
    pub encoder: EncoderConfig,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        Self {
            allocator: QpAllocatorConfig::paper(),
            encoder: EncoderConfig::default(),
        }
    }
}

/// Result of a context-aware encode of a set of frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextAwareEncode {
    /// The QP offset applied on top of the Eq. 2 map to match the target bitrate.
    pub qp_offset: i32,
    /// Achieved mean bitrate in bits per second.
    pub achieved_bitrate_bps: f64,
    /// The encoded frames.
    pub encoded: Vec<EncodedFrame>,
}

/// The context-aware streamer.
#[derive(Debug, Clone)]
pub struct ContextAwareStreamer {
    config: StreamerConfig,
    clip_model: ClipModel,
    allocator: QpAllocator,
    encoder: Encoder,
    decoder: Decoder,
}

impl Default for ContextAwareStreamer {
    fn default() -> Self {
        Self::new(StreamerConfig::default(), ClipModel::mobile_default())
    }
}

impl ContextAwareStreamer {
    /// Creates a streamer.
    pub fn new(config: StreamerConfig, clip_model: ClipModel) -> Self {
        Self {
            allocator: QpAllocator::new(config.allocator),
            encoder: Encoder::new(config.encoder),
            decoder: Decoder::new(),
            clip_model,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> StreamerConfig {
        self.config
    }

    /// The underlying encoder (shared with the baseline for fairness).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The CLIP model in use.
    pub fn clip_model(&self) -> &ClipModel {
        &self.clip_model
    }

    /// Builds the text query for a question (explicit query concepts merged with the words).
    pub fn query_for_question(&self, question: &Question) -> TextQuery {
        TextQuery::from_words_and_concepts(
            &question.text,
            self.clip_model.ontology(),
            question.query_concepts.iter().cloned(),
        )
    }

    /// Step 1: the Eq. 1 correlation map for a frame and user words.
    pub fn correlation_map(&self, frame: &Frame, query: &TextQuery) -> ImportanceMap {
        self.clip_model.correlation_map(frame, query)
    }

    /// Steps 1–2: the CLIP-informed QP map for a frame (the Figure 10(c) artifact).
    pub fn qp_map_for(&self, frame: &Frame, query: &TextQuery) -> QpMap {
        let importance = self.correlation_map(frame, query);
        self.allocator.allocate(&importance, self.encoder.grid_for(frame))
    }

    /// [`ContextAwareStreamer::qp_map_for`] with caller-owned CLIP scratch, so multi-frame
    /// turns encode the text query once and run the patch loop allocation-free.
    pub fn qp_map_for_with(&self, frame: &Frame, query: &TextQuery, scratch: &mut ClipScratch) -> QpMap {
        let importance = self.clip_model.correlation_map_with(frame, query, scratch);
        self.allocator.allocate(importance, self.encoder.grid_for(frame))
    }

    /// Encodes one frame with the CLIP-informed QP map (no bitrate matching).
    pub fn encode_frame(&self, frame: &Frame, query: &TextQuery) -> EncodedFrame {
        let qp_map = self.qp_map_for(frame, query);
        self.encoder.encode_with_qp_map(frame, &qp_map)
    }

    /// Encodes `frames` so the actual mean bitrate matches `target_bitrate_bps`, by finding
    /// a uniform QP offset on top of the per-frame Eq. 2 maps (trial and error, §3.2).
    pub fn encode_at_bitrate(
        &self,
        frames: &[Frame],
        query: &TextQuery,
        fps: f64,
        target_bitrate_bps: f64,
    ) -> ContextAwareEncode {
        assert!(!frames.is_empty());
        // One scratch across the turn: the query is encoded exactly once, the per-patch
        // CLIP loop reuses its buffers from the second frame on, and consecutive frames
        // recompute only the patches object motion dirtied (bit-identical to the full
        // recompute — see the `correlation_map_coherent` equivalence tests).
        let mut clip_scratch = ClipScratch::new();
        let maps: Vec<QpMap> = frames
            .iter()
            .map(|f| {
                let importance = self
                    .clip_model
                    .correlation_map_coherent(f, query, &mut clip_scratch);
                self.allocator.allocate(importance, self.encoder.grid_for(f))
            })
            .collect();
        // Binary search the offset (bits are monotone decreasing in the offset).
        let measure = |offset: i32| -> Vec<EncodedFrame> {
            frames
                .iter()
                .zip(&maps)
                .map(|(f, m)| self.encoder.encode_with_qp_map(f, &m.offset_all(offset)))
                .collect()
        };
        let rate_of = |encoded: &[EncodedFrame]| -> f64 {
            encoded.iter().map(|e| e.total_bits()).sum::<u64>() as f64 / encoded.len() as f64 * fps
        };
        let mut lo = -51i32;
        let mut hi = 51i32;
        let mut best_offset = 0i32;
        let mut best_encoded = measure(0);
        let mut best_rate = rate_of(&best_encoded);
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let encoded = measure(mid);
            let rate = rate_of(&encoded);
            if (rate - target_bitrate_bps).abs() < (best_rate - target_bitrate_bps).abs() {
                best_offset = mid;
                best_rate = rate;
                best_encoded = encoded;
            }
            if rate > target_bitrate_bps {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        ContextAwareEncode {
            qp_offset: best_offset,
            achieved_bitrate_bps: best_rate,
            encoded: best_encoded,
        }
    }

    /// Offline convenience mirroring [`crate::baseline::ContextAgnosticBaseline::offline_decode`]:
    /// sample, encode at a matched bitrate, decode losslessly.
    pub fn offline_decode(
        &self,
        source: &VideoSource,
        question: &Question,
        target_bitrate_bps: f64,
        max_frames: usize,
    ) -> (Vec<DecodedFrame>, ContextAwareEncode) {
        let frames = crate::baseline::sample_frames(source, max_frames);
        let query = self.query_for_question(question);
        let encode = self.encode_at_bitrate(&frames, &query, source.config().fps, target_bitrate_bps);
        let decoded = encode
            .encoded
            .iter()
            .map(|e| self.decoder.decode_complete(e, None))
            .collect();
        (decoded, encode)
    }

    /// The per-turn client-side compute latency added by the CLIP pass, in microseconds
    /// (the paper's "client-side computation" discussion).
    pub fn clip_latency_us(&self, width: u32, height: u32) -> u64 {
        self.clip_model.inference_latency_us(width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{sample_frames, ContextAgnosticBaseline};
    use aivc_mllm::QuestionFormat;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::SourceConfig;

    fn source() -> VideoSource {
        VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0))
    }

    fn logo_question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    #[test]
    fn qp_map_is_low_on_evidence_and_high_on_background() {
        let streamer = ContextAwareStreamer::default();
        let frame = source().frame(0);
        let question = logo_question();
        let query = streamer.query_for_question(&question);
        let qp_map = streamer.qp_map_for(&frame, &query);
        let grid = streamer.encoder().grid_for(&frame);
        // The jersey-logo evidence region (object 3) sits around (880, 420, 90, 60).
        let logo_cell = (420 / 64, 880 / 64);
        let background_cell = (1000 / 64, 1800 / 64);
        let qp_logo = qp_map.get(logo_cell.0, logo_cell.1).value();
        let qp_bg = qp_map.get(background_cell.0, background_cell.1).value();
        assert!(
            qp_logo + 12 <= qp_bg,
            "logo QP {qp_logo} vs background QP {qp_bg}"
        );
        assert!(
            qp_logo < 20,
            "evidence region should get a near-lossless QP, got {qp_logo}"
        );
        assert_eq!(qp_map.dims(), grid);
    }

    #[test]
    fn bitrate_matching_reaches_target() {
        let streamer = ContextAwareStreamer::default();
        let frames = sample_frames(&source(), 6);
        let query = streamer.query_for_question(&logo_question());
        for target in [430_000.0, 850_000.0] {
            let encode = streamer.encode_at_bitrate(&frames, &query, 30.0, target);
            let err = (encode.achieved_bitrate_bps - target).abs() / target;
            assert!(
                err < 0.5,
                "target {target}: achieved {}",
                encode.achieved_bitrate_bps
            );
        }
    }

    #[test]
    fn at_matched_bitrate_evidence_region_gets_more_bits_than_baseline() {
        // The Figure 10 claim: similar total bitrate, but ours concentrates bits on the
        // chat-important regions.
        let streamer = ContextAwareStreamer::default();
        let baseline = ContextAgnosticBaseline::default();
        let frames = sample_frames(&source(), 4);
        let question = logo_question();
        let query = streamer.query_for_question(&question);
        let target = 450_000.0;
        let ours = streamer.encode_at_bitrate(&frames, &query, 30.0, target);
        let theirs = baseline.encode_at_bitrate(&frames, 30.0, target);
        // Bits spent on the logo object (id 3) in the first frame.
        let ours_logo = ours.encoded[0].bits_on_object(3, 0.05);
        let theirs_logo = theirs.encoded[0].bits_on_object(3, 0.05);
        assert!(
            ours_logo > theirs_logo * 2,
            "ours {ours_logo} bits vs baseline {theirs_logo} bits on the logo"
        );
        // And total bitrates stay comparable.
        let ratio = ours.achieved_bitrate_bps / theirs.achieved_bitrate_bps;
        assert!(ratio > 0.6 && ratio < 1.7, "bitrate ratio {ratio}");
    }

    #[test]
    fn empty_query_degrades_to_near_uniform_map() {
        let streamer = ContextAwareStreamer::default();
        let frame = source().frame(0);
        let query = TextQuery::from_words("xyzzy", streamer.clip_model().ontology());
        let qp_map = streamer.qp_map_for(&frame, &query);
        assert_eq!(qp_map.min_qp(), qp_map.max_qp());
    }

    #[test]
    fn clip_latency_is_a_few_milliseconds() {
        let streamer = ContextAwareStreamer::default();
        let us = streamer.clip_latency_us(1920, 1080);
        assert!(us > 1_000 && us < 30_000, "{us} us");
    }

    #[test]
    fn offline_decode_is_deterministic() {
        let streamer = ContextAwareStreamer::default();
        let question = logo_question();
        let a = streamer.offline_decode(&source(), &question, 500_000.0, 4);
        let b = streamer.offline_decode(&source(), &question, 500_000.0, 4);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.qp_offset, b.1.qp_offset);
    }
}
