//! The end-to-end AI Video Chat turn: capture → (context-aware) encode → RTC over the
//! emulated uplink → decode → MLLM answer, with a per-stage latency budget (Figure 1's loop).

use crate::baseline::ContextAgnosticBaseline;
use crate::context_aware::ContextAwareStreamer;
use crate::latency::LatencyBudget;
use aivc_mllm::{Answer, InferenceLatencyModel, MllmChat, Question};
use aivc_netsim::PathConfig;
use aivc_rtc::jitter::JitterBufferConfig;
use aivc_rtc::nack::NackConfig;
use aivc_rtc::pacer::PacerConfig;
use aivc_rtc::{FecConfig, JitterBuffer, OutgoingFrame, SessionConfig, SessionStats, VideoSession};
use aivc_scene::VideoSource;
use aivc_videocodec::{DecodedFrame, Decoder, EncodedFrame};
use serde::{Deserialize, Serialize};

/// Which streaming method the session uses on the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamingMode {
    /// Context-aware QP allocation (the paper's contribution).
    ContextAware,
    /// Uniform-QP baseline at the same target bitrate.
    Baseline,
}

/// Options of one chat session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionOptions {
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Network path between client and cloud.
    pub path: PathConfig,
    /// Streaming method.
    pub mode: StreamingMode,
    /// Target uplink video bitrate in bits per second.
    pub target_bitrate_bps: f64,
    /// How many seconds of video precede (and are relevant to) the question.
    pub window_secs: f64,
    /// Capture frames per second actually pushed into the transport for this turn.
    ///
    /// Kept moderate by default so a single turn stays cheap to simulate; the redundancy
    /// analysis of Figure 2 uses the full camera rate separately.
    pub capture_fps: f64,
    /// Whether the receiver runs a traditional jitter buffer (AI mode removes it, §2.1).
    pub use_jitter_buffer: bool,
}

impl SessionOptions {
    /// A good-network default: the paper's 10 Mbps / 30 ms path, context-aware streaming at
    /// ~430 Kbps, no jitter buffer.
    pub fn default_context_aware(seed: u64) -> Self {
        Self {
            seed,
            path: PathConfig::paper_section_2_2(0.01),
            mode: StreamingMode::ContextAware,
            target_bitrate_bps: 430_000.0,
            window_secs: 4.0,
            capture_fps: 30.0,
            use_jitter_buffer: false,
        }
    }

    /// The corresponding baseline configuration at the same bitrate.
    pub fn default_baseline(seed: u64) -> Self {
        Self {
            mode: StreamingMode::Baseline,
            ..Self::default_context_aware(seed)
        }
    }
}

/// The report of one chat turn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChatTurnReport {
    /// The MLLM's answer (correctness, probability, inference latency, tokens).
    pub answer: Answer,
    /// The per-stage latency budget of the turn.
    pub latency: LatencyBudget,
    /// Achieved uplink video bitrate in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Frames handed to the transport.
    pub frames_sent: usize,
    /// Frames that were completely received.
    pub frames_delivered: usize,
    /// Transport-level statistics.
    pub transport: SessionStats,
}

/// One end-to-end AI Video Chat session.
#[derive(Debug, Clone)]
pub struct AiVideoChatSession {
    options: SessionOptions,
    streamer: ContextAwareStreamer,
    baseline: ContextAgnosticBaseline,
    responder: MllmChat,
    decoder: Decoder,
}

impl AiVideoChatSession {
    /// Creates a session.
    pub fn new(options: SessionOptions) -> Self {
        Self {
            responder: MllmChat::responder(options.seed ^ 0x5EED),
            streamer: ContextAwareStreamer::default(),
            baseline: ContextAgnosticBaseline::default(),
            decoder: Decoder::new(),
            options,
        }
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Runs one chat turn: the user asks `question` about the last `window_secs` of `source`.
    pub fn run_turn(&self, source: &VideoSource, question: &Question) -> ChatTurnReport {
        let opts = &self.options;
        // --- Capture: the frames of the question window, at the turn's capture rate.
        let window_start = (source.duration_secs() - opts.window_secs).max(0.0);
        let frame_count = (opts.window_secs * opts.capture_fps).floor().max(1.0) as usize;
        let frames: Vec<_> = (0..frame_count)
            .map(|i| source.frame_at(window_start + i as f64 / opts.capture_fps))
            .collect();
        let fps = opts.capture_fps;

        // --- Encode with the selected method at the target bitrate.
        let (encoded, achieved_bitrate, context_compute_ms): (Vec<EncodedFrame>, f64, f64) = match opts.mode {
            StreamingMode::ContextAware => {
                let query = self.streamer.query_for_question(question);
                let enc = self
                    .streamer
                    .encode_at_bitrate(&frames, &query, fps, opts.target_bitrate_bps);
                let clip_ms =
                    self.streamer.clip_latency_us(frames[0].width, frames[0].height) as f64 / 1_000.0;
                (enc.encoded, enc.achieved_bitrate_bps, clip_ms)
            }
            StreamingMode::Baseline => {
                let enc = self
                    .baseline
                    .encode_at_bitrate(&frames, fps, opts.target_bitrate_bps);
                (enc.encoded, enc.achieved_bitrate_bps, 0.0)
            }
        };

        // --- Transport over the emulated uplink.
        let outgoing: Vec<OutgoingFrame> = encoded
            .iter()
            .map(|e| OutgoingFrame {
                frame_id: e.frame_index,
                capture_ts_us: e.capture_ts_us,
                size_bytes: e.total_bytes(),
                is_keyframe: e.frame_type == aivc_videocodec::FrameType::Intra,
            })
            .collect();
        let transport_config = SessionConfig {
            path: opts.path.clone(),
            seed: opts.seed,
            fec: FecConfig::disabled(),
            nack: NackConfig::default(),
            enable_retransmission: true,
            pacer: PacerConfig::from_target_bitrate(opts.target_bitrate_bps, 2.5),
            jitter_buffer: if opts.use_jitter_buffer {
                JitterBufferConfig::traditional()
            } else {
                JitterBufferConfig::disabled()
            },
            encode_latency_us: self.streamer.encoder().encode_latency_us(),
            feedback_packet_bytes: 80,
        };
        let transport = VideoSession::new(transport_config).run(&outgoing).stats;

        // --- Decode what arrived.
        let mut decoded: Vec<DecodedFrame> = Vec::new();
        for (enc, record) in encoded.iter().zip(&transport.frames) {
            if record.received_ranges.is_empty() {
                continue;
            }
            let received_at = record.completed_at.map(|t| t.as_micros());
            decoded.push(
                self.decoder
                    .decode_with_received(enc, &record.received_ranges, received_at),
            );
        }

        // --- MLLM answers.
        let answer = self.responder.respond(question, &decoded, opts.seed);

        // --- Latency budget. Transmission is the completion latency of the frames that
        // actually made it; the jitter-buffer term is the extra release delay (zero in AI mode).
        let mut jb = JitterBuffer::new(if opts.use_jitter_buffer {
            JitterBufferConfig::traditional()
        } else {
            JitterBufferConfig::disabled()
        });
        let mut jitter_extra_ms = 0.0;
        let mut completed = 0usize;
        for record in &transport.frames {
            if let Some(done) = record.completed_at {
                let release = jb.on_frame(done, record.capture_ts_us);
                jitter_extra_ms += release.saturating_since(done).as_millis_f64();
                completed += 1;
            }
        }
        // The response-time critical path pays the prefill of the *newest* frame only:
        // streaming MLLM services prefill earlier frames as they arrive (while the user is
        // still speaking), so at question time the pending work is the fixed prefill, the
        // latest frame's visual tokens and the first decode step. The full (non-incremental)
        // latency is still available in `answer.latency`.
        let per_frame_tokens = if answer.frames_ingested == 0 {
            0
        } else {
            answer.visual_tokens / answer.frames_ingested as u32
        };
        let incremental_inference_ms = InferenceLatencyModel::new(self.responder.config())
            .typical(per_frame_tokens)
            .time_to_first_token_ms;
        let latency = LatencyBudget {
            capture_ms: 1_000.0 / fps / 2.0,
            context_compute_ms,
            encode_ms: self.streamer.encoder().encode_latency_us() as f64 / 1_000.0,
            transmission_ms: transport.mean_transmission_latency_ms(),
            jitter_buffer_ms: if completed == 0 {
                0.0
            } else {
                jitter_extra_ms / completed as f64
            },
            decode_ms: 2.0,
            inference_ms: incremental_inference_ms,
        };

        ChatTurnReport {
            answer,
            latency,
            achieved_bitrate_bps: achieved_bitrate,
            frames_sent: outgoing.len(),
            frames_delivered: transport.completed_frames(),
            transport,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::SourceConfig;

    fn source() -> VideoSource {
        VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0))
    }

    fn score_question() -> Question {
        Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::FreeResponse)
    }

    fn logo_question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    #[test]
    fn context_aware_turn_completes_and_answers_well() {
        let session = AiVideoChatSession::new(SessionOptions::default_context_aware(3));
        let report = session.run_turn(&source(), &score_question());
        assert!(report.frames_sent > 0);
        assert!(report.frames_delivered > 0);
        assert!(
            report.answer.probability_correct > 0.7,
            "p {}",
            report.answer.probability_correct
        );
        assert!(report.latency.total_ms() > 200.0);
        assert!(
            report.latency.transmission_ms < 100.0,
            "net {}",
            report.latency.transmission_ms
        );
        // Ultra-low bitrate: well below 1 Mbps.
        assert!(report.achieved_bitrate_bps < 1_000_000.0);
    }

    #[test]
    fn context_aware_beats_baseline_on_detail_question_at_same_bitrate() {
        let ours = AiVideoChatSession::new(SessionOptions::default_context_aware(5));
        let baseline = AiVideoChatSession::new(SessionOptions::default_baseline(5));
        let q = logo_question();
        let ours_report = ours.run_turn(&source(), &q);
        let base_report = baseline.run_turn(&source(), &q);
        // Comparable achieved bitrates...
        let ratio = ours_report.achieved_bitrate_bps / base_report.achieved_bitrate_bps;
        assert!(ratio > 0.5 && ratio < 2.0, "bitrate ratio {ratio}");
        // ...but much better evidence quality / answer probability for ours.
        assert!(
            ours_report.answer.probability_correct > base_report.answer.probability_correct + 0.2,
            "ours {} vs baseline {}",
            ours_report.answer.probability_correct,
            base_report.answer.probability_correct
        );
    }

    #[test]
    fn jitter_buffer_adds_latency_but_not_accuracy() {
        let mut with_jb_opts = SessionOptions::default_context_aware(7);
        with_jb_opts.use_jitter_buffer = true;
        let with_jb = AiVideoChatSession::new(with_jb_opts).run_turn(&source(), &score_question());
        let without_jb = AiVideoChatSession::new(SessionOptions::default_context_aware(7))
            .run_turn(&source(), &score_question());
        assert!(with_jb.latency.jitter_buffer_ms > without_jb.latency.jitter_buffer_ms);
        assert_eq!(without_jb.latency.jitter_buffer_ms, 0.0);
        // The MLLM's probability of answering correctly is unchanged (jitter is irrelevant
        // to MLLM perception, §2.1).
        assert!((with_jb.answer.probability_correct - without_jb.answer.probability_correct).abs() < 0.05);
    }

    #[test]
    fn turns_are_deterministic() {
        let a = AiVideoChatSession::new(SessionOptions::default_context_aware(9))
            .run_turn(&source(), &score_question());
        let b = AiVideoChatSession::new(SessionOptions::default_context_aware(9))
            .run_turn(&source(), &score_question());
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.frames_delivered, b.frames_delivered);
        assert!((a.latency.total_ms() - b.latency.total_ms()).abs() < 1e-9);
    }
}
