//! The end-to-end AI Video Chat turn, in two forms:
//!
//! * [`AiVideoChatSession`] — the *experiment* session: capture → (context-aware) encode →
//!   RTC over the emulated uplink → decode → MLLM answer, with a per-stage latency budget
//!   (Figure 1's loop).
//! * [`ChatSession`] — the *hot-path* session: one long-lived object owning every reuse
//!   buffer of the per-frame compute pipeline (CLIP scratch, QP-map buffer, encode/decode
//!   scratches, packet buffer, MLLM sampling scratch), so repeated turns perform zero
//!   post-warmup heap allocations. This is the `pipeline_turn_1080p` hot path guarded by
//!   `crates/bench/tests/zero_alloc.rs` and `BENCH_hotpaths.json`.

use crate::allocator::QpAllocator;
use crate::baseline::ContextAgnosticBaseline;
use crate::context_aware::{ContextAwareStreamer, StreamerConfig};
use crate::latency::LatencyBudget;
use aivc_mllm::{Answer, InferenceLatencyModel, MllmChat, MllmScratch, Question};
use aivc_netsim::PathConfig;
use aivc_rtc::jitter::JitterBufferConfig;
use aivc_rtc::nack::NackConfig;
use aivc_rtc::pacer::PacerConfig;
use aivc_rtc::packetizer::Packetizer;
use aivc_rtc::rtp::RtpPacket;
use aivc_rtc::{FecConfig, JitterBuffer, OutgoingFrame, SessionConfig, SessionStats, VideoSession};
use aivc_scene::{Frame, VideoSource};
use aivc_semantics::{ClipModel, ClipScratch, TextQuery};
use aivc_videocodec::{DecodeScratch, DecodedFrame, Decoder, EncodeScratch, EncodedFrame, Encoder, QpMap};
use serde::{Deserialize, Serialize};

/// Which streaming method the session uses on the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamingMode {
    /// Context-aware QP allocation (the paper's contribution).
    ContextAware,
    /// Uniform-QP baseline at the same target bitrate.
    Baseline,
}

/// Options of one chat session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionOptions {
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Network path between client and cloud.
    pub path: PathConfig,
    /// Streaming method.
    pub mode: StreamingMode,
    /// Target uplink video bitrate in bits per second.
    pub target_bitrate_bps: f64,
    /// How many seconds of video precede (and are relevant to) the question.
    pub window_secs: f64,
    /// Capture frames per second actually pushed into the transport for this turn.
    ///
    /// Kept moderate by default so a single turn stays cheap to simulate; the redundancy
    /// analysis of Figure 2 uses the full camera rate separately.
    pub capture_fps: f64,
    /// Whether the receiver runs a traditional jitter buffer (AI mode removes it, §2.1).
    pub use_jitter_buffer: bool,
}

impl SessionOptions {
    /// A good-network default: the paper's 10 Mbps / 30 ms path, context-aware streaming at
    /// ~430 Kbps, no jitter buffer.
    pub fn default_context_aware(seed: u64) -> Self {
        Self {
            seed,
            path: PathConfig::paper_section_2_2(0.01),
            mode: StreamingMode::ContextAware,
            target_bitrate_bps: 430_000.0,
            window_secs: 4.0,
            capture_fps: 30.0,
            use_jitter_buffer: false,
        }
    }

    /// The corresponding baseline configuration at the same bitrate.
    pub fn default_baseline(seed: u64) -> Self {
        Self {
            mode: StreamingMode::Baseline,
            ..Self::default_context_aware(seed)
        }
    }
}

/// The report of one chat turn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChatTurnReport {
    /// The MLLM's answer (correctness, probability, inference latency, tokens).
    pub answer: Answer,
    /// The per-stage latency budget of the turn.
    pub latency: LatencyBudget,
    /// Achieved uplink video bitrate in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Frames handed to the transport.
    pub frames_sent: usize,
    /// Frames that were completely received.
    pub frames_delivered: usize,
    /// Transport-level statistics.
    pub transport: SessionStats,
}

/// One end-to-end AI Video Chat session.
#[derive(Debug, Clone)]
pub struct AiVideoChatSession {
    options: SessionOptions,
    streamer: ContextAwareStreamer,
    baseline: ContextAgnosticBaseline,
    responder: MllmChat,
    decoder: Decoder,
}

impl AiVideoChatSession {
    /// Creates a session.
    pub fn new(options: SessionOptions) -> Self {
        Self {
            responder: MllmChat::responder(options.seed ^ 0x5EED),
            streamer: ContextAwareStreamer::default(),
            baseline: ContextAgnosticBaseline::default(),
            decoder: Decoder::new(),
            options,
        }
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Runs one chat turn: the user asks `question` about the last `window_secs` of `source`.
    pub fn run_turn(&self, source: &VideoSource, question: &Question) -> ChatTurnReport {
        let opts = &self.options;
        // --- Capture: the frames of the question window, at the turn's capture rate.
        let window_start = (source.duration_secs() - opts.window_secs).max(0.0);
        let frame_count = (opts.window_secs * opts.capture_fps).floor().max(1.0) as usize;
        let frames: Vec<_> = (0..frame_count)
            .map(|i| source.frame_at(window_start + i as f64 / opts.capture_fps))
            .collect();
        let fps = opts.capture_fps;

        // --- Encode with the selected method at the target bitrate.
        let (encoded, achieved_bitrate, context_compute_ms): (Vec<EncodedFrame>, f64, f64) = match opts.mode {
            StreamingMode::ContextAware => {
                let query = self.streamer.query_for_question(question);
                let enc = self
                    .streamer
                    .encode_at_bitrate(&frames, &query, fps, opts.target_bitrate_bps);
                let clip_ms =
                    self.streamer.clip_latency_us(frames[0].width, frames[0].height) as f64 / 1_000.0;
                (enc.encoded, enc.achieved_bitrate_bps, clip_ms)
            }
            StreamingMode::Baseline => {
                let enc = self
                    .baseline
                    .encode_at_bitrate(&frames, fps, opts.target_bitrate_bps);
                (enc.encoded, enc.achieved_bitrate_bps, 0.0)
            }
        };

        // --- Transport over the emulated uplink.
        let outgoing: Vec<OutgoingFrame> = encoded
            .iter()
            .map(|e| OutgoingFrame {
                frame_id: e.frame_index,
                capture_ts_us: e.capture_ts_us,
                size_bytes: e.total_bytes(),
                is_keyframe: e.frame_type == aivc_videocodec::FrameType::Intra,
            })
            .collect();
        let transport_config = SessionConfig {
            path: opts.path.clone(),
            seed: opts.seed,
            fec: FecConfig::disabled(),
            nack: NackConfig::default(),
            enable_retransmission: true,
            pacer: PacerConfig::from_target_bitrate(opts.target_bitrate_bps, 2.5),
            jitter_buffer: if opts.use_jitter_buffer {
                JitterBufferConfig::traditional()
            } else {
                JitterBufferConfig::disabled()
            },
            encode_latency_us: self.streamer.encoder().encode_latency_us(),
            feedback_packet_bytes: 80,
        };
        let transport = VideoSession::new(transport_config).run(&outgoing).stats;

        // --- Decode what arrived.
        let mut decoded: Vec<DecodedFrame> = Vec::new();
        for (enc, record) in encoded.iter().zip(&transport.frames) {
            if record.received_ranges.is_empty() {
                continue;
            }
            let received_at = record.completed_at.map(|t| t.as_micros());
            decoded.push(
                self.decoder
                    .decode_with_received(enc, &record.received_ranges, received_at),
            );
        }

        // --- MLLM answers.
        let answer = self.responder.respond(question, &decoded, opts.seed);

        // --- Latency budget. Transmission is the completion latency of the frames that
        // actually made it; the jitter-buffer term is the extra release delay (zero in AI mode).
        let mut jb = JitterBuffer::new(if opts.use_jitter_buffer {
            JitterBufferConfig::traditional()
        } else {
            JitterBufferConfig::disabled()
        });
        let mut jitter_extra_ms = 0.0;
        let mut completed = 0usize;
        for record in &transport.frames {
            if let Some(done) = record.completed_at {
                let release = jb.on_frame(done, record.capture_ts_us);
                jitter_extra_ms += release.saturating_since(done).as_millis_f64();
                completed += 1;
            }
        }
        // The response-time critical path pays the prefill of the *newest* frame only:
        // streaming MLLM services prefill earlier frames as they arrive (while the user is
        // still speaking), so at question time the pending work is the fixed prefill, the
        // latest frame's visual tokens and the first decode step. The full (non-incremental)
        // latency is still available in `answer.latency`.
        let per_frame_tokens = if answer.frames_ingested == 0 {
            0
        } else {
            answer.visual_tokens / answer.frames_ingested as u32
        };
        let incremental_inference_ms = InferenceLatencyModel::new(self.responder.config())
            .typical(per_frame_tokens)
            .time_to_first_token_ms;
        let latency = LatencyBudget {
            capture_ms: 1_000.0 / fps / 2.0,
            context_compute_ms,
            encode_ms: self.streamer.encoder().encode_latency_us() as f64 / 1_000.0,
            transmission_ms: transport.mean_transmission_latency_ms(),
            jitter_buffer_ms: if completed == 0 {
                0.0
            } else {
                jitter_extra_ms / completed as f64
            },
            decode_ms: 2.0,
            inference_ms: incremental_inference_ms,
        };

        ChatTurnReport {
            answer,
            latency,
            achieved_bitrate_bps: achieved_bitrate,
            frames_sent: outgoing.len(),
            frames_delivered: transport.completed_frames(),
            transport,
        }
    }
}

/// The report of one [`ChatSession::run_turn`] — plain values only, so producing it
/// allocates nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTurnReport {
    /// The MLLM's answer over the turn's decoded frames.
    pub answer: Answer,
    /// Frames pushed through the pipeline this turn.
    pub frames_processed: usize,
    /// Total coded bytes produced by the encoder this turn.
    pub encoded_bytes: u64,
    /// Total RTP media packets the packetizer produced this turn.
    pub packets: usize,
    /// Mean encoded recognition quality across the turn's frames.
    pub mean_encoded_quality: f64,
}

/// One long-lived AI Video Chat pipeline owning every per-frame scratch buffer.
///
/// A turn runs the full sender + receiver *compute* path per frame — user words → CLIP
/// correlation (Eq. 1, incremental across frames via temporal coherence) → Eq. 2 QP
/// allocation (threshold table) → ROI encode → RTP packetization → decode — and then the
/// MLLM response over the turn's decoded frames. Every stage writes into buffers owned by
/// the session, so after a warmup turn the whole pipeline performs **zero heap
/// allocations** (proven by `crates/bench/tests/zero_alloc.rs`).
///
/// The emulated network of [`AiVideoChatSession`] is deliberately absent here: transport
/// emulation models *simulated time*, not per-frame compute, and stays in the experiment
/// session. `ChatSession` answers the question the paper's frame budget asks — how much
/// client/server work one conversational turn costs.
#[derive(Debug, Clone)]
pub struct ChatSession {
    seed: u64,
    clip_model: ClipModel,
    allocator: QpAllocator,
    encoder: Encoder,
    decoder: Decoder,
    packetizer: Packetizer,
    responder: MllmChat,
    // --- reusable per-frame state, one of each per session ---
    clip: ClipScratch,
    qp_map: QpMap,
    /// One encode scratch per frame slot of the turn window: the coverage cache inside each
    /// scratch then tracks the *same* (or, in a sliding window, an adjacent) frame across
    /// turns, keeping its hit rate high.
    encode_scratches: Vec<EncodeScratch>,
    encoded: EncodedFrame,
    packets: Vec<RtpPacket>,
    decode_scratch: DecodeScratch,
    decoded: Vec<DecodedFrame>,
    mllm: MllmScratch,
    /// The question whose [`TextQuery`] is currently memoized (rebuilt only on change, so
    /// multi-turn conversations about the same question stay allocation-free).
    cached_question: Option<Question>,
    query: TextQuery,
}

impl ChatSession {
    /// Creates a session with explicit streamer configuration and CLIP model.
    pub fn new(config: StreamerConfig, clip_model: ClipModel, seed: u64) -> Self {
        Self {
            seed,
            allocator: QpAllocator::new(config.allocator),
            encoder: Encoder::new(config.encoder),
            decoder: Decoder::new(),
            packetizer: Packetizer::default(),
            responder: MllmChat::responder(seed ^ 0x5EED),
            clip_model,
            clip: ClipScratch::new(),
            qp_map: QpMap::empty(),
            encode_scratches: Vec::new(),
            encoded: EncodedFrame::placeholder(),
            packets: Vec::new(),
            decode_scratch: DecodeScratch::new(),
            decoded: Vec::new(),
            mllm: MllmScratch::new(),
            cached_question: None,
            query: TextQuery::from_concepts("", std::iter::empty::<String>()),
        }
    }

    /// A session with the paper's defaults (γ = 3 allocator, medium-preset encoder,
    /// Mobile-CLIP-class model).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(StreamerConfig::default(), ClipModel::mobile_default(), seed)
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The CLIP model in use.
    pub fn clip_model(&self) -> &ClipModel {
        &self.clip_model
    }

    /// Runs one chat turn over a window of captured frames.
    ///
    /// Per frame: incremental CLIP correlation → Eq. 2 QP map → ROI encode → packetize →
    /// decode; then one MLLM response over everything the turn decoded. All intermediate
    /// state lives in the session's scratch buffers; after the first turn of a given shape,
    /// the call performs no heap allocation. Stage outputs are bit-identical to the
    /// allocating convenience APIs (see the equivalence tests).
    pub fn run_turn(&mut self, frames: &[Frame], question: &Question) -> PipelineTurnReport {
        assert!(!frames.is_empty(), "a chat turn needs at least one frame");
        // Re-derive the text query only when the question changes.
        if self.cached_question.as_ref() != Some(question) {
            self.query = TextQuery::from_words_and_concepts(
                &question.text,
                self.clip_model.ontology(),
                question.query_concepts.iter().cloned(),
            );
            self.cached_question = Some(question.clone());
        }
        let mut encoded_bytes = 0u64;
        let mut packets = 0usize;
        let mut quality_sum = 0.0f64;
        for (i, frame) in frames.iter().enumerate() {
            // --- Eq. 1: semantic correlation, recomputing only patches object motion dirtied.
            let importance = self
                .clip_model
                .correlation_map_coherent(frame, &self.query, &mut self.clip);
            // --- Eq. 2: ρ → QP through the threshold table.
            self.allocator
                .allocate_into(importance, self.encoder.grid_for(frame), &mut self.qp_map);
            // --- ROI encode into the session's frame buffer, via this slot's scratch.
            if self.encode_scratches.len() <= i {
                self.encode_scratches.push(EncodeScratch::new());
            }
            self.encoder.encode_into(
                frame,
                &self.qp_map,
                &mut self.encode_scratches[i],
                &mut self.encoded,
            );
            let total_bytes = self.encoded.total_bytes();
            encoded_bytes += total_bytes;
            quality_sum += self.encoded.mean_encoded_quality();
            // --- Packetize for the uplink.
            let outgoing = OutgoingFrame {
                frame_id: self.encoded.frame_index,
                capture_ts_us: self.encoded.capture_ts_us,
                size_bytes: total_bytes,
                is_keyframe: self.encoded.frame_type == aivc_videocodec::FrameType::Intra,
            };
            self.packetizer.packetize_into(&outgoing, &mut self.packets);
            packets += self.packets.len();
            // --- Decode into this turn slot's frame buffer (grown once, then reused).
            if self.decoded.len() <= i {
                self.decoded.push(DecodedFrame::placeholder());
            }
            self.decoder.decode_into(
                &self.encoded,
                &[(0, total_bytes)],
                None,
                &mut self.decode_scratch,
                &mut self.decoded[i],
            );
        }
        // --- The MLLM answers over everything the turn decoded.
        let answer =
            self.responder
                .respond_with(question, &self.decoded[..frames.len()], self.seed, &mut self.mllm);
        PipelineTurnReport {
            answer,
            frames_processed: frames.len(),
            encoded_bytes,
            packets,
            mean_encoded_quality: quality_sum / frames.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_mllm::QuestionFormat;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::SourceConfig;

    fn source() -> VideoSource {
        VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0))
    }

    fn score_question() -> Question {
        Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::FreeResponse)
    }

    fn logo_question() -> Question {
        Question::from_fact(&basketball_game(1).facts[1], QuestionFormat::FreeResponse)
    }

    #[test]
    fn context_aware_turn_completes_and_answers_well() {
        let session = AiVideoChatSession::new(SessionOptions::default_context_aware(3));
        let report = session.run_turn(&source(), &score_question());
        assert!(report.frames_sent > 0);
        assert!(report.frames_delivered > 0);
        assert!(
            report.answer.probability_correct > 0.7,
            "p {}",
            report.answer.probability_correct
        );
        assert!(report.latency.total_ms() > 200.0);
        assert!(
            report.latency.transmission_ms < 100.0,
            "net {}",
            report.latency.transmission_ms
        );
        // Ultra-low bitrate: well below 1 Mbps.
        assert!(report.achieved_bitrate_bps < 1_000_000.0);
    }

    #[test]
    fn context_aware_beats_baseline_on_detail_question_at_same_bitrate() {
        let ours = AiVideoChatSession::new(SessionOptions::default_context_aware(5));
        let baseline = AiVideoChatSession::new(SessionOptions::default_baseline(5));
        let q = logo_question();
        let ours_report = ours.run_turn(&source(), &q);
        let base_report = baseline.run_turn(&source(), &q);
        // Comparable achieved bitrates...
        let ratio = ours_report.achieved_bitrate_bps / base_report.achieved_bitrate_bps;
        assert!(ratio > 0.5 && ratio < 2.0, "bitrate ratio {ratio}");
        // ...but much better evidence quality / answer probability for ours.
        assert!(
            ours_report.answer.probability_correct > base_report.answer.probability_correct + 0.2,
            "ours {} vs baseline {}",
            ours_report.answer.probability_correct,
            base_report.answer.probability_correct
        );
    }

    #[test]
    fn jitter_buffer_adds_latency_but_not_accuracy() {
        let mut with_jb_opts = SessionOptions::default_context_aware(7);
        with_jb_opts.use_jitter_buffer = true;
        let with_jb = AiVideoChatSession::new(with_jb_opts).run_turn(&source(), &score_question());
        let without_jb = AiVideoChatSession::new(SessionOptions::default_context_aware(7))
            .run_turn(&source(), &score_question());
        assert!(with_jb.latency.jitter_buffer_ms > without_jb.latency.jitter_buffer_ms);
        assert_eq!(without_jb.latency.jitter_buffer_ms, 0.0);
        // The MLLM's probability of answering correctly is unchanged (jitter is irrelevant
        // to MLLM perception, §2.1).
        assert!((with_jb.answer.probability_correct - without_jb.answer.probability_correct).abs() < 0.05);
    }

    #[test]
    fn chat_session_pipeline_matches_the_allocating_stages() {
        let source = source();
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = score_question();
        let mut session = ChatSession::with_defaults(11);
        let report = session.run_turn(&frames, &question);
        // Compose the same turn from the allocating convenience APIs.
        let streamer = ContextAwareStreamer::default();
        let decoder = Decoder::new();
        let responder = MllmChat::responder(11 ^ 0x5EED);
        let query = streamer.query_for_question(&question);
        let mut expected_bytes = 0u64;
        let decoded: Vec<DecodedFrame> = frames
            .iter()
            .map(|f| {
                let encoded = streamer
                    .encoder()
                    .encode_with_qp_map(f, &streamer.qp_map_for(f, &query));
                expected_bytes += encoded.total_bytes();
                decoder.decode_complete(&encoded, None)
            })
            .collect();
        let expected_answer = responder.respond(&question, &decoded, 11);
        assert_eq!(report.answer, expected_answer);
        assert_eq!(report.encoded_bytes, expected_bytes);
        assert_eq!(report.frames_processed, 4);
        assert!(report.packets > 0);
        assert!(report.mean_encoded_quality > 0.0);
    }

    #[test]
    fn chat_session_turns_are_reproducible_through_reused_buffers() {
        let source = source();
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = score_question();
        let mut session = ChatSession::with_defaults(13);
        let first = session.run_turn(&frames, &question);
        // Same turn repeated (warm buffers) and after an interleaved different window.
        assert_eq!(session.run_turn(&frames, &question), first);
        let other_frames: Vec<Frame> = (0..2).map(|i| source.frame(60 + i * 15)).collect();
        let _ = session.run_turn(&other_frames, &question);
        assert_eq!(session.run_turn(&frames, &question), first);
    }

    #[test]
    fn chat_session_handles_question_switches() {
        let source = source();
        let frames: Vec<Frame> = (0..3).map(|i| source.frame(i * 20)).collect();
        let mut session = ChatSession::with_defaults(17);
        let score = session.run_turn(&frames, &score_question());
        let logo = session.run_turn(&frames, &logo_question());
        // A fresh session asked the logo question directly agrees with the switched one.
        let mut fresh = ChatSession::with_defaults(17);
        assert_eq!(fresh.run_turn(&frames, &logo_question()), logo);
        // And the two questions genuinely produce different QP decisions downstream.
        assert_ne!(score.encoded_bytes, logo.encoded_bytes);
    }

    #[test]
    fn turns_are_deterministic() {
        let a = AiVideoChatSession::new(SessionOptions::default_context_aware(9))
            .run_turn(&source(), &score_question());
        let b = AiVideoChatSession::new(SessionOptions::default_context_aware(9))
            .run_turn(&source(), &score_question());
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.frames_delivered, b.frames_delivered);
        assert!((a.latency.total_ms() - b.latency.total_ms()).abs() < 1e-9);
    }
}
