//! The context-agnostic baseline: uniform QP chosen by rate control only.
//!
//! This is what the paper compares against in Figure 9: the same Kvazaar-style encoder, the
//! same target bitrate, but bits are spread uniformly because the encoder has no idea which
//! regions the chat cares about.

use aivc_scene::{Frame, VideoSource};
use aivc_videocodec::{match_bitrate_qp, DecodedFrame, Decoder, EncodedFrame, Encoder, EncoderConfig, Qp};
use serde::{Deserialize, Serialize};

/// Result of encoding a set of frames with the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineEncode {
    /// The uniform QP selected by the trial-and-error bitrate match.
    pub qp: Qp,
    /// Achieved mean bitrate over the encoded frames, in bits per second.
    pub achieved_bitrate_bps: f64,
    /// The encoded frames.
    pub encoded: Vec<EncodedFrame>,
}

/// The uniform-QP baseline streamer.
#[derive(Debug, Clone)]
pub struct ContextAgnosticBaseline {
    encoder: Encoder,
    decoder: Decoder,
}

impl Default for ContextAgnosticBaseline {
    fn default() -> Self {
        Self::new(EncoderConfig::default())
    }
}

impl ContextAgnosticBaseline {
    /// Creates a baseline streamer with the given encoder configuration.
    pub fn new(config: EncoderConfig) -> Self {
        Self {
            encoder: Encoder::new(config),
            decoder: Decoder::new(),
        }
    }

    /// The underlying encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Encodes `frames` at the uniform QP whose actual bitrate best matches
    /// `target_bitrate_bps` (the paper's trial-and-error procedure).
    pub fn encode_at_bitrate(&self, frames: &[Frame], fps: f64, target_bitrate_bps: f64) -> BaselineEncode {
        let matched = match_bitrate_qp(&self.encoder, frames, fps, target_bitrate_bps);
        let qp = Qp::new(matched.qp_or_offset);
        let encoded: Vec<EncodedFrame> = frames
            .iter()
            .map(|f| self.encoder.encode_uniform(f, qp))
            .collect();
        let achieved =
            encoded.iter().map(|e| e.total_bits()).sum::<u64>() as f64 / encoded.len().max(1) as f64 * fps;
        BaselineEncode {
            qp,
            achieved_bitrate_bps: achieved,
            encoded,
        }
    }

    /// Encodes the MLLM-visible frames of a clip (≤ `max_frames`, spread over the clip) at a
    /// matched bitrate and decodes them losslessly (no transport), for offline evaluation.
    pub fn offline_decode(
        &self,
        source: &VideoSource,
        target_bitrate_bps: f64,
        max_frames: usize,
    ) -> (Vec<DecodedFrame>, BaselineEncode) {
        let frames = sample_frames(source, max_frames);
        let encode = self.encode_at_bitrate(&frames, source.config().fps, target_bitrate_bps);
        let decoded = encode
            .encoded
            .iter()
            .map(|e| self.decoder.decode_complete(e, None))
            .collect();
        (decoded, encode)
    }
}

/// Samples up to `max_frames` frames uniformly across a clip.
pub fn sample_frames(source: &VideoSource, max_frames: usize) -> Vec<Frame> {
    assert!(max_frames > 0);
    let total = source.frame_count().max(1);
    let step = (total as f64 / max_frames as f64).max(1.0);
    let mut out = Vec::new();
    let mut i = 0.0;
    while (i as u64) < total && out.len() < max_frames {
        out.push(source.frame(i as u64));
        i += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::SourceConfig;

    fn source() -> VideoSource {
        VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0))
    }

    #[test]
    fn baseline_hits_target_bitrate() {
        let baseline = ContextAgnosticBaseline::default();
        let frames = sample_frames(&source(), 10);
        for target in [430_000.0, 850_000.0, 2_000_000.0] {
            let result = baseline.encode_at_bitrate(&frames, 30.0, target);
            let err = (result.achieved_bitrate_bps - target).abs() / target;
            assert!(
                err < 0.5,
                "target {target}: achieved {}",
                result.achieved_bitrate_bps
            );
        }
    }

    #[test]
    fn lower_bitrate_means_higher_qp_and_lower_quality() {
        let baseline = ContextAgnosticBaseline::default();
        let frames = sample_frames(&source(), 6);
        let low = baseline.encode_at_bitrate(&frames, 30.0, 430_000.0);
        let high = baseline.encode_at_bitrate(&frames, 30.0, 1_700_000.0);
        assert!(low.qp.value() > high.qp.value());
        assert!(low.encoded[0].mean_encoded_quality() < high.encoded[0].mean_encoded_quality());
    }

    #[test]
    fn offline_decode_produces_requested_frame_count() {
        let baseline = ContextAgnosticBaseline::default();
        let (decoded, encode) = baseline.offline_decode(&source(), 850_000.0, 6);
        assert_eq!(decoded.len(), 6);
        assert_eq!(decoded.len(), encode.encoded.len());
        assert!(decoded[0].received_fraction() == 1.0);
    }

    #[test]
    fn sample_frames_spread_over_clip() {
        let frames = sample_frames(&source(), 5);
        assert_eq!(frames.len(), 5);
        assert!(frames.windows(2).all(|w| w[0].index < w[1].index));
        assert!(frames.last().unwrap().index > 200);
    }
}
