//! Eq. 2: mapping semantic correlation to per-CTU quantization parameters.
//!
//! The paper's allocation rule is
//!
//! ```text
//! QP_mn = 51 · ( 1 − ((ρ_mn + 1) / 2)^γ )          with γ = 3
//! ```
//!
//! so a perfectly correlated patch (ρ = 1) gets QP 0 (near lossless), an anti-correlated
//! patch (ρ = −1) gets QP 51 (coarsest), and the temperature γ "aggressively penalizes
//! irrelevant regions" by bending the curve so that moderately correlated patches already
//! receive fairly high QP.

use aivc_scene::GridDims;
use aivc_semantics::ImportanceMap;
use aivc_videocodec::{Qp, QpMap};
use serde::{Deserialize, Serialize};

/// Configuration of the Eq. 2 allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpAllocatorConfig {
    /// Temperature coefficient γ (paper: 3).
    pub gamma: f64,
    /// Optional lower clamp on the produced QP (0 = disabled). Useful for ablations: the
    /// paper's rule allows QP 0, which spends extreme bitrate on tiny regions.
    pub min_qp: u8,
    /// Optional upper clamp on the produced QP (51 = disabled).
    pub max_qp: u8,
}

impl Default for QpAllocatorConfig {
    fn default() -> Self {
        Self {
            gamma: 3.0,
            min_qp: 0,
            max_qp: 51,
        }
    }
}

impl QpAllocatorConfig {
    /// The paper's exact setting (γ = 3, no extra clamping).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A variant with a different temperature (for the γ ablation).
    pub fn with_gamma(gamma: f64) -> Self {
        Self {
            gamma,
            ..Self::default()
        }
    }
}

/// The Eq. 2 QP allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct QpAllocator {
    config: QpAllocatorConfig,
}

impl QpAllocator {
    /// Creates an allocator.
    pub fn new(config: QpAllocatorConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> QpAllocatorConfig {
        self.config
    }

    /// Eq. 2 for a single correlation value.
    pub fn qp_for_rho(&self, rho: f64) -> Qp {
        let rho = rho.clamp(-1.0, 1.0);
        let normalized = (rho + 1.0) / 2.0;
        let raw = 51.0 * (1.0 - normalized.powf(self.config.gamma));
        Qp::from_f64(raw.clamp(self.config.min_qp as f64, self.config.max_qp as f64))
    }

    /// Converts a per-patch importance map into a per-CTU QP map on the encoder's grid.
    ///
    /// When the CLIP patch grid and the encoder CTU grid differ, the importance map is
    /// resampled first (nearest-center), exactly as a real implementation would feed
    /// Kvazaar's ROI interface.
    pub fn allocate(&self, importance: &ImportanceMap, encoder_grid: GridDims) -> QpMap {
        let resampled = if importance.dims() == encoder_grid {
            importance.clone()
        } else {
            importance.resample(encoder_grid)
        };
        let values = resampled
            .values()
            .iter()
            .map(|rho| self.qp_for_rho(*rho))
            .collect();
        QpMap::from_values(encoder_grid, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_endpoints() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        assert_eq!(a.qp_for_rho(1.0).value(), 0);
        assert_eq!(a.qp_for_rho(-1.0).value(), 51);
        // ρ = 0 -> 51 * (1 - 0.5^3) = 44.625 -> 45.
        assert_eq!(a.qp_for_rho(0.0).value(), 45);
    }

    #[test]
    fn qp_is_monotone_decreasing_in_rho() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        let mut prev = 52i32;
        for i in 0..=200 {
            let rho = -1.0 + 2.0 * i as f64 / 200.0;
            let qp = a.qp_for_rho(rho).value() as i32;
            assert!(qp <= prev, "qp increased at rho {rho}");
            prev = qp;
        }
    }

    #[test]
    fn higher_gamma_penalizes_moderate_rho_more() {
        let soft = QpAllocator::new(QpAllocatorConfig::with_gamma(1.0));
        let hard = QpAllocator::new(QpAllocatorConfig::with_gamma(5.0));
        // At a moderate correlation the aggressive temperature should assign a higher QP.
        assert!(hard.qp_for_rho(0.2).value() > soft.qp_for_rho(0.2).value());
        // At the extremes both agree.
        assert_eq!(hard.qp_for_rho(1.0).value(), soft.qp_for_rho(1.0).value());
        assert_eq!(hard.qp_for_rho(-1.0).value(), soft.qp_for_rho(-1.0).value());
    }

    #[test]
    fn clamping_limits_the_range() {
        let a = QpAllocator::new(QpAllocatorConfig {
            gamma: 3.0,
            min_qp: 20,
            max_qp: 46,
        });
        assert_eq!(a.qp_for_rho(1.0).value(), 20);
        assert_eq!(a.qp_for_rho(-1.0).value(), 46);
    }

    #[test]
    fn allocate_resamples_and_maps() {
        let patch_grid = GridDims::for_frame(256, 128, 64);
        let importance = ImportanceMap::new(
            patch_grid,
            256,
            128,
            vec![1.0, 0.5, 0.0, -0.5, -1.0, 0.9, -0.9, 0.1],
        );
        let allocator = QpAllocator::new(QpAllocatorConfig::paper());
        // Same grid: direct mapping.
        let map = allocator.allocate(&importance, patch_grid);
        assert_eq!(map.get(0, 0).value(), 0);
        assert_eq!(map.get(1, 0).value(), 51);
        // Finer encoder grid: values are replicated onto sub-cells.
        let fine_grid = GridDims::for_frame(256, 128, 32);
        let fine = allocator.allocate(&importance, fine_grid);
        assert_eq!(fine.dims(), fine_grid);
        assert_eq!(fine.get(0, 0).value(), 0);
        assert_eq!(fine.get(0, 1).value(), 0);
    }

    #[test]
    fn out_of_range_rho_is_clamped() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        assert_eq!(a.qp_for_rho(7.0).value(), 0);
        assert_eq!(a.qp_for_rho(-7.0).value(), 51);
    }
}
