//! Eq. 2: mapping semantic correlation to per-CTU quantization parameters.
//!
//! The paper's allocation rule is
//!
//! ```text
//! QP_mn = 51 · ( 1 − ((ρ_mn + 1) / 2)^γ )          with γ = 3
//! ```
//!
//! so a perfectly correlated patch (ρ = 1) gets QP 0 (near lossless), an anti-correlated
//! patch (ρ = −1) gets QP 51 (coarsest), and the temperature γ "aggressively penalizes
//! irrelevant regions" by bending the curve so that moderately correlated patches already
//! receive fairly high QP.
//!
//! ## The threshold table
//!
//! The produced QP is quantized to an integer in `0..=51`, so evaluating the transcendental
//! `powf` once per CTU (≈ 8k calls per 1080p frame at 32-px patches) is wasted work: the ρ
//! axis partitions into at most 52 intervals, one per output QP. [`QpAllocator::new`]
//! computes the exact interval boundaries once per configuration — each boundary is refined
//! to the *exact* `f64` where the reference `powf` expression changes its rounded output —
//! and [`QpAllocator::qp_for_rho`] then answers through a 256-bucket jump index over the
//! segment table (constant-time bucket lookup plus a scan of the few segments sharing the
//! bucket), bit-identical to the reference path (see the exhaustive sweep in the tests and
//! the property tests in `tests/model_properties.rs`).

use aivc_scene::GridDims;
use aivc_semantics::ImportanceMap;
use aivc_videocodec::{Qp, QpMap};
use serde::{Deserialize, Serialize};

/// Configuration of the Eq. 2 allocator.
///
/// ## Clamp semantics
///
/// `min_qp`/`max_qp` clamp the *raw* Eq. 2 value before rounding, so at the extremes the
/// clamps win over the curve: ρ = 1 produces exactly `min_qp` and ρ = −1 produces exactly
/// `max_qp`, for every temperature γ > 0 (including γ < 1, which bends the curve the other
/// way but keeps the same endpoints). Values above 51 are saturated to 51 by [`Qp`] itself.
/// A configuration with `min_qp > max_qp` has no consistent meaning and is rejected by
/// [`QpAllocator::new`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpAllocatorConfig {
    /// Temperature coefficient γ (paper: 3).
    pub gamma: f64,
    /// Optional lower clamp on the produced QP (0 = disabled). Useful for ablations: the
    /// paper's rule allows QP 0, which spends extreme bitrate on tiny regions.
    pub min_qp: u8,
    /// Optional upper clamp on the produced QP (51 = disabled).
    pub max_qp: u8,
}

impl Default for QpAllocatorConfig {
    fn default() -> Self {
        Self {
            gamma: 3.0,
            min_qp: 0,
            max_qp: 51,
        }
    }
}

impl QpAllocatorConfig {
    /// The paper's exact setting (γ = 3, no extra clamping).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A variant with a different temperature (for the γ ablation).
    pub fn with_gamma(gamma: f64) -> Self {
        Self {
            gamma,
            ..Self::default()
        }
    }
}

/// One entry of the precomputed ρ-threshold table: the QP produced for every
/// ρ ∈ `[start_rho, next entry's start_rho)`.
#[derive(Debug, Clone, Copy)]
struct Segment {
    /// Smallest ρ (after clamping into `[-1, 1]`) that produces `qp`.
    start_rho: f64,
    /// The quantized Eq. 2 output over this segment.
    qp: Qp,
}

/// Buckets of the uniform jump index over `[-1, 1]` (see [`ThresholdTable::bucket_start`]).
const LUT_BUCKETS: usize = 256;

/// The precomputed ρ-threshold table plus its jump index.
#[derive(Debug, Clone)]
struct ThresholdTable {
    /// Threshold segments, ascending in `start_rho` (QP descending, since Eq. 2 is monotone
    /// non-increasing in ρ for γ > 0).
    segments: Vec<Segment>,
    /// For each uniform bucket of `[-1, 1]`: the index of the segment containing the
    /// bucket's left edge. A lookup jumps here and scans forward at most the couple of
    /// segments that share the bucket — O(1) with no data-dependent binary search.
    bucket_start: [u32; LUT_BUCKETS],
}

impl ThresholdTable {
    fn lookup(&self, rho: f64) -> Qp {
        // rho is clamped to [-1, 1] by the caller, so the bucket index is in range after
        // the min (rho = 1.0 maps to LUT_BUCKETS and is pulled back).
        let bucket = (((rho + 1.0) * (LUT_BUCKETS as f64 / 2.0)) as usize).min(LUT_BUCKETS - 1);
        let mut i = self.bucket_start[bucket] as usize;
        while i + 1 < self.segments.len() && self.segments[i + 1].start_rho <= rho {
            i += 1;
        }
        // Ulp-safety backstep: float rounding in the bucket computation can land one
        // segment ahead at an exact boundary. Rarely (if ever) taken.
        while i > 0 && self.segments[i].start_rho > rho {
            i -= 1;
        }
        self.segments[i].qp
    }
}

/// The Eq. 2 QP allocator.
#[derive(Debug, Clone)]
pub struct QpAllocator {
    config: QpAllocatorConfig,
    /// `None` when the configuration is outside the monotone regime (γ ≤ 0 or non-finite)
    /// — then every call falls back to the reference `powf` path.
    table: Option<ThresholdTable>,
}

impl Default for QpAllocator {
    fn default() -> Self {
        Self::new(QpAllocatorConfig::default())
    }
}

/// Maps an `f64` to a totally ordered `u64` (monotone bijection over all non-NaN values),
/// so boundary refinement can bisect at `f64` resolution.
fn ordered_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`ordered_bits`].
fn from_ordered_bits(o: u64) -> f64 {
    if o & (1 << 63) != 0 {
        f64::from_bits(o & !(1 << 63))
    } else {
        f64::from_bits(!o)
    }
}

impl QpAllocator {
    /// Creates an allocator, precomputing the ρ-threshold table for its configuration.
    ///
    /// Panics when `min_qp > max_qp` (see [`QpAllocatorConfig`]'s clamp semantics).
    pub fn new(config: QpAllocatorConfig) -> Self {
        assert!(
            config.min_qp <= config.max_qp,
            "QpAllocatorConfig: min_qp ({}) must not exceed max_qp ({})",
            config.min_qp,
            config.max_qp
        );
        Self {
            table: Self::build_table(config),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> QpAllocatorConfig {
        self.config
    }

    /// Eq. 2 for a single correlation value.
    ///
    /// Answers from the precomputed threshold table — a constant-time bucket jump plus a
    /// short scan instead of a `powf` — bit-identical to
    /// [`QpAllocator::qp_for_rho_reference`].
    pub fn qp_for_rho(&self, rho: f64) -> Qp {
        let Some(table) = &self.table else {
            return self.qp_for_rho_reference(rho);
        };
        if rho.is_nan() {
            return self.qp_for_rho_reference(rho);
        }
        table.lookup(rho.clamp(-1.0, 1.0))
    }

    /// The original transcendental evaluation of Eq. 2, kept as the reference the threshold
    /// table is constructed from and proven bit-identical against.
    #[doc(hidden)]
    pub fn qp_for_rho_reference(&self, rho: f64) -> Qp {
        reference_qp(self.config, rho)
    }

    /// Builds the ρ-threshold table: walk the (monotone non-increasing) quantized curve from
    /// ρ = −1 to ρ = 1, bisecting each output transition down to the exact `f64` boundary.
    /// Returns `None` outside the monotone regime or if a verification sweep finds any
    /// disagreement with the reference (e.g. a hypothetical non-monotone `powf` wobble).
    fn build_table(config: QpAllocatorConfig) -> Option<ThresholdTable> {
        if !config.gamma.is_finite() || config.gamma <= 0.0 {
            return None;
        }
        let reference = |rho: f64| reference_qp(config, rho);
        let mut segments = vec![Segment {
            start_rho: -1.0,
            qp: reference(-1.0),
        }];
        let final_qp = reference(1.0);
        while segments.last().unwrap().qp != final_qp {
            // 52 distinct outputs at most; more transitions would mean non-monotonicity.
            if segments.len() > 52 {
                return None;
            }
            let last = *segments.last().unwrap();
            // Bisect for the smallest rho in (last.start_rho, 1] whose output differs.
            let mut lo = ordered_bits(last.start_rho);
            let mut hi = ordered_bits(1.0);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if reference(from_ordered_bits(mid)) == last.qp {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let boundary = from_ordered_bits(hi);
            segments.push(Segment {
                start_rho: boundary,
                qp: reference(boundary),
            });
        }
        // The jump index: for each uniform bucket, the segment containing its left edge.
        let mut bucket_start = [0u32; LUT_BUCKETS];
        for (bucket, start) in bucket_start.iter_mut().enumerate() {
            let left_edge = -1.0 + 2.0 * bucket as f64 / LUT_BUCKETS as f64;
            *start = (segments.partition_point(|s| s.start_rho <= left_edge) - 1) as u32;
        }
        let table = ThresholdTable {
            segments,
            bucket_start,
        };
        // Verification sweep: the table must reproduce the reference everywhere, including
        // one ulp on either side of every boundary. Bisection alone guarantees this only if
        // the reference is perfectly monotone, which IEEE `powf` does not promise.
        for i in 0..=4096u32 {
            let rho = -1.0 + 2.0 * i as f64 / 4096.0;
            if table.lookup(rho) != reference(rho) {
                return None;
            }
        }
        for s in &table.segments[1..] {
            let before = from_ordered_bits(ordered_bits(s.start_rho) - 1);
            for rho in [before, s.start_rho] {
                if table.lookup(rho) != reference(rho) {
                    return None;
                }
            }
        }
        Some(table)
    }

    /// Converts a per-patch importance map into a per-CTU QP map on the encoder's grid.
    ///
    /// When the CLIP patch grid and the encoder CTU grid differ, the importance map is
    /// resampled first (nearest-center), exactly as a real implementation would feed
    /// Kvazaar's ROI interface.
    pub fn allocate(&self, importance: &ImportanceMap, encoder_grid: GridDims) -> QpMap {
        let mut out = QpMap::empty();
        self.allocate_into(importance, encoder_grid, &mut out);
        out
    }

    /// [`QpAllocator::allocate`] into a caller-owned map. Resampling happens on the fly
    /// (nearest-center per target cell, identical values to [`ImportanceMap::resample`]), so
    /// once `out` has grown to the encoder grid the call performs no heap allocation.
    pub fn allocate_into(&self, importance: &ImportanceMap, encoder_grid: GridDims, out: &mut QpMap) {
        out.begin_refill(encoder_grid);
        if importance.dims() == encoder_grid {
            for rho in importance.values() {
                out.push_value(self.qp_for_rho(*rho));
            }
        } else {
            for row in 0..encoder_grid.rows {
                for col in 0..encoder_grid.cols {
                    let rho = importance.nearest_value_for_cell(encoder_grid, row, col);
                    out.push_value(self.qp_for_rho(rho));
                }
            }
        }
        out.finish_refill();
    }
}

/// The transcendental Eq. 2 evaluation (clamp ρ → normalize → `powf` → clamp → round).
fn reference_qp(config: QpAllocatorConfig, rho: f64) -> Qp {
    let rho = rho.clamp(-1.0, 1.0);
    let normalized = (rho + 1.0) / 2.0;
    let raw = 51.0 * (1.0 - normalized.powf(config.gamma));
    Qp::from_f64(raw.clamp(config.min_qp as f64, config.max_qp as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_endpoints() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        assert_eq!(a.qp_for_rho(1.0).value(), 0);
        assert_eq!(a.qp_for_rho(-1.0).value(), 51);
        // ρ = 0 -> 51 * (1 - 0.5^3) = 44.625 -> 45.
        assert_eq!(a.qp_for_rho(0.0).value(), 45);
    }

    #[test]
    fn qp_is_monotone_decreasing_in_rho() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        let mut prev = 52i32;
        for i in 0..=200 {
            let rho = -1.0 + 2.0 * i as f64 / 200.0;
            let qp = a.qp_for_rho(rho).value() as i32;
            assert!(qp <= prev, "qp increased at rho {rho}");
            prev = qp;
        }
    }

    #[test]
    fn higher_gamma_penalizes_moderate_rho_more() {
        let soft = QpAllocator::new(QpAllocatorConfig::with_gamma(1.0));
        let hard = QpAllocator::new(QpAllocatorConfig::with_gamma(5.0));
        // At a moderate correlation the aggressive temperature should assign a higher QP.
        assert!(hard.qp_for_rho(0.2).value() > soft.qp_for_rho(0.2).value());
        // At the extremes both agree.
        assert_eq!(hard.qp_for_rho(1.0).value(), soft.qp_for_rho(1.0).value());
        assert_eq!(hard.qp_for_rho(-1.0).value(), soft.qp_for_rho(-1.0).value());
    }

    #[test]
    fn clamping_limits_the_range() {
        let a = QpAllocator::new(QpAllocatorConfig {
            gamma: 3.0,
            min_qp: 20,
            max_qp: 46,
        });
        assert_eq!(a.qp_for_rho(1.0).value(), 20);
        assert_eq!(a.qp_for_rho(-1.0).value(), 46);
    }

    #[test]
    fn clamps_win_at_the_extremes_for_every_temperature() {
        // The documented contract: ρ = 1 ⇒ exactly min_qp, ρ = −1 ⇒ exactly max_qp,
        // regardless of γ — including γ < 1, which flattens the curve near ρ = −1.
        for gamma in [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0] {
            for (min_qp, max_qp) in [(0, 51), (10, 40), (26, 26), (0, 1), (50, 51)] {
                let a = QpAllocator::new(QpAllocatorConfig {
                    gamma,
                    min_qp,
                    max_qp,
                });
                assert_eq!(a.qp_for_rho(1.0).value(), min_qp, "gamma {gamma}");
                assert_eq!(a.qp_for_rho(-1.0).value(), max_qp, "gamma {gamma}");
                // And every value in between respects both clamps.
                for i in 0..=100 {
                    let qp = a.qp_for_rho(-1.0 + 2.0 * i as f64 / 100.0).value();
                    assert!((min_qp..=max_qp).contains(&qp));
                }
            }
        }
    }

    #[test]
    fn clamps_above_51_saturate() {
        // Qp itself clamps to the H.265 legal range, so an out-of-range max_qp behaves as 51.
        let a = QpAllocator::new(QpAllocatorConfig {
            gamma: 3.0,
            min_qp: 0,
            max_qp: 200,
        });
        assert_eq!(a.qp_for_rho(-1.0).value(), 51);
        let reference = QpAllocator::new(QpAllocatorConfig::paper());
        for i in 0..=100 {
            let rho = -1.0 + 2.0 * i as f64 / 100.0;
            assert_eq!(a.qp_for_rho(rho), reference.qp_for_rho(rho));
        }
    }

    #[test]
    #[should_panic(expected = "min_qp")]
    fn inverted_clamp_is_rejected() {
        let _ = QpAllocator::new(QpAllocatorConfig {
            gamma: 3.0,
            min_qp: 40,
            max_qp: 20,
        });
    }

    #[test]
    fn lut_is_bit_identical_to_reference_on_a_dense_sweep() {
        // Exhaustive equivalence over a fine ρ grid for the paper γ, the ablation γs and
        // sub-1 temperatures, with and without clamps.
        for gamma in [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
            for (min_qp, max_qp) in [(0, 51), (12, 44), (26, 26)] {
                let a = QpAllocator::new(QpAllocatorConfig {
                    gamma,
                    min_qp,
                    max_qp,
                });
                assert!(a.table.is_some(), "gamma {gamma} should use the table");
                for i in 0..=100_000u32 {
                    let rho = -1.0 + 2.0 * i as f64 / 100_000.0;
                    assert_eq!(
                        a.qp_for_rho(rho),
                        a.qp_for_rho_reference(rho),
                        "gamma {gamma} clamp ({min_qp},{max_qp}) rho {rho}"
                    );
                }
            }
        }
    }

    #[test]
    fn lut_has_at_most_52_entries() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        let segments = &a.table.as_ref().unwrap().segments;
        assert!(segments.len() <= 52, "{} segments", segments.len());
        // The paper configuration produces the full QP range, so all 52 values appear.
        assert_eq!(segments.len(), 52);
    }

    #[test]
    fn non_monotone_gamma_falls_back_to_reference() {
        // γ ≤ 0 makes Eq. 2 non-decreasing (or constant) in ρ; the table builder declines
        // and the allocator answers through the reference path.
        for gamma in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let a = QpAllocator::new(QpAllocatorConfig::with_gamma(gamma));
            assert!(a.table.is_none(), "gamma {gamma}");
            for rho in [-1.0, -0.3, 0.0, 0.7, 1.0] {
                assert_eq!(a.qp_for_rho(rho), a.qp_for_rho_reference(rho));
            }
        }
    }

    #[test]
    fn out_of_range_and_non_finite_rho_match_reference() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        for rho in [7.0, -7.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(a.qp_for_rho(rho), a.qp_for_rho_reference(rho), "rho {rho}");
        }
    }

    #[test]
    fn allocate_resamples_and_maps() {
        let patch_grid = GridDims::for_frame(256, 128, 64);
        let importance = ImportanceMap::new(
            patch_grid,
            256,
            128,
            vec![1.0, 0.5, 0.0, -0.5, -1.0, 0.9, -0.9, 0.1],
        );
        let allocator = QpAllocator::new(QpAllocatorConfig::paper());
        // Same grid: direct mapping.
        let map = allocator.allocate(&importance, patch_grid);
        assert_eq!(map.get(0, 0).value(), 0);
        assert_eq!(map.get(1, 0).value(), 51);
        // Finer encoder grid: values are replicated onto sub-cells.
        let fine_grid = GridDims::for_frame(256, 128, 32);
        let fine = allocator.allocate(&importance, fine_grid);
        assert_eq!(fine.dims(), fine_grid);
        assert_eq!(fine.get(0, 0).value(), 0);
        assert_eq!(fine.get(0, 1).value(), 0);
    }

    #[test]
    fn allocate_into_matches_allocate_and_reuses_the_buffer() {
        let patch_grid = GridDims::for_frame(256, 128, 64);
        let importance = ImportanceMap::new(
            patch_grid,
            256,
            128,
            vec![1.0, 0.5, 0.0, -0.5, -1.0, 0.9, -0.9, 0.1],
        );
        let allocator = QpAllocator::new(QpAllocatorConfig::paper());
        let mut out = QpMap::empty();
        // Same grid and a finer grid, interleaved, through the same reused buffer.
        for grid in [
            patch_grid,
            GridDims::for_frame(256, 128, 32),
            patch_grid,
            GridDims::for_frame(256, 128, 16),
        ] {
            allocator.allocate_into(&importance, grid, &mut out);
            assert_eq!(out, allocator.allocate(&importance, grid));
        }
    }

    #[test]
    fn out_of_range_rho_is_clamped() {
        let a = QpAllocator::new(QpAllocatorConfig::paper());
        assert_eq!(a.qp_for_rho(7.0).value(), 0);
        assert_eq!(a.qp_for_rho(-7.0).value(), 51);
    }
}
