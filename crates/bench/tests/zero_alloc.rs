//! Proof that the reuse APIs make *every* per-frame hot path allocation-free after warmup:
//! a counting global allocator observes zero allocations across many post-warmup iterations
//! of `Packetizer::packetize_into`, `ClipModel::correlation_map_with`,
//! `QpAllocator::allocate_into` (Eq. 2), `Encoder::encode_into`, `Decoder::decode_into`,
//! and the full `ChatSession::run_turn` pipeline (CLIP → QP → encode → packetize → decode →
//! MLLM respond).
//!
//! This target sets `harness = false` (a plain `main`) so the process has exactly one
//! thread of its own: libtest's harness threads allocate sporadically and would pollute
//! the global counter (observed as a rare flaky nonzero count when this ran under
//! `#[test]`). The `MiniPool` workers spawned for the parallel sections below are fine:
//! between sections they park on a condvar, and during sections they run exactly the
//! allocation-free per-frame code this test is counting.
//!
//! The pool size for the parallel sections comes from `AIVC_POOL_SIZE` (CI runs both a
//! 1-worker and a multi-worker configuration); the default exercises at least two lanes so
//! the threaded dispatch path is always covered.

use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::PathConfig;
use aivc_par::MiniPool;
use aivc_rtc::packetizer::{OutgoingFrame, Packetizer};
use aivc_scene::templates::{basketball_game, dog_park};
use aivc_scene::{Frame, SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, ClipParScratch, ClipScratch, TextQuery};
use aivc_sim::SimDuration;
use aivc_sim::{EventQueue, SimTime};
use aivc_videocodec::{
    DecodeScratch, DecodedFrame, Decoder, EncodeParScratch, EncodeScratch, EncodedFrame, Encoder,
    EncoderConfig, QpMap,
};
use aivchat_core::{
    ChatServer, ChatSession, Conversation, ConversationChatServer, NetSessionOptions, QpAllocator,
    QpAllocatorConfig,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    // --- the simulation kernel: once the heap/slab have reached their high-water mark of
    // concurrently pending events, schedule/cancel/pop cycles allocate nothing — the
    // steady-state contract long-lived conversations rely on.
    let mut queue: EventQueue<u64> = EventQueue::new();
    for round in 0..3u64 {
        let ids: Vec<_> = (0..64)
            .map(|i| queue.schedule(SimTime::from_micros(round * 100 + i), i))
            .collect();
        for id in ids.iter().step_by(3) {
            queue.cancel(*id);
        }
        while queue.pop().is_some() {}
    }
    let before = allocations();
    let mut canceled_total = 0u64;
    for round in 0..1_000u64 {
        let mut cancel_me = None;
        for i in 0..64u64 {
            let id = queue.schedule(SimTime::from_micros(round * 100 + i), i);
            if i % 3 == 0 {
                // Cancel it one iteration later, so the tombstone-skip path runs too.
                cancel_me = Some(id);
            } else if let Some(victim) = cancel_me.take() {
                assert!(queue.cancel(victim));
                canceled_total += 1;
            }
        }
        while let Some((t, e)) = queue.pop() {
            black_box((t, e));
        }
    }
    assert!(
        canceled_total >= 20_000,
        "the measured loop must actually exercise cancel (got {canceled_total})"
    );
    let kernel_allocs = allocations() - before;
    assert_eq!(
        kernel_allocs, 0,
        "sim kernel allocated {kernel_allocs} times across 1000 post-warmup schedule/cancel/pop rounds"
    );

    // --- packetize_into: warm the buffer up to the largest frame, then count.
    let mut packetizer = Packetizer::default();
    let mut packets = Vec::new();
    let frame = OutgoingFrame {
        frame_id: 1,
        capture_ts_us: 0,
        size_bytes: 100_000,
        is_keyframe: true,
    };
    for _ in 0..3 {
        packetizer.packetize_into(&frame, &mut packets);
    }
    let before = allocations();
    for _ in 0..1_000 {
        packetizer.packetize_into(black_box(&frame), &mut packets);
        black_box(packets.len());
    }
    let packetize_allocs = allocations() - before;
    assert_eq!(
        packetize_allocs, 0,
        "packetize_into allocated {packetize_allocs} times across 1000 post-warmup iterations"
    );

    // --- correlation_map_with: warm the scratch (query memo + buffers), then count.
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frame = source.frame(0);
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words(
        "Could you tell me the present score of the game?",
        model.ontology(),
    );
    let mut scratch = ClipScratch::new();
    for _ in 0..3 {
        let _ = model.correlation_map_with(&frame, &query, &mut scratch);
    }
    let before = allocations();
    for _ in 0..25 {
        let map = model.correlation_map_with(black_box(&frame), &query, &mut scratch);
        black_box(map.values().len());
    }
    let clip_allocs = allocations() - before;
    assert_eq!(
        clip_allocs, 0,
        "correlation_map_with allocated {clip_allocs} times across 25 post-warmup iterations"
    );

    // --- and the scratch stays allocation-free across frames of the same turn once every
    // frame in the window has been visited (multi-frame warmup, multi-frame measure).
    let frames: Vec<_> = (0..4).map(|i| source.frame(i * 15)).collect();
    for f in &frames {
        let _ = model.correlation_map_with(f, &query, &mut scratch);
    }
    let before = allocations();
    for _ in 0..5 {
        for f in &frames {
            let _ = black_box(model.correlation_map_with(f, &query, &mut scratch));
        }
    }
    let turn_allocs = allocations() - before;
    assert_eq!(
        turn_allocs, 0,
        "multi-frame turn allocated {turn_allocs} times after warmup"
    );

    // --- allocate_into (Eq. 2): the threshold-table allocator over a 1080p CTU grid.
    let encoder = Encoder::new(EncoderConfig::default());
    let grid = encoder.grid_for(&frame);
    let allocator = QpAllocator::new(QpAllocatorConfig::paper());
    let importance = model.correlation_map(&frame, &query);
    let mut qp_map = QpMap::empty();
    for _ in 0..3 {
        allocator.allocate_into(&importance, grid, &mut qp_map);
    }
    let before = allocations();
    for _ in 0..1_000 {
        allocator.allocate_into(black_box(&importance), grid, &mut qp_map);
        black_box(qp_map.values().len());
    }
    let eq2_allocs = allocations() - before;
    assert_eq!(
        eq2_allocs, 0,
        "allocate_into allocated {eq2_allocs} times across 1000 post-warmup iterations"
    );

    // --- encode_into: a 1080p ROI encode through a warmed scratch (coverage-Arc cache hits).
    let mut encode_scratch = EncodeScratch::new();
    let mut encoded = EncodedFrame::placeholder();
    for _ in 0..3 {
        encoder.encode_into(&frame, &qp_map, &mut encode_scratch, &mut encoded);
    }
    let before = allocations();
    for _ in 0..100 {
        encoder.encode_into(black_box(&frame), &qp_map, &mut encode_scratch, &mut encoded);
        black_box(encoded.total_bytes());
    }
    let encode_allocs = allocations() - before;
    assert_eq!(
        encode_allocs, 0,
        "encode_into allocated {encode_allocs} times across 100 post-warmup iterations"
    );

    // --- decode_into: the full-frame decode of the same 1080p frame.
    let mut decode_scratch = DecodeScratch::new();
    let mut decoded = DecodedFrame::placeholder();
    let decoder = Decoder::new();
    let total = encoded.total_bytes();
    for _ in 0..3 {
        decoder.decode_into(&encoded, &[(0, total)], None, &mut decode_scratch, &mut decoded);
    }
    let before = allocations();
    for _ in 0..200 {
        decoder.decode_into(
            black_box(&encoded),
            &[(0, total)],
            None,
            &mut decode_scratch,
            &mut decoded,
        );
        black_box(decoded.blocks.len());
    }
    let decode_allocs = allocations() - before;
    assert_eq!(
        decode_allocs, 0,
        "decode_into allocated {decode_allocs} times across 200 post-warmup iterations"
    );

    // --- the full chat turn: a long-lived ChatSession over a 4-frame 1080p window,
    // CLIP (incremental) → Eq. 2 → ROI encode → packetize → decode → MLLM respond.
    let turn_frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
    let mut session = ChatSession::with_defaults(3);
    for _ in 0..2 {
        let _ = session.run_turn(&turn_frames, &question);
    }
    let before = allocations();
    for _ in 0..10 {
        let report = session.run_turn(black_box(&turn_frames), &question);
        black_box(report.answer.visual_tokens);
    }
    let turn_allocs = allocations() - before;
    assert_eq!(
        turn_allocs, 0,
        "ChatSession::run_turn allocated {turn_allocs} times across 10 post-warmup turns"
    );

    // --- the data-parallel paths: same hot loops spread across a MiniPool. Pool and lane
    // scratches are part of warmup; post-warmup parallel sections must not allocate either
    // (raw-pointer job dispatch, per-lane scratches created once, static chunk→lane
    // mapping keeping every lane's caches warm).
    let pool_lanes = MiniPool::env_lanes_or(MiniPool::available_lanes().max(2));
    let pool = MiniPool::new(pool_lanes);

    let mut clip_par = ClipParScratch::new();
    for _ in 0..3 {
        let _ = model.correlation_map_par(&frame, &query, &pool, &mut clip_par);
    }
    let before = allocations();
    for _ in 0..25 {
        let map = model.correlation_map_par(black_box(&frame), &query, &pool, &mut clip_par);
        black_box(map.values().len());
    }
    let clip_par_allocs = allocations() - before;
    assert_eq!(
        clip_par_allocs, 0,
        "correlation_map_par ({pool_lanes} lanes) allocated {clip_par_allocs} times across 25 post-warmup iterations"
    );

    let mut encode_par = EncodeParScratch::new();
    let mut encoded_par = EncodedFrame::placeholder();
    for _ in 0..3 {
        encoder.encode_into_par(&frame, &qp_map, &pool, &mut encode_par, &mut encoded_par);
    }
    let before = allocations();
    for _ in 0..100 {
        encoder.encode_into_par(
            black_box(&frame),
            &qp_map,
            &pool,
            &mut encode_par,
            &mut encoded_par,
        );
        black_box(encoded_par.total_bytes());
    }
    let encode_par_allocs = allocations() - before;
    assert_eq!(
        encode_par_allocs, 0,
        "encode_into_par ({pool_lanes} lanes) allocated {encode_par_allocs} times across 100 post-warmup iterations"
    );
    assert_eq!(
        encoded_par, encoded,
        "parallel encode output diverged from the sequential output"
    );

    // --- the multi-session ChatServer: steady-state turns across the pool. After each
    // session's warmup turn, a whole server turn (8 sessions × the full pipeline) performs
    // zero heap allocations — reports are plain values overwritten in place.
    let mut server = ChatServer::new(pool_lanes, 8, 3);
    for _ in 0..2 {
        server.run_turns(&turn_frames, &question);
    }
    let before = allocations();
    for _ in 0..5 {
        server.run_turns(black_box(&turn_frames), &question);
        black_box(server.report(0).packets);
    }
    let server_allocs = allocations() - before;
    assert_eq!(
        server_allocs, 0,
        "ChatServer::run_turns ({pool_lanes} lanes, 8 sessions) allocated {server_allocs} times across 5 post-warmup turns"
    );

    // --- a warm networked Conversation turn: think gap → captures → rate-adapted ROI
    // encodes → packetize + FEC protect → pace → emulated link → reassembly → decode →
    // MLLM answer → report + retirement, all through the discrete-event loop. On a clean
    // (lossless, jitter-free) path the steady state touches only ring buffers and
    // reusable scratches, so post-warmup turns are allocation-free end to end. Loss
    // recovery (NACK lists, retransmission batches) is event-driven repair work, not
    // steady state, and is deliberately outside this guarantee.
    let mut options = NetSessionOptions::ai_oriented(7, PathConfig::paper_section_2_2(0.0));
    options.capture_fps = 12.0;
    let mut conversation = Conversation::with_defaults(options, SimDuration::from_millis(200));
    for _ in 0..3 {
        let _ = conversation.run_turn(&turn_frames, &question);
    }
    let measured_turns = 10;
    conversation.reserve_turns(measured_turns, turn_frames.len());
    let before = allocations();
    for _ in 0..measured_turns {
        let report = conversation.run_turn_in_place(black_box(&turn_frames), &question);
        black_box(report.answer.visual_tokens);
    }
    let conversation_allocs = allocations() - before;
    assert_eq!(
        conversation_allocs, 0,
        "Conversation::run_turn_in_place allocated {conversation_allocs} times across {measured_turns} post-warmup turns"
    );

    // --- the think gap: between turns the conversation keeps the transport alive —
    // matured per-packet feedback folds into GCC straight out of the pending ring
    // ([`FeedbackFold`]), receiver polls re-arm, and delivery runs recycle through the
    // transport's buffer pool. None of that may allocate: a fleet spends most of its
    // wall-clock inside think gaps, so a per-gap allocation would dominate steady state.
    let think_cycles = 10;
    conversation.reserve_turns(think_cycles, turn_frames.len());
    for _ in 0..3 {
        conversation.think(SimDuration::from_millis(400));
    }
    let before = allocations();
    for _ in 0..think_cycles {
        let report = conversation.run_turn_in_place(black_box(&turn_frames), &question);
        black_box(report.answer.visual_tokens);
        conversation.think(black_box(SimDuration::from_millis(400)));
    }
    let think_allocs = allocations() - before;
    assert_eq!(
        think_allocs, 0,
        "Conversation turns with think gaps allocated {think_allocs} times across {think_cycles} post-warmup cycles"
    );

    // --- the lane-sharded ConversationChatServer: several long-lived conversations
    // multiplexed onto one kernel per pool lane, with the always-on metrics layer
    // engaged. Steady-state fleet turns are allocation-free: shared event queues sit at
    // their high-water mark, per-turn plans reuse a retained buffer, reports are
    // overwritten in place, and every counter bump is a relaxed atomic RMW — no heap.
    let conv_template = {
        let mut o = NetSessionOptions::ai_oriented(9, PathConfig::paper_section_2_2(0.0));
        o.capture_fps = 12.0;
        o
    };
    let mut conv_server =
        ConversationChatServer::new(pool_lanes, 4, conv_template, SimDuration::from_millis(200));
    for _ in 0..3 {
        conv_server.run_turns(&turn_frames, &question);
    }
    let measured_server_turns = 5;
    conv_server.reserve_turns(measured_server_turns, turn_frames.len());
    let before = allocations();
    for _ in 0..measured_server_turns {
        conv_server.run_turns(black_box(&turn_frames), &question);
        black_box(conv_server.report(0).frames_delivered);
    }
    let sharded_allocs = allocations() - before;
    assert_eq!(
        sharded_allocs, 0,
        "ConversationChatServer::run_turns ({pool_lanes} lanes, 4 sessions) allocated \
         {sharded_allocs} times across {measured_server_turns} post-warmup fleet turns"
    );

    // Reading the always-on counters is also heap-free: snapshots are plain Copy values.
    let before = allocations();
    let snap = conv_server.fleet_metrics();
    black_box(snap.packets_sent);
    black_box(conv_server.metrics_snapshot(0).frames_sent);
    let snapshot_allocs = allocations() - before;
    assert_eq!(
        snapshot_allocs, 0,
        "metrics snapshots allocated {snapshot_allocs} times"
    );

    // Sanity: the counter itself works (a deliberate allocation is observed).
    let before = allocations();
    let v: Vec<u64> = black_box((0..100).collect());
    black_box(v.len());
    assert!(allocations() > before, "counting allocator is not counting");

    // And switching scenes/queries still works correctly with a warmed scratch (values
    // checked against the naive path elsewhere; here we just exercise the invalidation).
    let dog = VideoSource::new(dog_park(1), SourceConfig::fps30(5.0)).frame(0);
    let other = TextQuery::from_words("Infer what season it might be in the video", model.ontology());
    let map = model.correlation_map_with(&dog, &other, &mut scratch);
    assert!(map.values().iter().all(|v| (-1.0..=1.0).contains(v)));

    println!("zero_alloc: hot paths are allocation-free after warmup ... ok");
}
