//! Fleet-scale serving checks for the lane-sharded [`ConversationChatServer`]:
//!
//! 1. **Bit-identity at scale** — a large fleet run is byte-for-byte identical across
//!    pool sizes 1, 2 and 8 (the per-lane shared-kernel merge must not perturb any
//!    session, per the contract in `server.rs`);
//! 2. **Exact metrics reconciliation** — the always-on atomic rollup equals the
//!    per-session `NetTurnReport` sums, at every pool size;
//! 3. **Throughput smoke** — the fleet sustains a sane session-turns/sec rate
//!    (regression-gated properly by `pipeline_throughput_1024_sessions` in
//!    `BENCH_hotpaths.json`; this is a works-at-all check, not a perf gate);
//! 4. **Bytes-budget audit** — live heap bytes per warm conversation stay under a
//!    documented ceiling, so 10k+ sessions have a predictable footprint.
//!
//! The fleet size defaults to 128 sessions so the check is always on; CI's
//! `serving-suite` job exports `AIVC_SERVING_SCALE=1` to run the full 1024-session
//! configuration (release profile — a debug run of 1024 conversations is pointlessly
//! slow).
//!
//! Like `zero_alloc.rs`, this target sets `harness = false`: the byte-counting global
//! allocator must not observe libtest's harness threads.

use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::PathConfig;
use aivc_scene::templates::basketball_game;
use aivc_scene::{Frame, SourceConfig, VideoSource};
use aivc_sim::SimDuration;
use aivchat_core::{ConversationChatServer, NetSessionOptions, SessionSnapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

/// Tracks *live* heap bytes (alloc adds, dealloc subtracts), so a before/after diff
/// around fleet construction + warmup is the fleet's resident heap footprint.
struct ByteCounter;

static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for ByteCounter {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: ByteCounter = ByteCounter;

fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

fn template(seed: u64) -> NetSessionOptions {
    let mut options = NetSessionOptions::ai_oriented(seed, PathConfig::paper_section_2_2(0.01));
    options.capture_fps = 8.0;
    options
}

fn turn_window(source: &VideoSource, turn: usize) -> Vec<Frame> {
    (0..4)
        .map(|i| source.frame(((turn * 4 + i) * 11 % 170) as u64))
        .collect()
}

fn main() {
    let scale = std::env::var("AIVC_SERVING_SCALE").as_deref() == Ok("1");
    let sessions: usize = if scale { 1024 } else { 128 };
    let turns = 2;
    let think = SimDuration::from_millis(300);
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(6.0));
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::FreeResponse);
    let windows: Vec<Vec<Frame>> = (0..turns).map(|t| turn_window(&source, t)).collect();

    // --- 1 + 2: bit-identity and exact reconciliation across pool sizes. ---
    let mut per_pool_reports = Vec::new();
    let mut per_pool_serving = Vec::new();
    for pool_size in [1usize, 2, 8] {
        let mut server = ConversationChatServer::new(pool_size, sessions, template(90), think);
        let start = Instant::now();
        for window in &windows {
            server.run_turns(window, &question);
        }
        let elapsed = start.elapsed();

        // Reconciliation: the atomic rollup equals per-session report sums, exactly.
        let mut fleet = SessionSnapshot::default();
        for i in 0..sessions {
            let snap = server.metrics_snapshot(i);
            let report = server.conversation_report(i);
            let sum = |f: fn(&aivchat_core::NetTurnReport) -> u64| report.turns.iter().map(f).sum::<u64>();
            assert_eq!(snap.frames_sent, sum(|t| t.frames_sent as u64), "session {i}");
            assert_eq!(snap.frames_delivered, sum(|t| t.frames_delivered as u64));
            assert_eq!(snap.fec_recovered_frames, sum(|t| t.fec_recovered_frames));
            assert_eq!(snap.packets_lost, sum(|t| t.packets_lost));
            assert_eq!(snap.retransmissions_sent, sum(|t| t.retransmissions_sent));
            assert_eq!(snap.frames_shed, report.resilience.frames_shed);
            assert_eq!(snap.watchdog_fallbacks, report.resilience.watchdog_fallbacks);
            fleet.accumulate(&snap);
        }
        assert_eq!(server.fleet_metrics(), fleet, "pool {pool_size}");
        let serving = server.serving_report();
        assert_eq!(serving.counters, fleet, "pool {pool_size}");
        assert_eq!(serving.turns_completed, sessions * turns);

        // --- 3: throughput smoke (the gated number lives in BENCH_hotpaths.json). ---
        let session_turns_per_sec = (sessions * turns) as f64 / elapsed.as_secs_f64();
        println!(
            "serving_scale: pool {pool_size}, {sessions} sessions x {turns} turns: \
             {session_turns_per_sec:.0} session-turns/sec"
        );
        assert!(
            session_turns_per_sec > 50.0,
            "fleet throughput collapsed: {session_turns_per_sec:.1} session-turns/sec"
        );

        per_pool_reports.push(
            (0..sessions)
                .map(|i| server.conversation_report(i))
                .collect::<Vec<_>>(),
        );
        per_pool_serving.push(serving);
    }
    assert_eq!(
        per_pool_reports[0], per_pool_reports[1],
        "pool 2 diverged from pool 1"
    );
    assert_eq!(
        per_pool_reports[0], per_pool_reports[2],
        "pool 8 diverged from pool 1"
    );
    assert_eq!(per_pool_serving[0].counters, per_pool_serving[1].counters);
    assert_eq!(per_pool_serving[0].counters, per_pool_serving[2].counters);
    println!(
        "serving_scale: {} sessions bit-identical across pools 1/2/8",
        sessions
    );

    // --- 4: bytes-budget audit. Live heap per warm conversation (construction + the
    // turns above all retained state: rings, scratches, event queues at their high-water
    // mark, report history). The ceiling is the documented per-session budget README's
    // serving-scale table quotes — a 10k-session box needs ceiling x 10k of headroom.
    let audit_sessions = if scale { 256 } else { 64 };
    let before = live_bytes();
    let mut server = ConversationChatServer::new(2, audit_sessions, template(17), think);
    for window in &windows {
        server.run_turns(window, &question);
    }
    let per_session = (live_bytes() - before) as f64 / audit_sessions as f64;
    println!(
        "serving_scale: {:.0} KiB live heap per warm conversation ({audit_sessions} sessions)",
        per_session / 1024.0
    );
    const PER_SESSION_CEILING_BYTES: f64 = 1_500.0 * 1024.0;
    assert!(
        per_session > 0.0 && per_session < PER_SESSION_CEILING_BYTES,
        "per-conversation heap {:.0} KiB outside budget (ceiling {:.0} KiB)",
        per_session / 1024.0,
        PER_SESSION_CEILING_BYTES / 1024.0
    );
    drop(server);

    println!("serving_scale: fleet checks passed ({sessions} sessions) ... ok");
}
