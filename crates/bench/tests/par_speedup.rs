//! The multi-core smoke gate the ROADMAP asked for: on a runner with more than one core,
//! the data-parallel stage forms must actually be faster than their sequential
//! equivalents — `correlation_map_par` and `encode_into_par` at a fixed 4-lane pool must
//! each achieve ≥ 1.5× the sequential throughput. On a single-core runner the parallel
//! paths degenerate to sequential delegation plus dispatch overhead, so the gate skips
//! (the committed `BENCH_hotpaths.json` was recorded on such a box — see ROADMAP.md).
//!
//! This is a *smoke* gate, not a benchmark: medians over short batches, a generous
//! threshold (the PR 3 targets were ≥ 2.5× CLIP / ≥ 2× encode at 4 lanes), and
//! bit-identical outputs already proven by the equivalence property tests.

use aivc_par::MiniPool;
use aivc_scene::{SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, ClipParScratch, ClipScratch, TextQuery};
use aivc_videocodec::{EncodeParScratch, EncodeScratch, EncodedFrame, Encoder, EncoderConfig, Qp, QpMap};
use std::hint::black_box;
use std::time::Instant;

/// Median seconds per call of `f` over `reps` timed batches of `batch` calls.
fn median_secs_per_call(reps: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..batch {
        f();
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

#[test]
fn par_stage_forms_speed_up_at_four_lanes_on_multicore() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        println!("skipping par speedup gate: runner reports {cores} core(s)");
        return;
    }
    const LANES: usize = 4;
    // The full ≥1.5x gate needs the 4-lane pool to actually have 4 cores under it. On a
    // 2–3-core runner the pool is oversubscribed (theoretical ceiling ≤ cores), so the
    // gate degrades to a "parallel must still win" sanity bound instead of hard-failing
    // CI on scheduler noise.
    let target: f64 = if cores >= LANES { 1.5 } else { 1.1 };
    let pool = MiniPool::new(LANES);
    let source = VideoSource::new(
        aivc_scene::templates::basketball_game(1),
        SourceConfig::fps30(5.0),
    );
    let frame = source.frame(0);
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words(
        "Could you tell me the present score of the game?",
        model.ontology(),
    );

    // --- Eq. 1: full correlation map, sequential vs 4-lane parallel.
    let mut seq_scratch = ClipScratch::new();
    let seq = median_secs_per_call(15, 8, || {
        black_box(model.correlation_map_with(black_box(&frame), &query, &mut seq_scratch));
    });
    let mut par_scratch = ClipParScratch::new();
    let par = median_secs_per_call(15, 8, || {
        black_box(model.correlation_map_par(black_box(&frame), &query, &pool, &mut par_scratch));
    });
    let clip_speedup = seq / par;
    println!(
        "correlation_map_par speedup at {LANES} lanes: {clip_speedup:.2}x (seq {seq:.2e}s, par {par:.2e}s)"
    );

    // --- ROI encode, sequential vs 4-lane parallel.
    let encoder = Encoder::new(EncoderConfig::default());
    let qp_map = QpMap::uniform(encoder.grid_for(&frame), Qp::new(32));
    let mut seq_scratch = EncodeScratch::new();
    let mut seq_out = EncodedFrame::placeholder();
    let seq = median_secs_per_call(15, 8, || {
        encoder.encode_into(black_box(&frame), &qp_map, &mut seq_scratch, &mut seq_out);
        black_box(seq_out.total_bytes());
    });
    let mut par_scratch = EncodeParScratch::new();
    let mut par_out = EncodedFrame::placeholder();
    let par = median_secs_per_call(15, 8, || {
        encoder.encode_into_par(black_box(&frame), &qp_map, &pool, &mut par_scratch, &mut par_out);
        black_box(par_out.total_bytes());
    });
    let encode_speedup = seq / par;
    println!(
        "encode_into_par speedup at {LANES} lanes: {encode_speedup:.2}x (seq {seq:.2e}s, par {par:.2e}s)"
    );

    assert!(
        clip_speedup >= target,
        "correlation_map_par speedup {clip_speedup:.2}x below the {target}x gate on a {cores}-core runner"
    );
    assert!(
        encode_speedup >= target,
        "encode_into_par speedup {encode_speedup:.2}x below the {target}x gate on a {cores}-core runner"
    );
}
