//! The hot-path measurement suite shared by the `hotpath_baseline` recorder (writes
//! `BENCH_hotpaths.json`) and the `bench_check` regression gate (re-measures and compares
//! against the committed file), so both always measure exactly the same scenarios.

use crate::{measure_hotpath, HotpathMeasurement};
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_rtc::packetizer::{OutgoingFrame, Packetizer};
use aivc_scene::templates::basketball_game;
use aivc_scene::{Concept, Frame, GridDims, Rect, Scene, SceneObject, SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, ClipScratch, TextQuery};
use aivc_videocodec::{Decoder, Encoder, EncoderConfig, Qp, QpMap};
use aivchat_core::{ChatSession, QpAllocator, QpAllocatorConfig};
use serde::{Deserialize, Serialize};
use std::hint::black_box;

/// Build profile every baseline is recorded under.
pub const PROFILE: &str = "release (lto=thin, codegen-units=1)";
/// Methodology note written into the JSON.
pub const METHODOLOGY: &str =
    "median ns/iter over 30 samples after 150 ms warmup; see aivc_bench::measure_hotpath";

/// The shape of `BENCH_hotpaths.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Build profile the numbers were recorded under.
    pub profile: String,
    /// Methodology note for readers of the JSON.
    pub methodology: String,
    /// The recorded hot-path medians.
    pub hotpaths: Vec<HotpathMeasurement>,
}

/// A 1080p scene whose two moving objects dirty ≈ 10 % of the 64-px patch grid per frame
/// step — the calibrated temporal-coherence scenario for the incremental CLIP path.
/// [`measure_all_hotpaths`] asserts the calibration before measuring.
pub fn coherence_scene() -> Scene {
    let mut scene = Scene::new("coherence-1080p", 1920, 1080).with_background(
        0.25,
        0.05,
        vec![(Concept::new("basketball-game"), 1.0)],
    );
    // 384x384 px object moving one 64-px cell per frame at 30 FPS.
    scene.add_object(
        SceneObject::new(1, "player", Rect::new(256, 256, 384, 384))
            .with_concept("player", 1.0)
            .with_detail(0.5)
            .with_texture(0.6)
            .with_motion(0.7, (1920.0, 0.0)),
    );
    // 128x128 px object moving half a cell per frame, vertically.
    scene.add_object(
        SceneObject::new(2, "scoreboard", Rect::new(1200, 700, 128, 128))
            .with_concept("scoreboard", 1.0)
            .with_detail(0.9)
            .with_texture(0.8)
            .with_motion(0.3, (0.0, 960.0)),
    );
    scene
}

/// Fraction of 64-px grid cells overlapped by the union of each object's placements in the
/// two frames — the dirty rate the incremental path pays per step between them.
pub fn dirty_fraction(a: &Frame, b: &Frame) -> f64 {
    let dims = GridDims::for_frame(a.width, a.height, 64);
    let mut dirty = vec![false; dims.len()];
    for (pa, pb) in a.placements.iter().zip(&b.placements) {
        if pa.region == pb.region {
            continue;
        }
        for rect in [&pa.region, &pb.region] {
            for row in 0..dims.rows {
                for col in 0..dims.cols {
                    if dims.cell_rect(row, col, a.width, a.height).coverage_by(rect) > 0.0 {
                        dirty[dims.index(row, col)] = true;
                    }
                }
            }
        }
    }
    dirty.iter().filter(|d| **d).count() as f64 / dims.len() as f64
}

/// Measures every tracked hot path (the same set `benches/hotpaths.rs` tracks), in the
/// order they appear in `BENCH_hotpaths.json`.
pub fn measure_all_hotpaths(samples: usize, target_sample_ms: f64) -> Vec<HotpathMeasurement> {
    let mut hotpaths = Vec::new();

    // 1. RTP packetization of a 100 kB keyframe (reuse API; zero allocations/iter).
    {
        let mut packetizer = Packetizer::default();
        let mut packets = Vec::new();
        let frame = OutgoingFrame {
            frame_id: 1,
            capture_ts_us: 0,
            size_bytes: 100_000,
            is_keyframe: true,
        };
        hotpaths.push(measure_hotpath(
            "packetize_100kB_frame",
            samples,
            target_sample_ms,
            || {
                packetizer.packetize_into(black_box(&frame), &mut packets);
                packets.len()
            },
        ));
    }

    // 2. Uniform-QP encode of a 1080p frame.
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let encoder = Encoder::new(EncoderConfig::default());
        hotpaths.push(measure_hotpath(
            "encode_1080p_frame_uniform_qp",
            samples,
            target_sample_ms,
            || black_box(encoder.encode_uniform(black_box(&frame), Qp::new(32))),
        ));
    }

    // 2b. Full-frame decode (coverage lists Arc-shared with the encoded blocks).
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let encoder = Encoder::new(EncoderConfig::default());
        let encoded = encoder.encode_uniform(&source.frame(0), Qp::new(32));
        let decoder = Decoder::new();
        hotpaths.push(measure_hotpath(
            "decode_complete_1080p",
            samples,
            target_sample_ms,
            || black_box(decoder.decode_complete(black_box(&encoded), None)),
        ));
    }

    // 3. CLIP correlation map over the 1080p patch grid (scratch API; zero allocations/iter).
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words(
            "Could you tell me the present score of the game?",
            model.ontology(),
        );
        let mut scratch = ClipScratch::new();
        hotpaths.push(measure_hotpath(
            "clip_correlation_map_1080p",
            samples,
            target_sample_ms,
            || {
                let map = model.correlation_map_with(black_box(&frame), &query, &mut scratch);
                map.values().len()
            },
        ));
    }

    // 3b. Incremental CLIP correlation at the calibrated ~10 % dirty rate (two alternating
    // frames of a moving 1080p scene; only motion-dirtied patches are recomputed).
    {
        let source = VideoSource::new(coherence_scene(), SourceConfig::fps30(1.0));
        let frame_a = source.frame(0);
        let frame_b = source.frame(1);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words("Where is the player?", model.ontology());
        let frac = dirty_fraction(&frame_a, &frame_b);
        assert!(
            (0.06..=0.15).contains(&frac),
            "coherence scene drifted out of calibration: dirty fraction {frac:.3}"
        );
        println!(
            "(coherence scenario: {:.1} % of patches dirty per step)",
            frac * 100.0
        );
        let mut scratch = ClipScratch::new();
        let _ = model.correlation_map_coherent(&frame_a, &query, &mut scratch);
        let mut toggle = false;
        hotpaths.push(measure_hotpath(
            "clip_correlation_update_10pct_dirty",
            samples,
            target_sample_ms,
            || {
                toggle = !toggle;
                let frame = if toggle { &frame_b } else { &frame_a };
                let map = model.correlation_map_coherent(black_box(frame), &query, &mut scratch);
                map.values().len()
            },
        ));
    }

    // 4. Eq. 2 QP allocation from an importance map (reuse API + threshold-table allocator;
    // zero allocations/iter).
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words("How many spectators can be seen?", model.ontology());
        let importance = model.correlation_map(&frame, &query);
        let encoder = Encoder::new(EncoderConfig::default());
        let grid = encoder.grid_for(&frame);
        let allocator = QpAllocator::new(QpAllocatorConfig::paper());
        let mut out = QpMap::empty();
        hotpaths.push(measure_hotpath(
            "eq2_qp_allocation",
            samples,
            target_sample_ms,
            || {
                allocator.allocate_into(black_box(&importance), grid, &mut out);
                out.values().len()
            },
        ));
    }

    // 5. MLLM answer over four decoded frames.
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let encoder = Encoder::new(EncoderConfig::default());
        let decoder = Decoder::new();
        let frames: Vec<_> = (0..4)
            .map(|i| {
                decoder.decode_complete(&encoder.encode_uniform(&source.frame(i * 30), Qp::new(32)), None)
            })
            .collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let chat = MllmChat::responder(1);
        hotpaths.push(measure_hotpath(
            "mllm_respond_4_frames",
            samples,
            target_sample_ms,
            || black_box(chat.respond(black_box(&question), &frames, 0)),
        ));
    }

    // 6. The full chat turn: a long-lived ChatSession over a 4-frame 1080p window running
    // CLIP (incremental) → Eq. 2 → ROI encode → packetize → decode → MLLM respond, with
    // zero post-warmup heap allocations (guarded by tests/zero_alloc.rs).
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let mut session = ChatSession::with_defaults(1);
        hotpaths.push(measure_hotpath(
            "pipeline_turn_1080p",
            samples,
            target_sample_ms,
            || {
                let report = session.run_turn(black_box(&frames), &question);
                report.answer.visual_tokens
            },
        ));
    }

    hotpaths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherence_scene_is_calibrated_near_ten_percent() {
        let source = VideoSource::new(coherence_scene(), SourceConfig::fps30(1.0));
        let frac = dirty_fraction(&source.frame(0), &source.frame(1));
        assert!((0.06..=0.15).contains(&frac), "dirty fraction {frac:.3}");
    }

    #[test]
    fn baseline_file_round_trips_through_json() {
        let file = BaselineFile {
            profile: PROFILE.to_string(),
            methodology: METHODOLOGY.to_string(),
            hotpaths: vec![HotpathMeasurement {
                name: "x".to_string(),
                median_ns_per_iter: 12.5,
                iters_per_sample: 3,
                samples: 30,
            }],
        };
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.hotpaths.len(), 1);
        assert_eq!(back.hotpaths[0].name, "x");
        assert_eq!(back.hotpaths[0].median_ns_per_iter, 12.5);
    }
}
