//! The hot-path measurement suite shared by the `hotpath_baseline` recorder (writes
//! `BENCH_hotpaths.json`) and the `bench_check` regression gate (re-measures and compares
//! against the committed file), so both always measure exactly the same scenarios.

use crate::{measure_hotpath, HotpathMeasurement};
use aivc_mllm::{MllmChat, MllmScratch, Question, QuestionFormat};
use aivc_netsim::PathConfig;
use aivc_par::MiniPool;
use aivc_rtc::packetizer::{OutgoingFrame, Packetizer};
use aivc_rtc::rtp::RtpPacket;
use aivc_scene::templates::basketball_game;
use aivc_scene::{Concept, Frame, GridDims, Rect, Scene, SceneObject, SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, ClipParScratch, ClipScratch, TextQuery};
use aivc_sim::SimDuration;
use aivc_videocodec::{
    DecodeScratch, DecodedFrame, Decoder, EncodeParScratch, EncodeScratch, EncodedFrame, Encoder,
    EncoderConfig, Qp, QpMap, RatePlan,
};
use aivchat_core::{
    ChatServer, ChatSession, Conversation, ConversationChatServer, NetSessionOptions, QpAllocator,
    QpAllocatorConfig,
};
use serde::{Deserialize, Serialize};
use std::hint::black_box;

/// Build profile every baseline is recorded under.
pub const PROFILE: &str = "release (lto=thin, codegen-units=1)";
/// Methodology note written into the JSON.
pub const METHODOLOGY: &str =
    "median ns/iter over 30 samples after 150 ms warmup; see aivc_bench::measure_hotpath";

/// The shape of `BENCH_hotpaths.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineFile {
    /// Build profile the numbers were recorded under.
    pub profile: String,
    /// Methodology note for readers of the JSON.
    pub methodology: String,
    /// Pool lanes the `_par` and `pipeline_throughput_*` entries were recorded with
    /// ([`MiniPool::env_lanes`] at record time) — parallel medians are only comparable
    /// across runs with the same lane count.
    pub pool_lanes: usize,
    /// The recorded hot-path medians (gated by `bench_check`).
    pub hotpaths: Vec<HotpathMeasurement>,
    /// The per-stage decomposition of `pipeline_turn_1080p` (documentation of the turn's
    /// real budget — see DESIGN.md §"The chat-turn budget"; not regression-gated, since
    /// every stage is already gated individually above).
    pub turn_breakdown: Vec<HotpathMeasurement>,
    /// The per-stage decomposition of `conversation_turn_warm` (documentation of where
    /// the warm networked turn's microsecond goes — see DESIGN.md §"Where the warm
    /// turn's microsecond goes"; not regression-gated: the whole warm turn is gated
    /// above, and these stages exist to explain it). The committed baseline is always
    /// re-recorded whole when this section changes, so the field is required.
    pub warm_turn_breakdown: Vec<HotpathMeasurement>,
}

/// A 1080p scene whose two moving objects dirty ≈ 10 % of the 64-px patch grid per frame
/// step — the calibrated temporal-coherence scenario for the incremental CLIP path.
/// [`measure_all_hotpaths`] asserts the calibration before measuring.
pub fn coherence_scene() -> Scene {
    let mut scene = Scene::new("coherence-1080p", 1920, 1080).with_background(
        0.25,
        0.05,
        vec![(Concept::new("basketball-game"), 1.0)],
    );
    // 384x384 px object moving one 64-px cell per frame at 30 FPS.
    scene.add_object(
        SceneObject::new(1, "player", Rect::new(256, 256, 384, 384))
            .with_concept("player", 1.0)
            .with_detail(0.5)
            .with_texture(0.6)
            .with_motion(0.7, (1920.0, 0.0)),
    );
    // 128x128 px object moving half a cell per frame, vertically.
    scene.add_object(
        SceneObject::new(2, "scoreboard", Rect::new(1200, 700, 128, 128))
            .with_concept("scoreboard", 1.0)
            .with_detail(0.9)
            .with_texture(0.8)
            .with_motion(0.3, (0.0, 960.0)),
    );
    scene
}

/// Fraction of 64-px grid cells overlapped by the union of each object's placements in the
/// two frames — the dirty rate the incremental path pays per step between them.
pub fn dirty_fraction(a: &Frame, b: &Frame) -> f64 {
    let dims = GridDims::for_frame(a.width, a.height, 64);
    let mut dirty = vec![false; dims.len()];
    for (pa, pb) in a.placements.iter().zip(&b.placements) {
        if pa.region == pb.region {
            continue;
        }
        for rect in [&pa.region, &pb.region] {
            for row in 0..dims.rows {
                for col in 0..dims.cols {
                    if dims.cell_rect(row, col, a.width, a.height).coverage_by(rect) > 0.0 {
                        dirty[dims.index(row, col)] = true;
                    }
                }
            }
        }
    }
    dirty.iter().filter(|d| **d).count() as f64 / dims.len() as f64
}

/// Measures every tracked hot path (the same set `benches/hotpaths.rs` tracks), in the
/// order they appear in `BENCH_hotpaths.json`. `pool_lanes` sizes the pool behind the
/// `_par` and `pipeline_throughput_*` entries — callers pass [`MiniPool::env_lanes`] when
/// recording and the committed file's `pool_lanes` when regression-checking, so compared
/// medians always come from equal lane counts.
pub fn measure_all_hotpaths(
    samples: usize,
    target_sample_ms: f64,
    pool_lanes: usize,
) -> Vec<HotpathMeasurement> {
    measure_hotpaths_matching(samples, target_sample_ms, pool_lanes, None)
}

/// Whether `name` is selected by the optional `--only` filter.
fn wants(only: Option<&[String]>, name: &str) -> bool {
    only.is_none_or(|names| names.iter().any(|n| n == name))
}

/// [`measure_all_hotpaths`] restricted to the entries named in `only` (all entries when
/// `None`) — the engine behind `hotpath_baseline --only <name>`, which re-records a single
/// legitimately-shifted entry without re-measuring (and re-jittering) the rest of the file.
/// Results come back in suite order regardless of the order names are given in.
pub fn measure_hotpaths_matching(
    samples: usize,
    target_sample_ms: f64,
    pool_lanes: usize,
    only: Option<&[String]>,
) -> Vec<HotpathMeasurement> {
    let mut hotpaths = Vec::new();

    // 1. RTP packetization of a 100 kB keyframe (reuse API; zero allocations/iter).
    if wants(only, "packetize_100kB_frame") {
        let mut packetizer = Packetizer::default();
        let mut packets = Vec::new();
        let frame = OutgoingFrame {
            frame_id: 1,
            capture_ts_us: 0,
            size_bytes: 100_000,
            is_keyframe: true,
        };
        hotpaths.push(measure_hotpath(
            "packetize_100kB_frame",
            samples,
            target_sample_ms,
            || {
                packetizer.packetize_into(black_box(&frame), &mut packets);
                packets.len()
            },
        ));
    }

    // 2. Uniform-QP encode of a 1080p frame.
    if wants(only, "encode_1080p_frame_uniform_qp") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let encoder = Encoder::new(EncoderConfig::default());
        hotpaths.push(measure_hotpath(
            "encode_1080p_frame_uniform_qp",
            samples,
            target_sample_ms,
            || black_box(encoder.encode_uniform(black_box(&frame), Qp::new(32))),
        ));
    }

    // 2b. Full-frame decode (coverage lists Arc-shared with the encoded blocks).
    if wants(only, "decode_complete_1080p") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let encoder = Encoder::new(EncoderConfig::default());
        let encoded = encoder.encode_uniform(&source.frame(0), Qp::new(32));
        let decoder = Decoder::new();
        hotpaths.push(measure_hotpath(
            "decode_complete_1080p",
            samples,
            target_sample_ms,
            || black_box(decoder.decode_complete(black_box(&encoded), None)),
        ));
    }

    // 3. CLIP correlation map over the 1080p patch grid (scratch API; zero allocations/iter).
    if wants(only, "clip_correlation_map_1080p") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words(
            "Could you tell me the present score of the game?",
            model.ontology(),
        );
        let mut scratch = ClipScratch::new();
        hotpaths.push(measure_hotpath(
            "clip_correlation_map_1080p",
            samples,
            target_sample_ms,
            || {
                let map = model.correlation_map_with(black_box(&frame), &query, &mut scratch);
                map.values().len()
            },
        ));
    }

    // 3b. Incremental CLIP correlation at the calibrated ~10 % dirty rate (two alternating
    // frames of a moving 1080p scene; only motion-dirtied patches are recomputed).
    if wants(only, "clip_correlation_update_10pct_dirty") {
        let source = VideoSource::new(coherence_scene(), SourceConfig::fps30(1.0));
        let frame_a = source.frame(0);
        let frame_b = source.frame(1);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words("Where is the player?", model.ontology());
        let frac = dirty_fraction(&frame_a, &frame_b);
        assert!(
            (0.06..=0.15).contains(&frac),
            "coherence scene drifted out of calibration: dirty fraction {frac:.3}"
        );
        println!(
            "(coherence scenario: {:.1} % of patches dirty per step)",
            frac * 100.0
        );
        let mut scratch = ClipScratch::new();
        let _ = model.correlation_map_coherent(&frame_a, &query, &mut scratch);
        let mut toggle = false;
        hotpaths.push(measure_hotpath(
            "clip_correlation_update_10pct_dirty",
            samples,
            target_sample_ms,
            || {
                toggle = !toggle;
                let frame = if toggle { &frame_b } else { &frame_a };
                let map = model.correlation_map_coherent(black_box(frame), &query, &mut scratch);
                map.values().len()
            },
        ));
    }

    // 4. Eq. 2 QP allocation from an importance map (reuse API + threshold-table allocator;
    // zero allocations/iter).
    if wants(only, "eq2_qp_allocation") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words("How many spectators can be seen?", model.ontology());
        let importance = model.correlation_map(&frame, &query);
        let encoder = Encoder::new(EncoderConfig::default());
        let grid = encoder.grid_for(&frame);
        let allocator = QpAllocator::new(QpAllocatorConfig::paper());
        let mut out = QpMap::empty();
        hotpaths.push(measure_hotpath(
            "eq2_qp_allocation",
            samples,
            target_sample_ms,
            || {
                allocator.allocate_into(black_box(&importance), grid, &mut out);
                out.values().len()
            },
        ));
    }

    // 5. MLLM answer over four decoded frames.
    if wants(only, "mllm_respond_4_frames") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let encoder = Encoder::new(EncoderConfig::default());
        let decoder = Decoder::new();
        let frames: Vec<_> = (0..4)
            .map(|i| {
                decoder.decode_complete(&encoder.encode_uniform(&source.frame(i * 30), Qp::new(32)), None)
            })
            .collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let chat = MllmChat::responder(1);
        hotpaths.push(measure_hotpath(
            "mllm_respond_4_frames",
            samples,
            target_sample_ms,
            || black_box(chat.respond(black_box(&question), &frames, 0)),
        ));
    }

    // 6. The full chat turn: a long-lived ChatSession over a 4-frame 1080p window running
    // CLIP (incremental) → Eq. 2 → ROI encode → packetize → decode → MLLM respond, with
    // zero post-warmup heap allocations (guarded by tests/zero_alloc.rs).
    if wants(only, "pipeline_turn_1080p") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let mut session = ChatSession::with_defaults(1);
        hotpaths.push(measure_hotpath(
            "pipeline_turn_1080p",
            samples,
            target_sample_ms,
            || {
                let report = session.run_turn(black_box(&frames), &question);
                report.answer.visual_tokens
            },
        ));
    }

    // 7. The data-parallel stage forms, on a pool of `pool_lanes` lanes. With one lane
    // both delegate to the sequential paths, so these medians double as a check that the
    // delegation adds nothing; with N lanes they measure the real speedup (the lane count
    // is recorded alongside — see `BaselineFile`).
    let pool = MiniPool::new(pool_lanes);
    if wants(only, "clip_correlation_map_1080p_par") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words(
            "Could you tell me the present score of the game?",
            model.ontology(),
        );
        let mut scratch = ClipParScratch::new();
        hotpaths.push(measure_hotpath(
            "clip_correlation_map_1080p_par",
            samples,
            target_sample_ms,
            || {
                let map = model.correlation_map_par(black_box(&frame), &query, &pool, &mut scratch);
                map.values().len()
            },
        ));
    }
    if wants(only, "encode_1080p_frame_uniform_qp_par") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let encoder = Encoder::new(EncoderConfig::default());
        let qp_map = QpMap::uniform(encoder.grid_for(&frame), Qp::new(32));
        let mut scratch = EncodeParScratch::new();
        let mut out = EncodedFrame::placeholder();
        hotpaths.push(measure_hotpath(
            "encode_1080p_frame_uniform_qp_par",
            samples,
            target_sample_ms,
            || {
                encoder.encode_into_par(black_box(&frame), &qp_map, &pool, &mut scratch, &mut out);
                out.total_bytes()
            },
        ));
    }

    // 8. Multi-session throughput: N independent ChatSessions, each running the full
    // 4-frame 1080p turn, spread across the pool by the ChatServer. One iteration is one
    // turn on every session, so turns/sec = sessions × 1e9 / median (printed by
    // `hotpath_baseline`). Sessions share nothing — scaling is expected to be near-linear
    // in lanes up to the core count.
    for session_count in [1usize, 8, 64, 1024] {
        if !wants(only, &format!("pipeline_throughput_{session_count}_sessions")) {
            continue;
        }
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let mut server = ChatServer::new(pool_lanes, session_count, 1);
        hotpaths.push(measure_hotpath(
            &format!("pipeline_throughput_{session_count}_sessions"),
            samples,
            target_sample_ms,
            || {
                server.run_turns(black_box(&frames), &question);
                server.report(0).packets
            },
        ));
    }

    // 9. A steady-state turn inside a continuous conversation: the persistent-timeline
    // engine with the event queue, emulator, congestion controller, pacer and every
    // compute scratch already warm. One iteration = one more turn of the same long-lived
    // conversation (4-frame 1080p window through the emulated 10 Mbps uplink, 200 ms
    // think gap), so the median is the marginal cost of a warm conversational turn —
    // kernel scheduling included, cold-start excluded.
    if wants(only, "conversation_turn_warm") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let mut options = NetSessionOptions::ai_oriented(1, PathConfig::paper_section_2_2(0.01));
        options.capture_fps = 12.0;
        let mut conversation = Conversation::with_defaults(options, SimDuration::from_millis(200));
        for _ in 0..3 {
            conversation.run_turn(&frames, &question);
        }
        hotpaths.push(measure_hotpath(
            "conversation_turn_warm",
            samples,
            target_sample_ms,
            || {
                let report = conversation.run_turn(black_box(&frames), &question);
                report.frames_decoded
            },
        ));
    }

    // 10. Networked-fleet throughput: 256 persistent conversations lane-sharded across
    // the pool by the ConversationChatServer, every one with its own emulated uplink,
    // congestion controller and event timeline. One iteration is one warm turn on every
    // session (256 session-turns), so ns/session-turn = median / 256 — the serving-side
    // counterpart of `conversation_turn_warm`, with kernel merging, shard dispatch and
    // per-session state at fleet scale on the clock.
    if wants(only, "conversation_fleet_throughput_256") {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let mut template = NetSessionOptions::ai_oriented(1, PathConfig::paper_section_2_2(0.01));
        template.capture_fps = 12.0;
        let mut server =
            ConversationChatServer::new(pool_lanes, 256, template, SimDuration::from_millis(200));
        for _ in 0..3 {
            server.run_turns(&frames, &question);
        }
        hotpaths.push(measure_hotpath(
            "conversation_fleet_throughput_256",
            samples,
            target_sample_ms,
            || {
                server.run_turns(black_box(&frames), &question);
                server.report(0).frames_decoded
            },
        ));
    }

    hotpaths
}

/// Measures each stage of `pipeline_turn_1080p` in isolation but in the turn's exact
/// context — same 4-frame 1080p window, same question, same long-lived scratches, same
/// incremental CLIP state — so the stage medians decompose the turn's budget instead of
/// re-measuring the single-frame scenarios (whose inputs differ: one turn runs every stage
/// **four times**, and its CLIP calls run at the window's inter-frame dirty rate, not on a
/// cold frame). The whole-turn median is appended last under the name
/// `turn_total_pipeline`, so `sum(stages) / total` quantifies the accounting gap — see
/// DESIGN.md §"The chat-turn budget".
pub fn measure_turn_breakdown(samples: usize, target_sample_ms: f64) -> Vec<HotpathMeasurement> {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
    let seed = 1u64; // matches the `pipeline_turn_1080p` session
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words_and_concepts(
        &question.text,
        model.ontology(),
        question.query_concepts.iter().cloned(),
    );
    let allocator = QpAllocator::new(QpAllocatorConfig::paper());
    let encoder = Encoder::new(EncoderConfig::default());
    let decoder = Decoder::new();
    let mut out = Vec::new();

    // Stage 1 — Eq. 1, incremental across the window (the turn's CLIP work: the dirty
    // fraction is set by the window's inter-frame motion, including the wrap back to the
    // first frame at the turn boundary).
    {
        let mut clip = ClipScratch::new();
        out.push(measure_hotpath(
            "turn_clip_coherent_4f",
            samples,
            target_sample_ms,
            || {
                let mut patches = 0usize;
                for frame in &frames {
                    patches += model
                        .correlation_map_coherent(black_box(frame), &query, &mut clip)
                        .values()
                        .len();
                }
                patches
            },
        ));
    }

    // Per-frame inputs for the later stages, computed exactly as the turn computes them.
    let importance: Vec<_> = frames.iter().map(|f| model.correlation_map(f, &query)).collect();
    let qp_maps: Vec<QpMap> = importance
        .iter()
        .zip(&frames)
        .map(|(imp, f)| allocator.allocate(imp, encoder.grid_for(f)))
        .collect();
    let encoded: Vec<EncodedFrame> = frames
        .iter()
        .zip(&qp_maps)
        .map(|(f, m)| encoder.encode_with_qp_map(f, m))
        .collect();
    let decoded: Vec<DecodedFrame> = encoded.iter().map(|e| decoder.decode_complete(e, None)).collect();

    // Stage 2 — Eq. 2 through the threshold table, one QP map per frame.
    {
        let mut qp_map = QpMap::empty();
        out.push(measure_hotpath(
            "turn_eq2_alloc_4f",
            samples,
            target_sample_ms,
            || {
                let mut blocks = 0usize;
                for (imp, frame) in importance.iter().zip(&frames) {
                    allocator.allocate_into(black_box(imp), encoder.grid_for(frame), &mut qp_map);
                    blocks += qp_map.values().len();
                }
                blocks
            },
        ));
    }

    // Stage 3 — ROI encode, one scratch per frame slot (the session's layout).
    {
        let mut scratches: Vec<EncodeScratch> = (0..frames.len()).map(|_| EncodeScratch::new()).collect();
        let mut buffer = EncodedFrame::placeholder();
        out.push(measure_hotpath(
            "turn_encode_4f",
            samples,
            target_sample_ms,
            || {
                let mut bytes = 0u64;
                for ((frame, map), scratch) in frames.iter().zip(&qp_maps).zip(&mut scratches) {
                    encoder.encode_into(black_box(frame), map, scratch, &mut buffer);
                    bytes += buffer.total_bytes();
                }
                bytes
            },
        ));
    }

    // Stage 4 — RTP packetization of the four encoded frames.
    {
        let mut packetizer = Packetizer::default();
        let mut packets: Vec<RtpPacket> = Vec::new();
        let outgoing: Vec<OutgoingFrame> = encoded
            .iter()
            .map(|e| OutgoingFrame {
                frame_id: e.frame_index,
                capture_ts_us: e.capture_ts_us,
                size_bytes: e.total_bytes(),
                is_keyframe: e.frame_type == aivc_videocodec::FrameType::Intra,
            })
            .collect();
        out.push(measure_hotpath(
            "turn_packetize_4f",
            samples,
            target_sample_ms,
            || {
                let mut count = 0usize;
                for frame in &outgoing {
                    packetizer.packetize_into(black_box(frame), &mut packets);
                    count += packets.len();
                }
                count
            },
        ));
    }

    // Stage 5 — full-frame decode of the four encoded frames.
    {
        let mut scratch = DecodeScratch::new();
        let mut buffers: Vec<DecodedFrame> =
            (0..encoded.len()).map(|_| DecodedFrame::placeholder()).collect();
        out.push(measure_hotpath(
            "turn_decode_4f",
            samples,
            target_sample_ms,
            || {
                let mut blocks = 0usize;
                for (e, buffer) in encoded.iter().zip(&mut buffers) {
                    let total = e.total_bytes();
                    decoder.decode_into(black_box(e), &[(0, total)], None, &mut scratch, buffer);
                    blocks += buffer.blocks.len();
                }
                blocks
            },
        ));
    }

    // Stage 6 — the MLLM response over the turn's decoded frames.
    {
        let chat = MllmChat::responder(seed ^ 0x5EED);
        let mut scratch = MllmScratch::new();
        out.push(measure_hotpath(
            "turn_mllm_respond",
            samples,
            target_sample_ms,
            || {
                let answer = chat.respond_with(black_box(&question), &decoded, seed, &mut scratch);
                answer.visual_tokens
            },
        ));
    }

    // The whole turn, for the gap computation.
    {
        let mut session = ChatSession::with_defaults(seed);
        out.push(measure_hotpath(
            "turn_total_pipeline",
            samples,
            target_sample_ms,
            || {
                let report = session.run_turn(black_box(&frames), &question);
                report.answer.visual_tokens
            },
        ));
    }

    out
}

/// Measures each stage of `conversation_turn_warm` in isolation but in the warm
/// networked turn's exact context — same 4-frame 1080p window, the AI-oriented options'
/// query, rate search and per-frame budget, long-lived scratches throughout — so the
/// stage medians decompose the warm turn's budget. The whole warm turn is appended last
/// as `warm_turn_total`, so `sum(stages) / total` quantifies what the stages do *not*
/// cover: the event-queue kernel, the pacer/link emulation and feedback bookkeeping.
/// See DESIGN.md §"Where the warm turn's microsecond goes".
pub fn measure_warm_turn_breakdown(samples: usize, target_sample_ms: f64) -> Vec<HotpathMeasurement> {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
    let options = {
        let mut o = NetSessionOptions::ai_oriented(1, PathConfig::paper_section_2_2(0.01));
        o.capture_fps = 12.0;
        o
    };
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words_and_concepts(
        &question.text,
        model.ontology(),
        question.query_concepts.iter().cloned(),
    );
    let allocator = QpAllocator::new(QpAllocatorConfig::paper());
    let encoder = Encoder::new(EncoderConfig::default());
    let decoder = Decoder::new();
    // The per-frame coded-size budget the warm turn's rate search aims at (AI-oriented
    // ABR holds its accuracy floor, so the converged target is estimate-independent).
    let budget_bits = options.abr.target_bitrate(options.gcc.initial_estimate_bps) / options.capture_fps;
    let mut out = Vec::new();

    // Stage 1 — Eq. 1, incremental across the window (identical to the pipeline turn's
    // CLIP stage: the networked turn runs the same coherent path per capture).
    {
        let mut clip = ClipScratch::new();
        out.push(measure_hotpath(
            "warm_clip_coherent_4f",
            samples,
            target_sample_ms,
            || {
                let mut patches = 0usize;
                for frame in &frames {
                    patches += model
                        .correlation_map_coherent(black_box(frame), &query, &mut clip)
                        .values()
                        .len();
                }
                patches
            },
        ));
    }

    // Per-frame Eq. 2 maps, computed exactly as the turn computes them.
    let importance: Vec<_> = frames.iter().map(|f| model.correlation_map(f, &query)).collect();
    let qp_maps: Vec<QpMap> = importance
        .iter()
        .zip(&frames)
        .map(|(imp, f)| allocator.allocate(imp, encoder.grid_for(f)))
        .collect();

    // Stage 2 — Eq. 2 through the threshold table, one QP map per frame.
    {
        let mut qp_map = QpMap::empty();
        out.push(measure_hotpath(
            "warm_eq2_alloc_4f",
            samples,
            target_sample_ms,
            || {
                let mut blocks = 0usize;
                for (imp, frame) in importance.iter().zip(&frames) {
                    allocator.allocate_into(black_box(imp), encoder.grid_for(frame), &mut qp_map);
                    blocks += qp_map.values().len();
                }
                blocks
            },
        ));
    }

    // The warm turn's §3.2 bitrate match: a full binary search of the QP offset over
    // the plan's probe table (the same trajectory `encode_slot_to_budget` walks).
    fn search_offset(encoder: &Encoder, plan: &RatePlan, budget_bits: f64) -> i32 {
        let (mut lo, mut hi) = (-51i32, 51i32);
        let mut best_level = lo;
        let mut best_err = f64::INFINITY;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let bits = (encoder.predict_plan_offset_size(plan, mid) * 8) as f64;
            let err = (bits - budget_bits).abs();
            if err < best_err {
                best_err = err;
                best_level = mid;
            }
            if bits > budget_bits {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        best_level
    }

    // Stage 3 — rate-plan preparation plus the offset binary search, per frame: the
    // rate-control half of `encode_slot_to_budget` (the part that was ~90 % of a warm
    // turn before plans made probes table lookups).
    {
        let mut plan = RatePlan::default();
        out.push(measure_hotpath(
            "warm_rate_probe_search_4f",
            samples,
            target_sample_ms,
            || {
                let mut level_sum = 0i32;
                for (frame, qp_map) in frames.iter().zip(&qp_maps) {
                    encoder.prepare_rate_plan(black_box(frame), Some(qp_map), &mut plan);
                    level_sum += search_offset(&encoder, &plan, budget_bits);
                }
                level_sum
            },
        ));
    }

    // The settled per-frame offset maps and plans, for the encode stage.
    let mut plans: Vec<RatePlan> = Vec::new();
    let mut offset_maps: Vec<QpMap> = Vec::new();
    for (frame, qp_map) in frames.iter().zip(&qp_maps) {
        let mut plan = RatePlan::default();
        encoder.prepare_rate_plan(frame, Some(qp_map), &mut plan);
        let level = search_offset(&encoder, &plan, budget_bits);
        let mut offset_map = QpMap::empty();
        qp_map.offset_all_into(level, &mut offset_map);
        plans.push(plan);
        offset_maps.push(offset_map);
    }

    // Stage 4 — the one real encode per frame, at the searched level, reusing the plan's
    // raster (the materialization half of `encode_slot_to_budget`).
    {
        let mut scratches: Vec<EncodeScratch> = (0..frames.len()).map(|_| EncodeScratch::new()).collect();
        let mut buffer = EncodedFrame::placeholder();
        out.push(measure_hotpath(
            "warm_encode_planned_4f",
            samples,
            target_sample_ms,
            || {
                let mut bytes = 0u64;
                for (((frame, map), plan), scratch) in
                    frames.iter().zip(&offset_maps).zip(&plans).zip(&mut scratches)
                {
                    encoder.encode_into_planned(black_box(frame), map, plan, scratch, &mut buffer);
                    bytes += buffer.total_bytes();
                }
                bytes
            },
        ));
    }

    // The encoded frames the later stages consume, at the turn's real operating point.
    let encoded: Vec<EncodedFrame> = frames
        .iter()
        .zip(&offset_maps)
        .map(|(f, m)| encoder.encode_with_qp_map(f, m))
        .collect();
    let decoded: Vec<DecodedFrame> = encoded.iter().map(|e| decoder.decode_complete(e, None)).collect();

    // Stage 5 — RTP packetization of the turn's four budget-sized frames.
    {
        let mut packetizer = Packetizer::default();
        let mut packets: Vec<RtpPacket> = Vec::new();
        let outgoing: Vec<OutgoingFrame> = encoded
            .iter()
            .map(|e| OutgoingFrame {
                frame_id: e.frame_index,
                capture_ts_us: e.capture_ts_us,
                size_bytes: e.total_bytes(),
                is_keyframe: e.frame_type == aivc_videocodec::FrameType::Intra,
            })
            .collect();
        out.push(measure_hotpath(
            "warm_packetize_4f",
            samples,
            target_sample_ms,
            || {
                let mut count = 0usize;
                for frame in &outgoing {
                    packetizer.packetize_into(black_box(frame), &mut packets);
                    count += packets.len();
                }
                count
            },
        ));
    }

    // Stage 6 — receiver-side decode of the four frames.
    {
        let mut scratch = DecodeScratch::new();
        let mut buffers: Vec<DecodedFrame> =
            (0..encoded.len()).map(|_| DecodedFrame::placeholder()).collect();
        out.push(measure_hotpath(
            "warm_decode_4f",
            samples,
            target_sample_ms,
            || {
                let mut blocks = 0usize;
                for (e, buffer) in encoded.iter().zip(&mut buffers) {
                    let total = e.total_bytes();
                    decoder.decode_into(black_box(e), &[(0, total)], None, &mut scratch, buffer);
                    blocks += buffer.blocks.len();
                }
                blocks
            },
        ));
    }

    // Stage 7 — the MLLM response over the turn's decoded frames.
    {
        let chat = MllmChat::responder(1 ^ 0x5EED);
        let mut scratch = MllmScratch::new();
        out.push(measure_hotpath(
            "warm_mllm_respond",
            samples,
            target_sample_ms,
            || {
                let answer = chat.respond_with(black_box(&question), &decoded, 1, &mut scratch);
                answer.visual_tokens
            },
        ));
    }

    // The whole warm turn, for the gap computation: whatever the stages above do not
    // account for is the transport tax — event-queue kernel, pacer, link emulation,
    // assembler and feedback bookkeeping.
    {
        let mut conversation = Conversation::with_defaults(options, SimDuration::from_millis(200));
        for _ in 0..3 {
            conversation.run_turn(&frames, &question);
        }
        out.push(measure_hotpath(
            "warm_turn_total",
            samples,
            target_sample_ms,
            || {
                let report = conversation.run_turn(black_box(&frames), &question);
                report.frames_decoded
            },
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherence_scene_is_calibrated_near_ten_percent() {
        let source = VideoSource::new(coherence_scene(), SourceConfig::fps30(1.0));
        let frac = dirty_fraction(&source.frame(0), &source.frame(1));
        assert!((0.06..=0.15).contains(&frac), "dirty fraction {frac:.3}");
    }

    #[test]
    fn baseline_file_round_trips_through_json() {
        let file = BaselineFile {
            profile: PROFILE.to_string(),
            methodology: METHODOLOGY.to_string(),
            pool_lanes: 4,
            hotpaths: vec![HotpathMeasurement {
                name: "x".to_string(),
                median_ns_per_iter: 12.5,
                iters_per_sample: 3,
                samples: 30,
            }],
            turn_breakdown: vec![HotpathMeasurement {
                name: "turn_stage".to_string(),
                median_ns_per_iter: 7.5,
                iters_per_sample: 9,
                samples: 30,
            }],
            warm_turn_breakdown: vec![HotpathMeasurement {
                name: "warm_stage".to_string(),
                median_ns_per_iter: 3.5,
                iters_per_sample: 2,
                samples: 30,
            }],
        };
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: BaselineFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.hotpaths.len(), 1);
        assert_eq!(back.hotpaths[0].name, "x");
        assert_eq!(back.hotpaths[0].median_ns_per_iter, 12.5);
        assert_eq!(back.pool_lanes, 4);
        assert_eq!(back.turn_breakdown[0].name, "turn_stage");
    }
}
