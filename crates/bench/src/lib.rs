//! # aivc-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the index) plus ablation
//! binaries for the design choices the paper discusses. Each binary prints a small markdown
//! report with our measured numbers next to the paper's reported numbers, and (where useful)
//! writes machine-readable JSON next to it.
//!
//! Scale control: every binary honours the `AIVC_SCALE` environment variable
//! (`quick` | `default` | `full`). `quick` runs in seconds and is what the integration tests
//! use; `full` approaches the paper's experiment sizes and can take many minutes.

pub mod hotpath_suite;

use serde::{Deserialize, Serialize};
use std::io::Write;

/// Experiment scale selected via the `AIVC_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke run.
    Quick,
    /// The default: minutes-long, statistically meaningful.
    Default,
    /// Paper-sized run.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("AIVC_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "quick" => Scale::Quick,
            "full" => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Picks one of three values according to the scale.
    pub fn pick<T: Copy>(self, quick: T, default: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Prints a titled markdown section to stdout.
pub fn print_section(title: &str, body: &str) {
    println!("\n## {title}\n");
    println!("{body}");
}

/// Writes a JSON results file under `target/experiments/` and reports the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut file) = std::fs::File::create(&path) {
        let _ = file.write_all(serde_json::to_string_pretty(value).unwrap_or_default().as_bytes());
        println!("(results written to {})", path.display());
    }
}

/// Formats a bits-per-second value as kbps with one decimal.
pub fn kbps(bps: f64) -> String {
    format!("{:.1} kbps", bps / 1_000.0)
}

/// One hot-path measurement, as recorded in `BENCH_hotpaths.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathMeasurement {
    /// Hot-path name (matches the criterion bench name).
    pub name: String,
    /// Median nanoseconds per iteration across the samples.
    pub median_ns_per_iter: f64,
    /// Iterations batched into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Measures a closure the same way the vendored criterion does: warm up, pick an iteration
/// count that fills `target_sample_ms` per sample, then report the median ns/iteration over
/// `samples` samples. Used by the `hotpath_baseline` runner so the committed baseline and
/// `cargo bench` agree on methodology.
pub fn measure_hotpath<O>(
    name: &str,
    samples: usize,
    target_sample_ms: f64,
    mut f: impl FnMut() -> O,
) -> HotpathMeasurement {
    use std::hint::black_box;
    use std::time::{Duration, Instant};
    let warm_start = Instant::now();
    let warm_budget = Duration::from_millis(150);
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_budget {
        black_box(f());
        warm_iters += 1;
    }
    let rough_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);
    let iters_per_sample = ((target_sample_ms * 1e6 / rough_ns) as u64).clamp(1, 50_000_000);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = per_iter.len() / 2;
    let median = if per_iter.len().is_multiple_of(2) {
        (per_iter[mid - 1] + per_iter[mid]) / 2.0
    } else {
        per_iter[mid]
    };
    HotpathMeasurement {
        name: name.to_string(),
        median_ns_per_iter: median,
        iters_per_sample,
        samples: per_iter.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn kbps_formatting() {
        assert_eq!(kbps(430_000.0), "430.0 kbps");
    }
}
