//! Ablation: CLIP patch size (the N of §3.2's N×N partition).
//!
//! Finer patches localize the chat-important region more precisely (less bitrate wasted on
//! the rest of the CTUs that share a coarse patch) but cost proportionally more client-side
//! compute — the trade-off behind the paper's "client-side computation" discussion.

use aivc_bench::{print_section, write_json, Scale};
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_scene::templates::street_scene;
use aivc_scene::{Ontology, SourceConfig, VideoSource};
use aivc_semantics::{ClipConfig, ClipModel};
use aivchat_core::{ContextAwareStreamer, StreamerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct PatchRow {
    patch_size: u32,
    clip_latency_ms: f64,
    achieved_bps: f64,
    probability_correct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let frames_per_clip = scale.pick(3, 5, 8);
    let scene = street_scene(1);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(10.0));
    // The license-plate question: tiny evidence region, the case where localization matters most.
    let question = Question::from_fact(&scene.facts[0], QuestionFormat::FreeResponse);
    let responder = MllmChat::responder(9);
    let mut rows = Vec::new();

    for patch_size in [32u32, 64, 128] {
        let clip_config = ClipConfig {
            patch_size,
            ..ClipConfig::mobile_clip()
        };
        let streamer = ContextAwareStreamer::new(
            StreamerConfig::default(),
            ClipModel::new(clip_config, Ontology::standard()),
        );
        let (frames, enc) = streamer.offline_decode(&source, &question, 430_000.0, frames_per_clip);
        let p = responder.answer_model().probability_correct(&question, &frames);
        rows.push(PatchRow {
            patch_size,
            clip_latency_ms: streamer.clip_latency_us(1920, 1080) as f64 / 1_000.0,
            achieved_bps: enc.achieved_bitrate_bps,
            probability_correct: p,
        });
    }

    let mut body =
        String::from("| patch size | CLIP latency | achieved kbps | P(correct) |\n|---|---|---|---|\n");
    for r in &rows {
        body.push_str(&format!(
            "| {}px | {:.1} ms | {:.1} | {:.2} |\n",
            r.patch_size,
            r.clip_latency_ms,
            r.achieved_bps / 1_000.0,
            r.probability_correct
        ));
    }
    body.push_str("\nSmaller patches localize the plate more precisely and preserve accuracy at the same bitrate, at a quadratic growth in client-side CLIP compute — the mobile-compute trade-off §4 discusses.\n");
    print_section("Ablation — CLIP patch size", &body);
    write_json("ablation_patch_size", &rows);
}
