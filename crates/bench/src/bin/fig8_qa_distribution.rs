//! Figure 8: distribution of DeViBench QA samples by category (outer ring) and temporal
//! dependency (inner ring).

use aivc_bench::{print_section, write_json, Scale};
use aivc_devibench::{Pipeline, PipelineConfig};
use aivc_scene::Corpus;

fn main() {
    let scale = Scale::from_env();
    let clips = scale.pick(10, 60, 500);
    let corpus = Corpus::streamingbench_like(88, clips, 30.0, 90.0);
    let report = Pipeline::new(PipelineConfig::default()).run(&corpus);
    let distribution = report.dataset.distribution();

    let mut body = distribution.to_markdown();
    body.push_str(&format!(
        "\n{} accepted samples over {} clips. Paper (Figure 8): text-rich 54.84%, action 17.03%, attribute 14.43%, counting 6%, object 5.9%, spatial 1.8%; 34.45% of questions need multiple frames.\n",
        report.dataset.len(),
        clips
    ));
    body.push_str("\nNote: the synthetic scene templates carry fewer text-rich facts per clip than real StreamingBench footage, so the text-rich share is lower here; the ordering (text-rich and attribute/action dominate, spatial is rare) is preserved.\n");
    print_section("Figure 8 — QA sample distribution", &body);
    write_json("fig8_qa_distribution", &distribution);
}
