//! Figure 5: user words pick out the chat-important regions via CLIP, including through
//! high-level inference (grass growth implies the season).
//!
//! Renders the per-patch semantic correlation map (Eq. 1) as an ASCII heat map for the
//! paper's three dialogues and reports the mean correlation of the ground-truth evidence
//! region versus the rest of the frame.

use aivc_bench::{print_section, write_json};
use aivc_scene::templates::{basketball_game, dog_park};
use aivc_scene::{Scene, SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, TextQuery};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Row {
    scene: String,
    question: String,
    evidence_object: String,
    evidence_mean_rho: f64,
    rest_mean_rho: f64,
    separation: f64,
}

fn case(model: &ClipModel, scene: Scene, question: &str, evidence_id: u32) -> (Fig5Row, String) {
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(5.0));
    let frame = source.frame(0);
    let query = TextQuery::from_words(question, model.ontology());
    let map = model.correlation_map(&frame, &query);
    let evidence = frame.placement(evidence_id).unwrap().region;
    let dims = map.dims();
    let (mut ev_sum, mut ev_n, mut rest_sum, mut rest_n) = (0.0, 0usize, 0.0, 0usize);
    for row in 0..dims.rows {
        for col in 0..dims.cols {
            let cell = dims.cell_rect(row, col, frame.width, frame.height);
            if cell.coverage_by(&evidence) > 0.4 {
                ev_sum += map.get(row, col);
                ev_n += 1;
            } else {
                rest_sum += map.get(row, col);
                rest_n += 1;
            }
        }
    }
    let evidence_mean = ev_sum / ev_n.max(1) as f64;
    let rest_mean = rest_sum / rest_n.max(1) as f64;
    let row = Fig5Row {
        scene: scene.label.clone(),
        question: question.to_string(),
        evidence_object: scene
            .object(evidence_id)
            .map(|o| o.name.clone())
            .unwrap_or_default(),
        evidence_mean_rho: evidence_mean,
        rest_mean_rho: rest_mean,
        separation: evidence_mean - rest_mean,
    };
    (row, map.to_ascii())
}

fn main() {
    let model = ClipModel::mobile_default();
    let cases = [
        (
            dog_park(1),
            "Is the dog in the video erect-eared or floppy-eared?",
            2u32,
        ),
        (
            basketball_game(1),
            "Could you tell me the present score of the game?",
            1u32,
        ),
        (dog_park(1), "Infer what season it might be in the video", 3u32),
    ];
    let mut rows = Vec::new();
    let mut body = String::from(
        "| scene | question | evidence | rho(evidence) | rho(rest) | separation |\n|---|---|---|---|---|---|\n",
    );
    let mut heatmaps = String::new();
    for (scene, question, evidence_id) in cases {
        let (row, ascii) = case(&model, scene, question, evidence_id);
        body.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} |\n",
            row.scene,
            row.question,
            row.evidence_object,
            row.evidence_mean_rho,
            row.rest_mean_rho,
            row.separation
        ));
        heatmaps.push_str(&format!("\n{} — \"{}\":\n{}\n", row.scene, row.question, ascii));
        rows.push(row);
    }
    body.push_str("\nPaper (Figure 5): the dog's head lights up for the ear question, the scoreboard for the score question, and the grass for the season question (a high-level inference with no explicit object mention).\n");
    body.push_str(&heatmaps);
    print_section("Figure 5 — CLIP correlation maps for user words", &body);
    write_json("fig5_semantic_correlation", &rows);
}
