//! The committed hot-path performance baseline.
//!
//! Measures the six per-frame hot paths (the same ones `benches/hotpaths.rs` tracks) and
//! writes `BENCH_hotpaths.json` into the current directory. The committed copy at the repo
//! root is the trajectory every later perf PR is measured against: medians must not regress
//! by more than 5 % (see ROADMAP.md).
//!
//! Run with the same profile the baseline was recorded under:
//! `cargo run --release -p aivc-bench --bin hotpath_baseline`

use aivc_bench::{measure_hotpath, print_section, HotpathMeasurement};
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_rtc::packetizer::{OutgoingFrame, Packetizer};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, ClipScratch, TextQuery};
use aivc_videocodec::{Decoder, Encoder, EncoderConfig, Qp};
use aivchat_core::{QpAllocator, QpAllocatorConfig};
use serde::Serialize;
use std::hint::black_box;
use std::io::Write;

#[derive(Serialize)]
struct Baseline {
    /// Build profile the numbers were recorded under.
    profile: &'static str,
    /// Methodology note for readers of the JSON.
    methodology: &'static str,
    /// The recorded hot-path medians.
    hotpaths: Vec<HotpathMeasurement>,
}

const SAMPLES: usize = 30;
const TARGET_SAMPLE_MS: f64 = 25.0;

fn main() {
    let mut hotpaths = Vec::new();

    // 1. RTP packetization of a 100 kB keyframe (reuse API; zero allocations/iter).
    {
        let mut packetizer = Packetizer::default();
        let mut packets = Vec::new();
        let frame = OutgoingFrame {
            frame_id: 1,
            capture_ts_us: 0,
            size_bytes: 100_000,
            is_keyframe: true,
        };
        hotpaths.push(measure_hotpath(
            "packetize_100kB_frame",
            SAMPLES,
            TARGET_SAMPLE_MS,
            || {
                packetizer.packetize_into(black_box(&frame), &mut packets);
                packets.len()
            },
        ));
    }

    // 2. Uniform-QP encode of a 1080p frame.
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let encoder = Encoder::new(EncoderConfig::default());
        hotpaths.push(measure_hotpath(
            "encode_1080p_frame_uniform_qp",
            SAMPLES,
            TARGET_SAMPLE_MS,
            || black_box(encoder.encode_uniform(black_box(&frame), Qp::new(32))),
        ));
    }

    // 2b. Full-frame decode (coverage lists Arc-shared with the encoded blocks).
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let encoder = Encoder::new(EncoderConfig::default());
        let encoded = encoder.encode_uniform(&source.frame(0), Qp::new(32));
        let decoder = Decoder::new();
        hotpaths.push(measure_hotpath(
            "decode_complete_1080p",
            SAMPLES,
            TARGET_SAMPLE_MS,
            || black_box(decoder.decode_complete(black_box(&encoded), None)),
        ));
    }

    // 3. CLIP correlation map over the 1080p patch grid (scratch API; zero allocations/iter).
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words(
            "Could you tell me the present score of the game?",
            model.ontology(),
        );
        let mut scratch = ClipScratch::new();
        hotpaths.push(measure_hotpath(
            "clip_correlation_map_1080p",
            SAMPLES,
            TARGET_SAMPLE_MS,
            || {
                let map = model.correlation_map_with(black_box(&frame), &query, &mut scratch);
                map.values().len()
            },
        ));
    }

    // 4. Eq. 2 QP allocation from an importance map.
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let frame = source.frame(0);
        let model = ClipModel::mobile_default();
        let query = TextQuery::from_words("How many spectators can be seen?", model.ontology());
        let importance = model.correlation_map(&frame, &query);
        let encoder = Encoder::new(EncoderConfig::default());
        let grid = encoder.grid_for(&frame);
        let allocator = QpAllocator::new(QpAllocatorConfig::paper());
        hotpaths.push(measure_hotpath(
            "eq2_qp_allocation",
            SAMPLES,
            TARGET_SAMPLE_MS,
            || black_box(allocator.allocate(black_box(&importance), grid)),
        ));
    }

    // 5. MLLM answer over four decoded frames.
    {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
        let encoder = Encoder::new(EncoderConfig::default());
        let decoder = Decoder::new();
        let frames: Vec<_> = (0..4)
            .map(|i| {
                decoder.decode_complete(&encoder.encode_uniform(&source.frame(i * 30), Qp::new(32)), None)
            })
            .collect();
        let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
        let chat = MllmChat::responder(1);
        hotpaths.push(measure_hotpath(
            "mllm_respond_4_frames",
            SAMPLES,
            TARGET_SAMPLE_MS,
            || black_box(chat.respond(black_box(&question), &frames, 0)),
        ));
    }

    let mut table = String::from("| hot path | median ns/iter |\n| --- | --- |\n");
    for m in &hotpaths {
        table.push_str(&format!("| {} | {:.1} |\n", m.name, m.median_ns_per_iter));
    }
    print_section("Hot-path baseline", &table);

    let baseline = Baseline {
        profile: "release (lto=thin, codegen-units=1)",
        methodology: "median ns/iter over 30 samples after 150 ms warmup; see aivc_bench::measure_hotpath",
        hotpaths,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = "BENCH_hotpaths.json";
    let mut file = std::fs::File::create(path).expect("can create BENCH_hotpaths.json");
    file.write_all(json.as_bytes())
        .expect("can write BENCH_hotpaths.json");
    println!("(baseline written to {path})");
}
