//! The committed hot-path performance baseline.
//!
//! Measures the per-frame hot paths (via [`aivc_bench::hotpath_suite`], the same suite
//! `bench_check` re-measures and `benches/hotpaths.rs` tracks) plus the per-stage
//! decomposition of the chat turn, and writes `BENCH_hotpaths.json` into the current
//! directory. The committed copy at the repo root is the trajectory every later perf PR is
//! measured against: medians must not regress by more than 5 % (see ROADMAP.md;
//! `scripts/bench-check.sh` enforces it).
//!
//! The `_par` and `pipeline_throughput_*` entries run on a pool of `AIVC_POOL_SIZE` lanes
//! (default: the machine's available parallelism); the recorded lane count is written into
//! the JSON, since parallel medians are only comparable at equal lane counts.
//!
//! Run with the same profile the baseline was recorded under:
//! `cargo run --release -p aivc-bench --bin hotpath_baseline`
//!
//! Committed re-recordings follow the max-of-3 rule (ROADMAP.md): pass `--max-of 3` (or
//! use `scripts/bench-check.sh --record`, which does) so each entry keeps the slowest of
//! three measured medians — a conservative bar that later `bench_check` runs won't trip
//! on ordinary noise.

use aivc_bench::hotpath_suite::{
    measure_all_hotpaths, measure_hotpaths_matching, measure_turn_breakdown,
    measure_warm_turn_breakdown, BaselineFile, METHODOLOGY, PROFILE,
};
use aivc_bench::HotpathMeasurement;
use aivc_bench::print_section;
use aivc_par::MiniPool;
use std::io::Write;

const SAMPLES: usize = 30;
const TARGET_SAMPLE_MS: f64 = 25.0;

/// Parses `--only <name>` (repeatable; empty = record everything) and `--max-of <n>`
/// (record each entry as the max median over `n` full measurement runs — the ROADMAP
/// re-recording rule is max-of-3, automated by `scripts/bench-check.sh --record`).
fn parse_args() -> (Vec<String>, usize) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only = Vec::new();
    let mut runs = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--only" => {
                i += 1;
                match args.get(i) {
                    Some(name) => only.push(name.clone()),
                    None => {
                        eprintln!("--only requires an entry name");
                        std::process::exit(2);
                    }
                }
            }
            "--max-of" => {
                i += 1;
                runs = match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--max-of requires a run count >= 1");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: hotpath_baseline [--only <name>]... [--max-of <n>]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (only, runs)
}

/// Runs the measurement closure `runs` times and keeps, per entry, the run with the
/// largest median. Recording the *slowest* of the runs is deliberate: the committed
/// number is the bar later `bench_check` runs are held to, and a lucky fast record
/// would turn ordinary measurement noise into phantom regressions.
fn measure_max_of(
    runs: usize,
    mut measure: impl FnMut() -> Vec<HotpathMeasurement>,
) -> Vec<HotpathMeasurement> {
    let mut kept = measure();
    for run in 1..runs {
        println!("(max-of-{runs}: measurement run {} of {runs})", run + 1);
        for m in measure() {
            match kept.iter_mut().find(|k| k.name == m.name) {
                Some(slot) if m.median_ns_per_iter > slot.median_ns_per_iter => *slot = m,
                Some(_) => {}
                None => kept.push(m),
            }
        }
    }
    kept
}

/// Surgical re-record: re-measures only the named entries and splices their new medians
/// into the existing `BENCH_hotpaths.json`, leaving every other committed number
/// untouched. Names may come from either the `hotpaths` or the `turn_breakdown` section.
fn record_only(only: &[String], pool_lanes: usize, runs: usize) {
    let path = "BENCH_hotpaths.json";
    let existing = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--only updates an existing {path}, which could not be read: {e}");
        std::process::exit(2);
    });
    let mut baseline: BaselineFile =
        serde_json::from_str(&existing).expect("existing baseline parses");
    for name in only {
        let known = baseline.hotpaths.iter().any(|m| &m.name == name)
            || baseline.turn_breakdown.iter().any(|m| &m.name == name)
            || baseline.warm_turn_breakdown.iter().any(|m| &m.name == name);
        if !known {
            eprintln!("unknown entry {name:?}; known entries:");
            for m in baseline
                .hotpaths
                .iter()
                .chain(&baseline.turn_breakdown)
                .chain(&baseline.warm_turn_breakdown)
            {
                eprintln!("  {}", m.name);
            }
            std::process::exit(2);
        }
    }
    let parallel_entry = |name: &str| name.ends_with("_par") || name.starts_with("pipeline_throughput_");
    if only.iter().any(|n| parallel_entry(n)) && pool_lanes != baseline.pool_lanes {
        eprintln!(
            "cannot re-record parallel entries at {pool_lanes} lanes into a {}-lane baseline; \
             set AIVC_POOL_SIZE={} or re-record the whole file",
            baseline.pool_lanes, baseline.pool_lanes
        );
        std::process::exit(2);
    }

    let hotpath_names: Vec<String> = only
        .iter()
        .filter(|n| baseline.hotpaths.iter().any(|m| &m.name == *n))
        .cloned()
        .collect();
    let mut table = String::from("| re-recorded entry | old ns/iter | new ns/iter |\n| --- | --- | --- |\n");
    if !hotpath_names.is_empty() {
        let measured = measure_max_of(runs, || {
            measure_hotpaths_matching(SAMPLES, TARGET_SAMPLE_MS, pool_lanes, Some(&hotpath_names))
        });
        for m in measured {
            let slot = baseline
                .hotpaths
                .iter_mut()
                .find(|b| b.name == m.name)
                .expect("validated above");
            table.push_str(&format!(
                "| {} | {:.1} | {:.1} |\n",
                m.name, slot.median_ns_per_iter, m.median_ns_per_iter
            ));
            *slot = m;
        }
    }
    let breakdown_names: Vec<&String> = only
        .iter()
        .filter(|n| baseline.turn_breakdown.iter().any(|m| &m.name == *n))
        .collect();
    if !breakdown_names.is_empty() {
        let measured = measure_max_of(runs, || measure_turn_breakdown(SAMPLES, TARGET_SAMPLE_MS));
        for m in measured {
            if !breakdown_names.iter().any(|n| **n == m.name) {
                continue;
            }
            let slot = baseline
                .turn_breakdown
                .iter_mut()
                .find(|b| b.name == m.name)
                .expect("validated above");
            table.push_str(&format!(
                "| {} | {:.1} | {:.1} |\n",
                m.name, slot.median_ns_per_iter, m.median_ns_per_iter
            ));
            *slot = m;
        }
    }
    let warm_names: Vec<&String> = only
        .iter()
        .filter(|n| baseline.warm_turn_breakdown.iter().any(|m| &m.name == *n))
        .collect();
    if !warm_names.is_empty() {
        let measured =
            measure_max_of(runs, || measure_warm_turn_breakdown(SAMPLES, TARGET_SAMPLE_MS));
        for m in measured {
            if !warm_names.iter().any(|n| **n == m.name) {
                continue;
            }
            let slot = baseline
                .warm_turn_breakdown
                .iter_mut()
                .find(|b| b.name == m.name)
                .expect("validated above");
            table.push_str(&format!(
                "| {} | {:.1} | {:.1} |\n",
                m.name, slot.median_ns_per_iter, m.median_ns_per_iter
            ));
            *slot = m;
        }
    }
    print_section("Surgical baseline update", &table);
    write_baseline(path, &baseline);
}

fn write_baseline(path: &str, baseline: &BaselineFile) {
    let json = serde_json::to_string_pretty(baseline).expect("baseline serializes");
    let mut file = std::fs::File::create(path).expect("can create BENCH_hotpaths.json");
    file.write_all(json.as_bytes())
        .expect("can write BENCH_hotpaths.json");
    println!("(baseline written to {path})");
}

/// `pipeline_throughput_N_sessions` / `conversation_fleet_throughput_N` → `N` (how many
/// session-turns one iteration performs).
fn sessions_in(name: &str) -> Option<u64> {
    if let Some(n) = name.strip_prefix("conversation_fleet_throughput_") {
        return n.parse().ok();
    }
    name.strip_prefix("pipeline_throughput_")?
        .strip_suffix("_sessions")?
        .parse()
        .ok()
}

fn main() {
    let pool_lanes = MiniPool::env_lanes();
    println!("(pool lanes for _par / throughput entries: {pool_lanes})");
    let (only, runs) = parse_args();
    if runs > 1 {
        println!("(recording each entry as the max median over {runs} measurement runs)");
    }
    if !only.is_empty() {
        record_only(&only, pool_lanes, runs);
        return;
    }
    let hotpaths = measure_max_of(runs, || {
        measure_all_hotpaths(SAMPLES, TARGET_SAMPLE_MS, pool_lanes)
    });

    let mut table = String::from("| hot path | median ns/iter | turns/sec |\n| --- | --- | --- |\n");
    for m in &hotpaths {
        let turns = sessions_in(&m.name)
            .map(|n| format!("{:.0}", n as f64 * 1e9 / m.median_ns_per_iter))
            .unwrap_or_else(|| "—".to_string());
        table.push_str(&format!(
            "| {} | {:.1} | {} |\n",
            m.name, m.median_ns_per_iter, turns
        ));
    }
    print_section("Hot-path baseline", &table);

    let turn_breakdown = measure_max_of(runs, || measure_turn_breakdown(SAMPLES, TARGET_SAMPLE_MS));
    let total = turn_breakdown
        .iter()
        .find(|m| m.name == "turn_total_pipeline")
        .map_or(f64::NAN, |m| m.median_ns_per_iter);
    let stage_sum: f64 = turn_breakdown
        .iter()
        .filter(|m| m.name != "turn_total_pipeline")
        .map(|m| m.median_ns_per_iter)
        .sum();
    let mut table = String::from("| turn stage | median ns | share of turn |\n| --- | --- | --- |\n");
    for m in &turn_breakdown {
        table.push_str(&format!(
            "| {} | {:.0} | {:.1} % |\n",
            m.name,
            m.median_ns_per_iter,
            100.0 * m.median_ns_per_iter / total
        ));
    }
    table.push_str(&format!(
        "\nstage sum {:.0} ns vs whole turn {:.0} ns — {:.1} % accounted for\n",
        stage_sum,
        total,
        100.0 * stage_sum / total
    ));
    print_section("Chat-turn budget (pipeline_turn_1080p decomposed)", &table);

    let warm_turn_breakdown =
        measure_max_of(runs, || measure_warm_turn_breakdown(SAMPLES, TARGET_SAMPLE_MS));
    let warm_total = warm_turn_breakdown
        .iter()
        .find(|m| m.name == "warm_turn_total")
        .map_or(f64::NAN, |m| m.median_ns_per_iter);
    let warm_stage_sum: f64 = warm_turn_breakdown
        .iter()
        .filter(|m| m.name != "warm_turn_total")
        .map(|m| m.median_ns_per_iter)
        .sum();
    let mut table = String::from("| warm-turn stage | median ns | share of turn |\n| --- | --- | --- |\n");
    for m in &warm_turn_breakdown {
        table.push_str(&format!(
            "| {} | {:.0} | {:.1} % |\n",
            m.name,
            m.median_ns_per_iter,
            100.0 * m.median_ns_per_iter / warm_total
        ));
    }
    table.push_str(&format!(
        "\nstage sum {:.0} ns vs whole warm turn {:.0} ns — {:.1} % accounted for \
         (the rest is the transport tax: kernel, pacer, link emulation, feedback)\n",
        warm_stage_sum,
        warm_total,
        100.0 * warm_stage_sum / warm_total
    ));
    print_section("Warm-turn budget (conversation_turn_warm decomposed)", &table);

    let baseline = BaselineFile {
        profile: PROFILE.to_string(),
        methodology: METHODOLOGY.to_string(),
        pool_lanes,
        hotpaths,
        turn_breakdown,
        warm_turn_breakdown,
    };
    write_baseline("BENCH_hotpaths.json", &baseline);
}
