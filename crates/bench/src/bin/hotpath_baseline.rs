//! The committed hot-path performance baseline.
//!
//! Measures the per-frame hot paths (via [`aivc_bench::hotpath_suite`], the same suite
//! `bench_check` re-measures and `benches/hotpaths.rs` tracks) and writes
//! `BENCH_hotpaths.json` into the current directory. The committed copy at the repo root is
//! the trajectory every later perf PR is measured against: medians must not regress by more
//! than 5 % (see ROADMAP.md; `scripts/bench-check.sh` enforces it).
//!
//! Run with the same profile the baseline was recorded under:
//! `cargo run --release -p aivc-bench --bin hotpath_baseline`

use aivc_bench::hotpath_suite::{measure_all_hotpaths, BaselineFile, METHODOLOGY, PROFILE};
use aivc_bench::print_section;
use std::io::Write;

const SAMPLES: usize = 30;
const TARGET_SAMPLE_MS: f64 = 25.0;

fn main() {
    let hotpaths = measure_all_hotpaths(SAMPLES, TARGET_SAMPLE_MS);

    let mut table = String::from("| hot path | median ns/iter |\n| --- | --- |\n");
    for m in &hotpaths {
        table.push_str(&format!("| {} | {:.1} |\n", m.name, m.median_ns_per_iter));
    }
    print_section("Hot-path baseline", &table);

    let baseline = BaselineFile {
        profile: PROFILE.to_string(),
        methodology: METHODOLOGY.to_string(),
        hotpaths,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    let path = "BENCH_hotpaths.json";
    let mut file = std::fs::File::create(path).expect("can create BENCH_hotpaths.json");
    file.write_all(json.as_bytes())
        .expect("can write BENCH_hotpaths.json");
    println!("(baseline written to {path})");
}
