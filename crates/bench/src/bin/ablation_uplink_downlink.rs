//! Ablation: uplink vs downlink asymmetry (§2.1, "uplink is more pressing than downlink").
//!
//! AI Video Chat sends video up and receives only audio/text down. This ablation measures
//! how the chat turn's transmission latency responds to throttling each direction
//! independently — showing that the uplink is the binding constraint.

use aivc_bench::{print_section, write_json, Scale};
use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::{LinkConfig, LossModel, PathConfig, SimDuration};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivchat_core::{AiVideoChatSession, SessionOptions};
use serde::Serialize;

#[derive(Serialize)]
struct AsymRow {
    uplink_mbps: f64,
    downlink_mbps: f64,
    transmission_ms: f64,
    frames_delivered: usize,
    probability_correct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let window_secs = scale.pick(2.0, 4.0, 6.0);
    let scene = basketball_game(1);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
    let question = Question::from_fact(&scene.facts[0], QuestionFormat::FreeResponse);

    let cases = [(10.0, 10.0), (2.0, 10.0), (10.0, 2.0), (1.0, 10.0), (10.0, 1.0)];
    let mut rows = Vec::new();
    for (up_mbps, down_mbps) in cases {
        let path = PathConfig {
            uplink: LinkConfig::constant(
                up_mbps * 1e6,
                SimDuration::from_millis(30),
                300,
                LossModel::Iid { rate: 0.01 },
            ),
            downlink: LinkConfig::constant(
                down_mbps * 1e6,
                SimDuration::from_millis(30),
                300,
                LossModel::None,
            ),
        };
        let mut options = SessionOptions::default_context_aware(21);
        options.path = path;
        options.window_secs = window_secs;
        let report = AiVideoChatSession::new(options).run_turn(&source, &question);
        rows.push(AsymRow {
            uplink_mbps: up_mbps,
            downlink_mbps: down_mbps,
            transmission_ms: report.latency.transmission_ms,
            frames_delivered: report.frames_delivered,
            probability_correct: report.answer.probability_correct,
        });
    }

    let mut body = String::from(
        "| uplink | downlink | transmission | frames delivered | P(correct) |\n|---|---|---|---|---|\n",
    );
    for r in &rows {
        body.push_str(&format!(
            "| {:.0} Mbps | {:.0} Mbps | {:.1} ms | {} | {:.2} |\n",
            r.uplink_mbps, r.downlink_mbps, r.transmission_ms, r.frames_delivered, r.probability_correct
        ));
    }
    body.push_str("\nThrottling the downlink barely matters (it carries only NACK feedback and the short response); throttling the uplink directly inflates transmission latency — AI Video Chat needs its provisioning upside-down relative to video-on-demand.\n");
    print_section("Ablation — uplink vs downlink asymmetry", &body);
    write_json("ablation_uplink_downlink", &rows);
}
