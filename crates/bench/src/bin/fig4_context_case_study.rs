//! Figure 4: why video should be context-aware — the same low bitrate breaks some questions
//! but not others, depending on what the chat needs to see.
//!
//! Reproduces the paper's two dialogues on the basketball scene: the score question (coarse
//! scoreboard reading, survives 200 Kbps) and the jersey-logo question (fine detail, breaks
//! at 200 Kbps), at 4000 Kbps vs 200 Kbps context-agnostic encodes.

use aivc_bench::{kbps, print_section, write_json, Scale};
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivc_videocodec::{transcode_clip, Encoder, EncoderConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Row {
    question: String,
    required_detail: f64,
    bitrate_bps: f64,
    achieved_bps: f64,
    probability_correct: f64,
    answered_correctly: bool,
}

fn main() {
    let scale = Scale::from_env();
    let duration = scale.pick(6.0, 20.0, 60.0);
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(duration));
    let encoder = Encoder::new(EncoderConfig::default());
    let responder = MllmChat::responder(4);
    let scene = basketball_game(1);

    // Dialogue 1: the score question; Dialogue 2: the jersey-logo question.
    let dialogues = [&scene.facts[0], &scene.facts[1]];
    let mut rows = Vec::new();
    for (d_idx, fact) in dialogues.iter().enumerate() {
        let question = Question::from_fact(fact, QuestionFormat::FreeResponse);
        for &bitrate in &[4_000_000.0, 200_000.0] {
            let (frames, summary) = transcode_clip(&encoder, &source, bitrate, 6);
            let answer = responder.respond(
                &question,
                &frames,
                ((d_idx as u64) << 8) | (bitrate as u64 / 100_000),
            );
            rows.push(Fig4Row {
                question: fact.question.clone(),
                required_detail: fact.required_detail,
                bitrate_bps: bitrate,
                achieved_bps: summary.achieved_bitrate_bps,
                probability_correct: answer.probability_correct,
                answered_correctly: answer.correct,
            });
        }
    }

    let mut body = String::from(
        "| question | detail req. | bitrate | achieved | P(correct) | correct? |\n|---|---|---|---|---|---|\n",
    );
    for r in &rows {
        body.push_str(&format!(
            "| {} | {:.2} | {} | {} | {:.2} | {} |\n",
            r.question,
            r.required_detail,
            kbps(r.bitrate_bps),
            kbps(r.achieved_bps),
            r.probability_correct,
            if r.answered_correctly { "yes" } else { "no" }
        ));
    }
    body.push_str("\nPaper (Figure 4): the score question is answered correctly even at 200 Kbps, while the jersey-logo question fails once the video is blurry — degradation hurts only when the chat context needs the degraded detail.\n");
    print_section("Figure 4 — context decides whether low bitrate hurts", &body);
    write_json("fig4_context_case_study", &rows);
}
