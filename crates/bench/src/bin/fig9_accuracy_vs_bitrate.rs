//! Figure 9: MLLM accuracy vs bitrate — context-aware streaming vs the uniform-QP baseline
//! at matched actual bitrates (§3.2).

use aivc_bench::{print_section, write_json, Scale};
use aivc_scene::Corpus;
use aivchat_core::eval::accuracy_table;
use aivchat_core::run_accuracy_vs_bitrate;

fn main() {
    let scale = Scale::from_env();
    let clips = scale.pick(5, 15, 60);
    let frames_per_clip = scale.pick(4, 6, 8);
    // Hold the capture rate fixed at 30 FPS so bitrate is the only variable (as in the paper).
    let mut corpus = Corpus::streamingbench_like(31, clips, 10.0, 20.0);
    corpus.set_uniform_fps(30.0);

    let bitrates = [1_700_000.0, 850_000.0, 640_000.0, 430_000.0];
    let points = run_accuracy_vs_bitrate(&corpus, &bitrates, 0.55, frames_per_clip, 77);

    let mut body = accuracy_table(&points);
    body.push_str(
        "\nShape check: the baseline's accuracy collapses as the bitrate approaches ~430 kbps, while \
         context-aware streaming degrades only mildly and matches (or beats) the baseline at roughly \
         double the bitrate. Scenes whose evidence region covers most of the frame (lecture slides) \
         gain the least, as expected — context awareness helps exactly when the chat-relevant region \
         is a small part of the picture.\n",
    );
    print_section("Figure 9 — accuracy vs bitrate (ours vs baseline)", &body);
    write_json("fig9_accuracy_vs_bitrate", &points);
}
