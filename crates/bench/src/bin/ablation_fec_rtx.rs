//! Ablation: forward error correction vs retransmission under random and bursty loss.
//!
//! AI Video Chat's latency budget leaves little room for retransmission round trips; FEC
//! trades uplink bitrate for latency. This ablation quantifies that trade on the paper's
//! 10 Mbps / 30 ms link.

use aivc_bench::{kbps, print_section, write_json, Scale};
use aivc_netsim::LossModel;
use aivc_rtc::session::synthetic_frame_schedule;
use aivc_rtc::{FecConfig, SessionConfig, VideoSession};
use serde::Serialize;

#[derive(Serialize)]
struct FecRow {
    loss_model: String,
    recovery: String,
    mean_latency_ms: f64,
    p95_latency_ms: f64,
    completion_rate: f64,
    uplink_bitrate_bps: f64,
}

fn main() {
    let scale = Scale::from_env();
    let secs = scale.pick(15.0, 60.0, 400.0);
    let bitrate = 800_000.0;
    let frames = synthetic_frame_schedule(bitrate, 30.0, secs, 60, 6.0);

    let loss_models = [
        ("iid 3%", LossModel::Iid { rate: 0.03 }),
        ("bursty 3% (burst 8)", LossModel::bursty(0.03, 8.0)),
    ];
    let mut rows = Vec::new();
    for (loss_name, loss) in loss_models {
        for (recovery, fec, rtx) in [
            ("RTX only", FecConfig::disabled(), true),
            ("FEC(4) only", FecConfig::with_group_size(4), false),
            ("FEC(4) + RTX", FecConfig::with_group_size(4), true),
            ("none", FecConfig::disabled(), false),
        ] {
            let mut config = SessionConfig::paper_fig3(0.0, bitrate, 77);
            config.path.uplink.loss = loss;
            config.fec = fec;
            config.enable_retransmission = rtx;
            let stats = VideoSession::new(config).run(&frames).stats;
            let mut latency = stats.transmission_latency();
            rows.push(FecRow {
                loss_model: loss_name.to_string(),
                recovery: recovery.to_string(),
                mean_latency_ms: latency.mean_ms(),
                p95_latency_ms: latency.p95_ms(),
                completion_rate: stats.completion_rate(),
                uplink_bitrate_bps: stats.uplink_bitrate_bps(),
            });
        }
    }

    let mut body = String::from(
        "800 kbps video over the paper's 10 Mbps / 30 ms link.\n\n| loss | recovery | mean latency | p95 latency | completion | uplink rate |\n|---|---|---|---|---|---|\n",
    );
    for r in &rows {
        body.push_str(&format!(
            "| {} | {} | {:.1} ms | {:.1} ms | {:.1}% | {} |\n",
            r.loss_model,
            r.recovery,
            r.mean_latency_ms,
            r.p95_latency_ms,
            r.completion_rate * 100.0,
            kbps(r.uplink_bitrate_bps)
        ));
    }
    body.push_str("\nFEC removes most retransmission round trips under i.i.d. loss (lower p95) at ~25% extra uplink bitrate, but single-parity groups recover little under bursty loss — where NACK/RTX remains necessary for completeness.\n");
    print_section("Ablation — FEC vs retransmission", &body);
    write_json("ablation_fec_rtx", &rows);
}
