//! Figure 2: the MLLM processes video at a very low frame rate, so most transmitted frames
//! are redundant.
//!
//! A 60 FPS camera feed is offered to a Qwen2.5-Omni-like receiver (≤2 FPS, ≤602,112 px);
//! the harness reports how many frames and pixels the model actually consumes.

use aivc_bench::{print_section, write_json, Scale};
use aivc_mllm::{Downsampler, FrameSampler, MllmConfig};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Row {
    capture_fps: f64,
    duration_secs: f64,
    frames_captured: u64,
    frames_ingested: u64,
    redundant_frame_fraction: f64,
    pixels_per_captured_frame: u64,
    pixels_per_ingested_frame: u64,
    redundant_pixel_fraction: f64,
}

fn main() {
    let scale = Scale::from_env();
    let duration = scale.pick(10.0, 60.0, 600.0);
    let config = MllmConfig::qwen_omni_like();
    let mut rows = Vec::new();

    for capture_fps in [30.0, 60.0] {
        let source = VideoSource::new(
            basketball_game(1),
            SourceConfig {
                fps: capture_fps,
                duration_secs: duration,
            },
        );
        let mut sampler = FrameSampler::new(&config);
        for frame in source.frames() {
            sampler.offer(frame.capture_ts_us);
        }
        let stats = sampler.stats();
        let downsampler = Downsampler::new(&config);
        let decision = downsampler.decide(source.scene().width, source.scene().height);
        let pixel_redundancy = 1.0
            - (stats.taken as f64 * decision.retained_pixels as f64)
                / (stats.offered as f64 * decision.source_pixels as f64);
        rows.push(Fig2Row {
            capture_fps,
            duration_secs: duration,
            frames_captured: stats.offered,
            frames_ingested: stats.taken,
            redundant_frame_fraction: stats.redundant_fraction(),
            pixels_per_captured_frame: decision.source_pixels,
            pixels_per_ingested_frame: decision.retained_pixels,
            redundant_pixel_fraction: pixel_redundancy,
        });
    }

    let mut body = String::from(
        "| capture fps | frames captured | frames ingested | redundant frames | redundant pixels |\n|---|---|---|---|---|\n",
    );
    for r in &rows {
        body.push_str(&format!(
            "| {:.0} | {} | {} | {:.1}% | {:.1}% |\n",
            r.capture_fps,
            r.frames_captured,
            r.frames_ingested,
            r.redundant_frame_fraction * 100.0,
            r.redundant_pixel_fraction * 100.0
        ));
    }
    body.push_str("\nPaper (Figure 2 + §2.1): MLLMs ingest at most 2 FPS and ≤602,112 px per frame, so the overwhelming majority of a 30–60 FPS 1080p stream is redundancy the receiver never perceives.\n");
    print_section("Figure 2 — frame/pixel redundancy at the MLLM receiver", &body);
    write_json("fig2_frame_redundancy", &rows);
}
