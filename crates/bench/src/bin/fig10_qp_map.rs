//! Figure 10: the CLIP-informed QP map — similar total bitrate to the baseline, but bits are
//! shifted onto the chat-important regions.
//!
//! Prints (a) the baseline uniform QP, (b) the context-aware QP map as an ASCII grid, and
//! (c) the per-object bit allocation of both encodes at matched bitrate.

use aivc_bench::{kbps, print_section, write_json};
use aivc_mllm::{Question, QuestionFormat};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivchat_core::{ContextAgnosticBaseline, ContextAwareStreamer};
use serde::Serialize;

#[derive(Serialize)]
struct ObjectBits {
    object: String,
    ours_bits: u64,
    baseline_bits: u64,
}

fn main() {
    let scene = basketball_game(1);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(10.0));
    let frames = aivchat_core::baseline::sample_frames(&source, 4);
    let question = Question::from_fact(&scene.facts[1], QuestionFormat::FreeResponse); // jersey logo
    let streamer = ContextAwareStreamer::default();
    let baseline = ContextAgnosticBaseline::default();
    let target = 430_000.0;

    let query = streamer.query_for_question(&question);
    let ours = streamer.encode_at_bitrate(&frames, &query, 30.0, target);
    let theirs = baseline.encode_at_bitrate(&frames, 30.0, target);
    let qp_map = streamer.qp_map_for(&frames[0], &query).offset_all(ours.qp_offset);

    let mut rows = Vec::new();
    for object in &scene.objects {
        rows.push(ObjectBits {
            object: object.name.clone(),
            ours_bits: ours.encoded[0].bits_on_object(object.id, 0.05),
            baseline_bits: theirs.encoded[0].bits_on_object(object.id, 0.05),
        });
    }

    let mut body = format!(
        "Question: \"{}\"\n\nBaseline: uniform QP {} at {} | Ours: CLIP-informed map (offset {:+}) at {}\n\n",
        question.text,
        theirs.qp.value(),
        kbps(theirs.achieved_bitrate_bps),
        ours.qp_offset,
        kbps(ours.achieved_bitrate_bps),
    );
    body.push_str("| object | ours (bits, frame 0) | baseline (bits, frame 0) |\n|---|---|---|\n");
    for r in &rows {
        body.push_str(&format!(
            "| {} | {} | {} |\n",
            r.object, r.ours_bits, r.baseline_bits
        ));
    }
    body.push_str(
        "\nCLIP-informed QP map of frame 0 (one number per 64x64 CTU — low = high quality):\n\n```\n",
    );
    body.push_str(&qp_map.to_ascii());
    body.push_str("```\n\nPaper (Figure 10): at ~430 vs ~425 Kbps, the context-aware encode puts visibly more bits on the chat-important regions (jersey logo, the player covering his mouth) and fewer on chat-irrelevant ones, which is what preserves MLLM accuracy.\n");
    print_section("Figure 10 — CLIP-informed QP map at matched bitrate", &body);
    write_json("fig10_qp_map", &rows);
}
