//! The hot-path regression gate: re-measures every tracked hot path with the same suite
//! `hotpath_baseline` records, compares the fresh medians against the committed
//! `BENCH_hotpaths.json`, and exits non-zero if any median regressed by more than the
//! tolerance (default 5 %, per ROADMAP.md).
//!
//! ```bash
//! cargo run --release -p aivc-bench --bin bench_check            # compares ./BENCH_hotpaths.json
//! cargo run --release -p aivc-bench --bin bench_check -- path.json
//! BENCH_CHECK_TOLERANCE=0.10 cargo run --release -p aivc-bench --bin bench_check
//! cargo run --release -p aivc-bench --bin bench_check -- --only conversation_fleet_throughput_256
//! ```
//!
//! Paths present in the fresh run but absent from the committed baseline fail the check
//! too — they mean the baseline was not re-recorded after adding a hot path. Improvements
//! are reported but never fail.
//!
//! When *every* entry regresses past tolerance by a similar factor, the check diagnoses
//! host CPU steal ("box noise — re-run") and exits 2 instead of reporting a phantom
//! code regression: real regressions are localized to the code path that changed.
//!
//! The `_par` and `pipeline_throughput_*` entries are re-measured **at the committed
//! file's `pool_lanes`** (overridable with `AIVC_POOL_SIZE`), so the comparison is always
//! lane-count-for-lane-count; the `turn_breakdown` section is documentation and is not
//! re-measured here (every stage it decomposes is already gated individually).

use aivc_bench::hotpath_suite::{measure_hotpaths_matching, BaselineFile};
use aivc_bench::print_section;

const SAMPLES: usize = 30;
const TARGET_SAMPLE_MS: f64 = 25.0;

fn main() {
    // `bench_check [baseline.json] [--only <name>]...` — with `--only`, just the named
    // entries are re-measured and compared (the CI serving-suite uses this to gate the
    // fleet-throughput baseline without paying for the whole suite).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = "BENCH_hotpaths.json".to_string();
    let mut only: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--only" => {
                i += 1;
                match args.get(i) {
                    Some(name) => only.push(name.clone()),
                    None => {
                        eprintln!("--only requires an entry name");
                        std::process::exit(2);
                    }
                }
            }
            other => baseline_path = other.to_string(),
        }
        i += 1;
    }
    let tolerance: f64 = std::env::var("BENCH_CHECK_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.05);

    let committed_json = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let committed: BaselineFile = serde_json::from_str(&committed_json)
        .unwrap_or_else(|e| panic!("cannot parse {baseline_path}: {e:?}"));

    let pool_lanes = aivc_par::MiniPool::env_lanes_or(committed.pool_lanes.max(1));
    println!(
        "(re-measuring with pool lanes = {pool_lanes}; committed file used {})",
        committed.pool_lanes
    );

    let filter = if only.is_empty() { None } else { Some(&only[..]) };
    let fresh = measure_hotpaths_matching(SAMPLES, TARGET_SAMPLE_MS, pool_lanes, filter);
    if let Some(names) = filter {
        for name in names {
            if !fresh.iter().any(|m| &m.name == name) {
                eprintln!("--only {name:?} matches no measured hot path");
                std::process::exit(2);
            }
        }
    }

    let mut table = String::from(
        "| hot path | committed ns | fresh ns | delta | verdict |\n| --- | --- | --- | --- | --- |\n",
    );
    let mut failures = Vec::new();
    let mut deltas = Vec::new();
    for measurement in &fresh {
        let Some(reference) = committed.hotpaths.iter().find(|h| h.name == measurement.name) else {
            failures.push(format!(
                "{}: missing from {baseline_path} — re-record it with `cargo run --release -p aivc-bench --bin hotpath_baseline`",
                measurement.name
            ));
            table.push_str(&format!(
                "| {} | — | {:.1} | — | NEW (unrecorded) |\n",
                measurement.name, measurement.median_ns_per_iter
            ));
            continue;
        };
        let delta = measurement.median_ns_per_iter / reference.median_ns_per_iter - 1.0;
        deltas.push(delta);
        let verdict = if delta > tolerance {
            failures.push(format!(
                "{}: {:.1} ns vs committed {:.1} ns (+{:.1} % > {:.0} % tolerance)",
                measurement.name,
                measurement.median_ns_per_iter,
                reference.median_ns_per_iter,
                delta * 100.0,
                tolerance * 100.0
            ));
            "REGRESSED"
        } else if delta < -tolerance {
            "improved"
        } else {
            "ok"
        };
        table.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:+.1} % | {} |\n",
            measurement.name,
            reference.median_ns_per_iter,
            measurement.median_ns_per_iter,
            delta * 100.0,
            verdict
        ));
    }
    // Staleness is only checkable on a full run: under `--only` the unmeasured entries
    // are unmeasured on purpose.
    if filter.is_none() {
        for reference in &committed.hotpaths {
            if !fresh.iter().any(|m| m.name == reference.name) {
                failures.push(format!(
                    "{}: committed in {baseline_path} but no longer measured — stale baseline entry",
                    reference.name
                ));
            }
        }
    }
    print_section(
        &format!(
            "Hot-path check vs {baseline_path} (tolerance {:.0} %)",
            tolerance * 100.0
        ),
        &table,
    );

    if failures.is_empty() {
        println!(
            "bench_check: all {} hot paths within tolerance ... ok",
            fresh.len()
        );
        return;
    }

    // A genuine code regression is localized to the code path it touched; CPU steal on a
    // shared/busy box instead slows *every* entry — CLIP, encode, decode, sim, MLLM alike
    // — by a similar factor. When all entries regress past tolerance with tightly
    // clustered slowdowns, the right response is to re-run on a quiet machine, not to
    // hunt a phantom regression (exit code 2 distinguishes this from a real failure).
    let min_delta = deltas.iter().copied().fold(f64::INFINITY, f64::min);
    let max_delta = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // The steal diagnosis needs a spread of independent entries: a handful of `--only`
    // regressions clustering is just as consistent with a real localized regression.
    let uniform_slowdown = deltas.len() >= 5
        && min_delta > tolerance
        && (1.0 + max_delta) / (1.0 + min_delta) < 1.0 + tolerance;
    if uniform_slowdown {
        eprintln!(
            "bench_check: every entry regressed by a similar factor ({:+.1} % to {:+.1} %) — \
             box noise (host CPU steal), not a code regression. Re-run on a quiet machine.",
            min_delta * 100.0,
            max_delta * 100.0
        );
        std::process::exit(2);
    }

    eprintln!("bench_check: {} failure(s):", failures.len());
    for failure in &failures {
        eprintln!("  - {failure}");
    }
    std::process::exit(1);
}
