//! Table 1: the DeViBench benchmark summary (sample count, sample types, total corpus
//! duration, total money spent, total time cost).
//!
//! Sizes the synthetic corpus to the paper's 180,000 s at `AIVC_SCALE=full` (a scaled-down
//! corpus otherwise) and regenerates the whole table from the pipeline's cost ledger.

use aivc_bench::{print_section, write_json, Scale};
use aivc_devibench::{CostModel, Pipeline, PipelineConfig};
use aivc_scene::Corpus;

fn main() {
    let scale = Scale::from_env();
    // The paper's corpus totals 180,000 s; scale down proportionally for the cheaper runs.
    let target_duration = scale.pick(600.0, 6_000.0, 180_000.0);
    let corpus = Corpus::with_total_duration(1_074, target_duration, 120.0);
    let report = Pipeline::new(PipelineConfig::default()).run(&corpus);
    let summary = report.dataset.summary(&CostModel::default());

    let scale_factor = 180_000.0 / corpus.stats().total_duration_secs;
    let mut body = summary.to_markdown();
    body.push_str(&format!(
        "\nCorpus scale: {:.1}% of the paper's 180,000 s ({} clips). Extrapolated to full scale: \
         ~{:.0} QA samples, ~${:.2}, ~{:.0} s of pipeline time.\n",
        100.0 / scale_factor,
        corpus.len(),
        summary.qa_samples as f64 * scale_factor,
        summary.total_money_usd * scale_factor,
        summary.total_time_secs * scale_factor,
    ));
    body.push_str(&format!(
        "\nStage yields: filter acceptance {:.2}% (paper 11.16%), cross-verification {:.2}% (paper 70.61%), end-to-end {:.2}% (paper 7.8%).\n",
        report.filter_acceptance_rate() * 100.0,
        report.verification_pass_rate() * 100.0,
        report.end_to_end_yield() * 100.0
    ));
    print_section("Table 1 — benchmark summary", &body);
    write_json("table1_benchmark_summary", &summary);
}
