//! Ablation: removing the jitter buffer (§2.1, "jitter has no impact").
//!
//! Runs the same chat turn with and without a traditional adaptive jitter buffer on a
//! jittery link and reports the per-stage latency budget and the answer probability:
//! the buffer adds tens of milliseconds of latency and changes nothing about what the MLLM
//! perceives.

use aivc_bench::{print_section, write_json, Scale};
use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::{LinkConfig, LossModel, PathConfig, SimDuration};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivchat_core::{AiVideoChatSession, SessionOptions};
use serde::Serialize;

#[derive(Serialize)]
struct JitterRow {
    jitter_buffer: bool,
    total_latency_ms: f64,
    jitter_buffer_ms: f64,
    transmission_ms: f64,
    probability_correct: f64,
    meets_300ms_target: bool,
}

fn main() {
    let scale = Scale::from_env();
    let window_secs = scale.pick(2.0, 4.0, 8.0);
    let scene = basketball_game(1);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
    let question = Question::from_fact(&scene.facts[0], QuestionFormat::FreeResponse);

    // A jittery 4G-like uplink (±25 ms delivery jitter).
    let jittery_path = PathConfig {
        uplink: LinkConfig::constant(
            8e6,
            SimDuration::from_millis(30),
            300,
            LossModel::Iid { rate: 0.01 },
        )
        .with_jitter(SimDuration::from_millis(25)),
        downlink: LinkConfig::constant(20e6, SimDuration::from_millis(30), 300, LossModel::None),
    };

    let mut rows = Vec::new();
    for use_jitter_buffer in [true, false] {
        let mut options = SessionOptions::default_context_aware(11);
        options.path = jittery_path.clone();
        options.window_secs = window_secs;
        options.use_jitter_buffer = use_jitter_buffer;
        let report = AiVideoChatSession::new(options).run_turn(&source, &question);
        rows.push(JitterRow {
            jitter_buffer: use_jitter_buffer,
            total_latency_ms: report.latency.total_ms(),
            jitter_buffer_ms: report.latency.jitter_buffer_ms,
            transmission_ms: report.latency.transmission_ms,
            probability_correct: report.answer.probability_correct,
            meets_300ms_target: report.latency.meets_target(),
        });
    }

    let mut body = String::from(
        "| jitter buffer | total latency | buffer share | transmission | P(correct) | ≤300 ms |\n|---|---|---|---|---|---|\n",
    );
    for r in &rows {
        body.push_str(&format!(
            "| {} | {:.1} ms | {:.1} ms | {:.1} ms | {:.2} | {} |\n",
            if r.jitter_buffer {
                "traditional"
            } else {
                "removed (AI mode)"
            },
            r.total_latency_ms,
            r.jitter_buffer_ms,
            r.transmission_ms,
            r.probability_correct,
            if r.meets_300ms_target { "yes" } else { "no" }
        ));
    }
    body.push_str("\n§2.1: MLLM positional encoding uses capture timestamps, so removing the buffer saves its entire delay without affecting accuracy.\n");
    print_section("Ablation — jitter buffer removal", &body);
    write_json("ablation_jitter_buffer", &rows);
}
