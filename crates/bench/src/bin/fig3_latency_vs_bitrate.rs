//! Figure 3: how bitrate and packet loss affect transmission latency on a 10 Mbps / 30 ms
//! emulated link (§2.2).
//!
//! The harness sweeps video bitrate across the paper's grey region (traditional ABR: close
//! to the bandwidth) and yellow region (AI-oriented: ultra-low bitrate), at several loss
//! rates, and reports mean / p95 per-frame transmission latency. The paper's observations
//! under test: (1) latency explodes once bitrate exceeds bandwidth; (2) below bandwidth,
//! latency still grows with bitrate because more packets mean more retransmission exposure.

use aivc_bench::{kbps, print_section, write_json, Scale};
use aivc_rtc::session::synthetic_frame_schedule;
use aivc_rtc::{SessionConfig, VideoSession};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Point {
    bitrate_bps: f64,
    loss_rate: f64,
    mean_latency_ms: f64,
    p95_latency_ms: f64,
    p99_latency_ms: f64,
    completion_rate: f64,
    retransmission_rate: f64,
}

fn main() {
    let scale = Scale::from_env();
    // The paper's total is 40,489 s of transmission across the whole sweep; `full` approaches
    // that, `default` keeps the same shape at ~1/20 of the duration.
    let secs_per_point = scale.pick(20.0, 120.0, 1_700.0);
    let bitrates = [0.2e6, 0.4e6, 0.8e6, 1.5e6, 3.0e6, 6.0e6, 9.0e6, 12.0e6, 16.0e6];
    let losses = [0.0, 0.01, 0.05, 0.10];
    let mut points = Vec::new();

    for &loss in &losses {
        for &bitrate in &bitrates {
            let frames = synthetic_frame_schedule(bitrate, 30.0, secs_per_point, 60, 6.0);
            let session = VideoSession::new(SessionConfig::paper_fig3(loss, bitrate, 42));
            let stats = session.run(&frames).stats;
            let mut latency = stats.transmission_latency();
            points.push(Fig3Point {
                bitrate_bps: bitrate,
                loss_rate: loss,
                mean_latency_ms: latency.mean_ms(),
                p95_latency_ms: latency.p95_ms(),
                p99_latency_ms: latency.p99_ms(),
                completion_rate: stats.completion_rate(),
                retransmission_rate: stats.retransmission_rate(),
            });
        }
    }

    let mut body = String::from(
        "10 Mbps bandwidth, 30 ms one-way delay (paper §2.2).\n\n| loss | bitrate | mean latency | p95 latency | completion | rtx rate |\n|---|---|---|---|---|---|\n",
    );
    for p in &points {
        body.push_str(&format!(
            "| {:.0}% | {} | {:.1} ms | {:.1} ms | {:.1}% | {:.3} |\n",
            p.loss_rate * 100.0,
            kbps(p.bitrate_bps),
            p.mean_latency_ms,
            p.p95_latency_ms,
            p.completion_rate * 100.0,
            p.retransmission_rate
        ));
    }
    body.push_str("\nPaper (Figure 3): latency is enormous once bitrate exceeds the 10 Mbps bandwidth (grey-region boundary); below the bandwidth, latency still rises with bitrate and with loss, which opens the ultra-low-bitrate yellow region for AI receivers.\n");
    print_section(
        "Figure 3 — transmission latency vs bitrate and packet loss",
        &body,
    );
    write_json("fig3_latency_vs_bitrate", &points);
}
