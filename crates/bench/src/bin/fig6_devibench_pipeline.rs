//! Figure 6 (+ §3.1 yields): DeViBench's automatic QA construction pipeline.
//!
//! Runs the five-step pipeline over a synthetic corpus and reports each stage's yield next
//! to the paper's numbers: 11.16 % filter acceptance, 70.61 % cross-verification pass rate,
//! 7.8 % end-to-end yield.

use aivc_bench::{print_section, write_json, Scale};
use aivc_devibench::{Pipeline, PipelineConfig};
use aivc_scene::Corpus;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Report {
    clips: usize,
    corpus_duration_secs: f64,
    generated_candidates: usize,
    filter_accepted: usize,
    cross_verified: usize,
    filter_acceptance_rate: f64,
    verification_pass_rate: f64,
    end_to_end_yield: f64,
    final_samples: usize,
}

fn main() {
    let scale = Scale::from_env();
    let clips = scale.pick(6, 30, 400);
    let corpus = Corpus::streamingbench_like(2025, clips, 30.0, 90.0);
    let report = Pipeline::new(PipelineConfig::default()).run(&corpus);

    let out = Fig6Report {
        clips,
        corpus_duration_secs: corpus.stats().total_duration_secs,
        generated_candidates: report.generated,
        filter_accepted: report.filter_accepted,
        cross_verified: report.verified,
        filter_acceptance_rate: report.filter_acceptance_rate(),
        verification_pass_rate: report.verification_pass_rate(),
        end_to_end_yield: report.end_to_end_yield(),
        final_samples: report.dataset.len(),
    };

    let body = format!(
        "| stage | ours | paper |\n|---|---|---|\n\
         | video collection (clips / seconds) | {} / {:.0} | StreamingBench videos / 180,000 s |\n\
         | QA generation (candidates) | {} | — |\n\
         | QA filtering acceptance | {:.2}% | 11.16% |\n\
         | cross-verification pass rate | {:.2}% | 70.61% |\n\
         | end-to-end yield | {:.2}% | 7.8% |\n\
         | final QA samples | {} | 1,074 |\n",
        out.clips,
        out.corpus_duration_secs,
        out.generated_candidates,
        out.filter_acceptance_rate * 100.0,
        out.verification_pass_rate * 100.0,
        out.end_to_end_yield * 100.0,
        out.final_samples
    );
    print_section(
        "Figure 6 / §3.1 — DeViBench automatic QA construction pipeline",
        &body,
    );
    write_json("fig6_devibench_pipeline", &out);
}
