//! The §1 latency-budget analysis: where the 300 ms goes, with and without AI-oriented RTC.
//!
//! Runs a full chat turn under three configurations (traditional RTC at ABR-chosen bitrate
//! with a jitter buffer; AI-oriented ultra-low-bitrate without a jitter buffer; the same on
//! a degraded network) and prints the per-stage breakdown against the 300 ms target.

use aivc_bench::{print_section, write_json, Scale};
use aivc_mllm::{Question, QuestionFormat};
use aivc_netsim::PathConfig;
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivchat_core::{AiVideoChatSession, SessionOptions, RESPONSE_LATENCY_TARGET_MS};
use serde::Serialize;

#[derive(Serialize)]
struct BudgetRow {
    configuration: String,
    breakdown: String,
    total_ms: f64,
    meets_target: bool,
    probability_correct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let window = scale.pick(2.0, 4.0, 6.0);
    let scene = basketball_game(1);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(6.0));
    let question = Question::from_fact(&scene.facts[0], QuestionFormat::FreeResponse);

    let mut configs: Vec<(String, SessionOptions)> = Vec::new();
    // Traditional: ABR-style bitrate near the link capacity, jitter buffer on.
    let mut traditional = SessionOptions::default_baseline(3);
    traditional.target_bitrate_bps = 6_000_000.0;
    traditional.use_jitter_buffer = true;
    traditional.window_secs = window;
    configs.push(("traditional RTC (6 Mbps, jitter buffer)".into(), traditional));
    // AI-oriented: ultra-low bitrate, context-aware, no jitter buffer.
    let mut ai = SessionOptions::default_context_aware(3);
    ai.window_secs = window;
    configs.push(("AI-oriented (430 kbps, context-aware, no buffer)".into(), ai));
    // Same, on a loss-degraded network.
    let mut degraded = SessionOptions::default_context_aware(3);
    degraded.window_secs = window;
    degraded.path = PathConfig::paper_section_2_2(0.05);
    configs.push(("AI-oriented, 5% loss".into(), degraded));

    let mut rows = Vec::new();
    for (name, options) in configs {
        let report = AiVideoChatSession::new(options).run_turn(&source, &question);
        rows.push(BudgetRow {
            configuration: name,
            breakdown: report.latency.to_line(),
            total_ms: report.latency.total_ms(),
            meets_target: report.latency.meets_target(),
            probability_correct: report.answer.probability_correct,
        });
    }

    let mut body = format!("Target: {RESPONSE_LATENCY_TARGET_MS} ms end-to-end (§1).\n\n");
    for r in &rows {
        body.push_str(&format!(
            "- **{}** — {} — P(correct) {:.2}\n",
            r.configuration, r.breakdown, r.probability_correct
        ));
    }
    body.push_str("\nMLLM inference alone consumes most of the budget; only the ultra-low-bitrate, buffer-free configuration leaves the network side small enough to fit, which is the paper's motivating argument.\n");
    print_section("§1 — end-to-end response latency budget", &body);
    write_json("latency_budget", &rows);
}
