//! Ablation: the Eq. 2 temperature γ.
//!
//! The paper sets γ = 3 to "aggressively penalize irrelevant regions". This ablation sweeps
//! γ and reports, at a fixed ~430 Kbps budget, the decoded quality of the evidence region and
//! the answer probability — showing why a soft allocation (γ = 1) wastes bits on irrelevant
//! regions and an extreme one starves the moderately relevant context.

use aivc_bench::{print_section, write_json, Scale};
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_scene::templates::basketball_game;
use aivc_scene::{SourceConfig, VideoSource};
use aivc_semantics::ClipModel;
use aivchat_core::{ContextAwareStreamer, QpAllocatorConfig, StreamerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct GammaRow {
    gamma: f64,
    achieved_bps: f64,
    perceived_evidence_quality: f64,
    probability_correct: f64,
}

fn main() {
    let scale = Scale::from_env();
    let frames_per_clip = scale.pick(3, 6, 10);
    let scene = basketball_game(1);
    let source = VideoSource::new(scene.clone(), SourceConfig::fps30(10.0));
    let question = Question::from_fact(&scene.facts[1], QuestionFormat::FreeResponse);
    let responder = MllmChat::responder(5);
    let mut rows = Vec::new();

    for gamma in [0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
        let config = StreamerConfig {
            allocator: QpAllocatorConfig::with_gamma(gamma),
            ..StreamerConfig::default()
        };
        let streamer = ContextAwareStreamer::new(config, ClipModel::mobile_default());
        let (frames, enc) = streamer.offline_decode(&source, &question, 430_000.0, frames_per_clip);
        let perceived = responder
            .answer_model()
            .perceived_evidence_quality(&question, &frames);
        let p = responder.answer_model().probability_correct(&question, &frames);
        rows.push(GammaRow {
            gamma,
            achieved_bps: enc.achieved_bitrate_bps,
            perceived_evidence_quality: perceived,
            probability_correct: p,
        });
    }

    let mut body =
        String::from("| gamma | achieved kbps | evidence quality | P(correct) |\n|---|---|---|---|\n");
    for r in &rows {
        body.push_str(&format!(
            "| {:.1} | {:.1} | {:.2} | {:.2} |\n",
            r.gamma,
            r.achieved_bps / 1_000.0,
            r.perceived_evidence_quality,
            r.probability_correct
        ));
    }
    body.push_str("\nThe paper's γ = 3 sits on the plateau: aggressive enough to starve irrelevant regions, not so aggressive that moderately relevant context (the player holding the jersey) is destroyed.\n");
    print_section("Ablation — Eq. 2 temperature γ at ~430 kbps", &body);
    write_json("ablation_gamma", &rows);
}
