//! Criterion benchmarks of (scaled-down versions of) the per-figure experiment kernels, so
//! `cargo bench` exercises every experiment path end to end. The full-size experiments are
//! the `aivc-bench` binaries (see DESIGN.md §4).

use aivc_devibench::{Pipeline, PipelineConfig};
use aivc_rtc::session::synthetic_frame_schedule;
use aivc_rtc::{SessionConfig, VideoSession};
use aivc_scene::Corpus;
use aivchat_core::run_accuracy_vs_bitrate;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3_kernel(c: &mut Criterion) {
    let frames = synthetic_frame_schedule(2_000_000.0, 30.0, 5.0, 60, 6.0);
    c.bench_function("fig3_session_5s_2mbps_5pct_loss", |b| {
        b.iter(|| {
            let session = VideoSession::new(SessionConfig::paper_fig3(0.05, 2_000_000.0, 7));
            black_box(session.run(black_box(&frames)))
        });
    });
}

fn bench_devibench_kernel(c: &mut Criterion) {
    let corpus = Corpus::streamingbench_like(5, 2, 15.0, 20.0);
    c.bench_function("devibench_pipeline_2_clips", |b| {
        b.iter(|| black_box(Pipeline::new(PipelineConfig::default()).run(black_box(&corpus))));
    });
}

fn bench_fig9_kernel(c: &mut Criterion) {
    let mut corpus = Corpus::streamingbench_like(31, 2, 8.0, 10.0);
    corpus.set_uniform_fps(30.0);
    c.bench_function("fig9_accuracy_2_clips_1_bitrate", |b| {
        b.iter(|| {
            black_box(run_accuracy_vs_bitrate(
                black_box(&corpus),
                &[430_000.0],
                0.55,
                3,
                7,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3_kernel, bench_devibench_kernel, bench_fig9_kernel
}
criterion_main!(benches);
