//! Criterion micro-benchmarks of the hot paths: packetization, CTU encoding, CLIP
//! correlation (full and incremental), the QP allocator, the MLLM accuracy model and the
//! full chat turn. `aivc_bench::hotpath_suite` measures the same scenarios for the
//! committed baseline.

use aivc_bench::hotpath_suite::coherence_scene;
use aivc_mllm::{MllmChat, Question, QuestionFormat};
use aivc_par::MiniPool;
use aivc_rtc::packetizer::{OutgoingFrame, Packetizer};
use aivc_scene::templates::basketball_game;
use aivc_scene::{Frame, SourceConfig, VideoSource};
use aivc_semantics::{ClipModel, ClipParScratch, ClipScratch, TextQuery};
use aivc_videocodec::{Decoder, EncodeParScratch, EncodedFrame, Encoder, EncoderConfig, Qp, QpMap};
use aivchat_core::{ChatServer, ChatSession, QpAllocator, QpAllocatorConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_packetizer(c: &mut Criterion) {
    c.bench_function("packetize_100kB_frame", |b| {
        // The reuse API the transport session uses: zero heap allocations per iteration
        // once the buffer has warmed up to the frame's packet count.
        let mut packetizer = Packetizer::default();
        let mut packets = Vec::new();
        let frame = OutgoingFrame {
            frame_id: 1,
            capture_ts_us: 0,
            size_bytes: 100_000,
            is_keyframe: true,
        };
        b.iter(|| {
            packetizer.packetize_into(black_box(&frame), &mut packets);
            black_box(packets.len())
        });
    });
    c.bench_function("packetize_100kB_frame_alloc", |b| {
        // The allocating convenience form, kept for comparison against the baseline.
        let mut packetizer = Packetizer::default();
        let frame = OutgoingFrame {
            frame_id: 1,
            capture_ts_us: 0,
            size_bytes: 100_000,
            is_keyframe: true,
        };
        b.iter(|| black_box(packetizer.packetize(black_box(&frame))));
    });
}

fn bench_encoder(c: &mut Criterion) {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frame = source.frame(0);
    let encoder = Encoder::new(EncoderConfig::default());
    c.bench_function("encode_1080p_frame_uniform_qp", |b| {
        b.iter(|| black_box(encoder.encode_uniform(black_box(&frame), Qp::new(32))));
    });
}

fn bench_decoder(c: &mut Criterion) {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let encoder = Encoder::new(EncoderConfig::default());
    let encoded = encoder.encode_uniform(&source.frame(0), Qp::new(32));
    let decoder = Decoder::new();
    c.bench_function("decode_complete_1080p", |b| {
        // Coverage lists are Arc-shared with the encoded blocks, so a full-frame decode
        // performs no per-block coverage copies.
        b.iter(|| black_box(decoder.decode_complete(black_box(&encoded), None)));
    });
}

fn bench_clip_correlation(c: &mut Criterion) {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frame = source.frame(0);
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words(
        "Could you tell me the present score of the game?",
        model.ontology(),
    );
    c.bench_function("clip_correlation_map_1080p", |b| {
        // The scratch API the streamer uses: the query embedding is memoized and every
        // buffer is reused, so iterations are allocation-free after warmup.
        let mut scratch = ClipScratch::new();
        b.iter(|| {
            let map = model.correlation_map_with(black_box(&frame), &query, &mut scratch);
            black_box(map.values().len())
        });
    });
    c.bench_function("clip_correlation_map_1080p_alloc", |b| {
        // The allocating convenience form, kept for comparison against the baseline.
        b.iter(|| black_box(model.correlation_map(black_box(&frame), &query)));
    });
}

fn bench_clip_incremental(c: &mut Criterion) {
    // The temporal-coherence path at the calibrated ~10 % dirty rate: only motion-dirtied
    // patches are recomputed, bit-identical to the full recompute.
    let source = VideoSource::new(coherence_scene(), SourceConfig::fps30(1.0));
    let frame_a = source.frame(0);
    let frame_b = source.frame(1);
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words("Where is the player?", model.ontology());
    c.bench_function("clip_correlation_update_10pct_dirty", |b| {
        let mut scratch = ClipScratch::new();
        let _ = model.correlation_map_coherent(&frame_a, &query, &mut scratch);
        let mut toggle = false;
        b.iter(|| {
            toggle = !toggle;
            let frame = if toggle { &frame_b } else { &frame_a };
            let map = model.correlation_map_coherent(black_box(frame), &query, &mut scratch);
            black_box(map.values().len())
        });
    });
}

fn bench_qp_allocation(c: &mut Criterion) {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frame = source.frame(0);
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words("How many spectators can be seen?", model.ontology());
    let importance = model.correlation_map(&frame, &query);
    let encoder = Encoder::new(EncoderConfig::default());
    let grid = encoder.grid_for(&frame);
    let allocator = QpAllocator::new(QpAllocatorConfig::paper());
    c.bench_function("eq2_qp_allocation", |b| {
        // The reuse API over the threshold-table allocator: no `powf`, no allocations.
        let mut out = QpMap::empty();
        b.iter(|| {
            allocator.allocate_into(black_box(&importance), grid, &mut out);
            black_box(out.values().len())
        });
    });
    c.bench_function("eq2_qp_allocation_alloc", |b| {
        // The allocating convenience form, kept for comparison against the baseline.
        b.iter(|| black_box(allocator.allocate(black_box(&importance), grid)));
    });
}

fn bench_pipeline_turn(c: &mut Criterion) {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
    c.bench_function("pipeline_turn_1080p", |b| {
        // One long-lived session: every stage reuses the session's scratch buffers, so
        // post-warmup turns are allocation-free end to end.
        let mut session = ChatSession::with_defaults(1);
        b.iter(|| {
            let report = session.run_turn(black_box(&frames), &question);
            black_box(report.answer.visual_tokens)
        });
    });
}

fn bench_parallel_stages(c: &mut Criterion) {
    // The data-parallel stage forms on the machine's pool (AIVC_POOL_SIZE overrides); with
    // one lane these measure the sequential delegation, with N lanes the real speedup.
    let pool = MiniPool::new(MiniPool::env_lanes());
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frame = source.frame(0);
    let model = ClipModel::mobile_default();
    let query = TextQuery::from_words(
        "Could you tell me the present score of the game?",
        model.ontology(),
    );
    c.bench_function("clip_correlation_map_1080p_par", |b| {
        let mut scratch = ClipParScratch::new();
        b.iter(|| {
            let map = model.correlation_map_par(black_box(&frame), &query, &pool, &mut scratch);
            black_box(map.values().len())
        });
    });
    let encoder = Encoder::new(EncoderConfig::default());
    let qp_map = QpMap::uniform(encoder.grid_for(&frame), Qp::new(32));
    c.bench_function("encode_1080p_frame_uniform_qp_par", |b| {
        let mut scratch = EncodeParScratch::new();
        let mut out = EncodedFrame::placeholder();
        b.iter(|| {
            encoder.encode_into_par(black_box(&frame), &qp_map, &pool, &mut scratch, &mut out);
            black_box(out.total_bytes())
        });
    });
}

fn bench_throughput(c: &mut Criterion) {
    // N independent sessions per iteration, spread across the pool: the multi-user serving
    // scenario. turns/sec = sessions × 1e9 / (ns/iter).
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let frames: Vec<Frame> = (0..4).map(|i| source.frame(i * 15)).collect();
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
    for session_count in [1usize, 8, 64] {
        c.bench_function(&format!("pipeline_throughput_{session_count}_sessions"), |b| {
            let mut server = ChatServer::new(MiniPool::env_lanes(), session_count, 1);
            b.iter(|| {
                server.run_turns(black_box(&frames), &question);
                black_box(server.report(0).packets)
            });
        });
    }
}

fn bench_mllm_answer(c: &mut Criterion) {
    let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0));
    let encoder = Encoder::new(EncoderConfig::default());
    let decoder = Decoder::new();
    let frames: Vec<_> = (0..4)
        .map(|i| decoder.decode_complete(&encoder.encode_uniform(&source.frame(i * 30), Qp::new(32)), None))
        .collect();
    let question = Question::from_fact(&basketball_game(1).facts[0], QuestionFormat::MultipleChoice);
    let chat = MllmChat::responder(1);
    c.bench_function("mllm_respond_4_frames", |b| {
        b.iter(|| black_box(chat.respond(black_box(&question), &frames, 0)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_packetizer, bench_encoder, bench_decoder, bench_clip_correlation, bench_clip_incremental, bench_qp_allocation, bench_mllm_answer, bench_pipeline_turn, bench_parallel_stages, bench_throughput
}
criterion_main!(benches);
