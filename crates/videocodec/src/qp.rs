//! Quantization parameters and per-CTU QP maps.
//!
//! H.265 QPs range from 0 (near lossless) to 51 (coarsest). The paper's Eq. 2 maps semantic
//! correlation ρ ∈ [−1, 1] to a per-region QP; this module provides the QP value type and
//! the grid container the encoder consumes.

use aivc_scene::GridDims;
use serde::{Deserialize, Serialize};

/// Minimum legal H.265 QP.
pub const QP_MIN: u8 = 0;
/// Maximum legal H.265 QP.
pub const QP_MAX: u8 = 51;

/// A quantization parameter, guaranteed to lie in `[0, 51]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qp(u8);

impl Qp {
    /// Creates a QP, clamping into the legal range.
    pub fn new(value: i32) -> Self {
        Qp(value.clamp(QP_MIN as i32, QP_MAX as i32) as u8)
    }

    /// Creates a QP from a float, rounding then clamping.
    pub fn from_f64(value: f64) -> Self {
        Qp::new(value.round() as i32)
    }

    /// The numeric QP value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The QP as `f64` (convenient for R-D math).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns this QP offset by `delta`, clamped to the legal range.
    pub fn offset(self, delta: i32) -> Qp {
        Qp::new(self.0 as i32 + delta)
    }

    /// The default QP used by the simulator's "medium" preset when no rate control runs.
    pub fn default_medium() -> Qp {
        Qp(32)
    }
}

impl std::fmt::Display for Qp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QP{}", self.0)
    }
}

/// A per-CTU QP map over a frame's block grid (row-major).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpMap {
    dims: GridDims,
    values: Vec<Qp>,
}

impl QpMap {
    /// A uniform QP map (the context-agnostic baseline).
    pub fn uniform(dims: GridDims, qp: Qp) -> Self {
        Self {
            values: vec![qp; dims.len()],
            dims,
        }
    }

    /// Builds a map from per-cell values; the length must match the grid size.
    pub fn from_values(dims: GridDims, values: Vec<Qp>) -> Self {
        assert_eq!(values.len(), dims.len(), "QP map size mismatch");
        Self { dims, values }
    }

    /// An empty placeholder map — the natural initial state for reusable buffers that are
    /// later refilled in place via [`QpMap::begin_refill`] (e.g. the Eq. 2 allocator's
    /// `allocate_into` in `aivchat-core`).
    pub fn empty() -> Self {
        Self {
            dims: GridDims::for_frame(1, 1, 1),
            values: Vec::new(),
        }
    }

    /// Starts an in-place refill: sets the grid and clears the values, keeping the
    /// allocation. Callers push exactly `dims.len()` values with [`QpMap::push_value`] and
    /// then call [`QpMap::finish_refill`]. Once the buffer has grown to the largest grid it
    /// sees, further refills perform no heap allocation.
    pub fn begin_refill(&mut self, dims: GridDims) {
        self.dims = dims;
        self.values.clear();
        self.values.reserve(dims.len());
    }

    /// Appends one value during an in-place refill.
    pub fn push_value(&mut self, qp: Qp) {
        self.values.push(qp);
    }

    /// Finishes an in-place refill, enforcing the same invariant as [`QpMap::from_values`].
    pub fn finish_refill(&self) {
        assert_eq!(self.values.len(), self.dims.len(), "QP map size mismatch");
    }

    /// The grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The QP of the cell at `(row, col)`.
    pub fn get(&self, row: u32, col: u32) -> Qp {
        self.values[self.dims.index(row, col)]
    }

    /// The QP of the cell at a flat index.
    pub fn get_index(&self, index: usize) -> Qp {
        self.values[index]
    }

    /// Sets the QP of the cell at `(row, col)`.
    pub fn set(&mut self, row: u32, col: u32, qp: Qp) {
        let i = self.dims.index(row, col);
        self.values[i] = qp;
    }

    /// All QP values in row-major order.
    pub fn values(&self) -> &[Qp] {
        &self.values
    }

    /// Mean QP across the map.
    pub fn mean_qp(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|q| q.as_f64()).sum::<f64>() / self.values.len() as f64
    }

    /// Minimum QP in the map.
    pub fn min_qp(&self) -> Qp {
        self.values
            .iter()
            .copied()
            .min()
            .unwrap_or(Qp::new(QP_MAX as i32))
    }

    /// Maximum QP in the map.
    pub fn max_qp(&self) -> Qp {
        self.values
            .iter()
            .copied()
            .max()
            .unwrap_or(Qp::new(QP_MIN as i32))
    }

    /// Applies a uniform offset to every cell (clamped per cell).
    pub fn offset_all(&self, delta: i32) -> QpMap {
        QpMap {
            dims: self.dims,
            values: self.values.iter().map(|q| q.offset(delta)).collect(),
        }
    }

    /// [`QpMap::offset_all`] into a caller-owned map — the reuse form for per-frame rate
    /// control loops that probe many offsets (once `out` has grown to the grid size,
    /// refills perform no heap allocation). Output is identical to [`QpMap::offset_all`].
    pub fn offset_all_into(&self, delta: i32, out: &mut QpMap) {
        out.begin_refill(self.dims);
        for q in &self.values {
            out.push_value(q.offset(delta));
        }
        out.finish_refill();
    }

    /// Refills this map as a uniform map in place — the reuse form of [`QpMap::uniform`].
    pub fn fill_uniform(&mut self, dims: GridDims, qp: Qp) {
        self.begin_refill(dims);
        for _ in 0..dims.len() {
            self.push_value(qp);
        }
        self.finish_refill();
    }

    /// Renders the map as a compact ASCII grid (one row per line, values space-separated) —
    /// used by the Figure 10 harness to "visualize" the CLIP-informed QP map.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        for row in 0..self.dims.rows {
            for col in 0..self.dims.cols {
                if col > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{:2}", self.get(row, col).value()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> GridDims {
        GridDims::for_frame(256, 128, 64)
    }

    #[test]
    fn in_place_refill_forms_match_their_allocating_counterparts() {
        let mut base = QpMap::uniform(dims(), Qp::new(30));
        base.set(0, 1, Qp::new(5));
        base.set(1, 0, Qp::new(48));
        let mut out = QpMap::empty();
        for delta in [-51, -7, 0, 9, 51] {
            base.offset_all_into(delta, &mut out);
            assert_eq!(out, base.offset_all(delta), "delta {delta}");
        }
        let mut uniform = QpMap::empty();
        uniform.fill_uniform(dims(), Qp::new(23));
        assert_eq!(uniform, QpMap::uniform(dims(), Qp::new(23)));
        // Shrinking to a smaller grid reuses the buffer and stays consistent.
        let small = GridDims::for_frame(128, 64, 64);
        uniform.fill_uniform(small, Qp::new(11));
        assert_eq!(uniform, QpMap::uniform(small, Qp::new(11)));
    }

    #[test]
    fn qp_clamps_to_legal_range() {
        assert_eq!(Qp::new(-5).value(), 0);
        assert_eq!(Qp::new(200).value(), 51);
        assert_eq!(Qp::from_f64(31.6).value(), 32);
        assert_eq!(Qp::new(30).offset(100).value(), 51);
        assert_eq!(Qp::new(30).offset(-100).value(), 0);
    }

    #[test]
    fn uniform_map_statistics() {
        let m = QpMap::uniform(dims(), Qp::new(30));
        assert_eq!(m.mean_qp(), 30.0);
        assert_eq!(m.min_qp(), Qp::new(30));
        assert_eq!(m.max_qp(), Qp::new(30));
        assert_eq!(m.values().len(), dims().len());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = QpMap::uniform(dims(), Qp::new(40));
        m.set(1, 2, Qp::new(10));
        assert_eq!(m.get(1, 2), Qp::new(10));
        assert_eq!(m.get_index(dims().index(1, 2)), Qp::new(10));
        assert_eq!(m.min_qp(), Qp::new(10));
    }

    #[test]
    fn offset_all_clamps() {
        let m = QpMap::uniform(dims(), Qp::new(48)).offset_all(10);
        assert!(m.values().iter().all(|q| q.value() == 51));
    }

    #[test]
    fn ascii_rendering_has_one_line_per_row() {
        let m = QpMap::uniform(dims(), Qp::new(7));
        let ascii = m.to_ascii();
        assert_eq!(ascii.lines().count(), dims().rows as usize);
        assert!(ascii.contains(" 7"));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_values_checks_length() {
        let _ = QpMap::from_values(dims(), vec![Qp::new(1); 3]);
    }
}
