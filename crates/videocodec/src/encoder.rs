//! The encoder: scene frame + QP map → [`EncodedFrame`].
//!
//! Mirrors the knobs the paper actually turns on Kvazaar: CTU size, GOP structure, a preset
//! efficiency factor (medium vs slower), and — crucially — an externally supplied per-CTU QP
//! map (Kvazaar's `--roi` style control) which is how Context-Aware Video Streaming injects
//! its CLIP-informed allocation (§3.2).

use crate::frame::{EncodedBlock, EncodedFrame, FrameType};
use crate::gop::GopStructure;
use crate::qp::{Qp, QpMap};
use crate::rd::{RdModel, RATE_LANES};
use aivc_par::MiniPool;
use aivc_scene::grid_content::GridContent;
use aivc_scene::{Frame, GridDims};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Chunks handed to the pool per lane by [`Encoder::encode_into_par`] — a few per lane
/// smooth out CTU-row load imbalance (object-dense rows cost more) while keeping the
/// chunk→lane mapping deterministic, so each lane's coverage cache keeps seeing the same
/// block indices frame after frame.
const PAR_CHUNKS_PER_LANE: usize = 4;

/// Number of distinct QP values ([`Qp`] is clamped to `0..=51`), i.e. the size of the
/// per-encoder QP-factor lookup table.
const QP_TABLE: usize = 52;

/// Encoder speed preset. Slower presets squeeze more quality out of each bit, which the
/// paper's "Client-side computation" discussion proposes as a fairness ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    /// Fast preset: ~15 % worse compression than medium.
    Fast,
    /// The default used in the paper's experiments.
    Medium,
    /// Slower preset: ~12 % better compression than medium.
    Slower,
}

impl Preset {
    /// Multiplier applied to every block's bit cost.
    pub fn rate_factor(self) -> f64 {
        match self {
            Preset::Fast => 1.15,
            Preset::Medium => 1.0,
            Preset::Slower => 0.88,
        }
    }

    /// Encoding compute cost relative to medium (used by the latency budget accounting).
    pub fn compute_factor(self) -> f64 {
        match self {
            Preset::Fast => 0.55,
            Preset::Medium => 1.0,
            Preset::Slower => 2.6,
        }
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// CTU edge length in pixels (64 is HEVC's default).
    pub block_size: u32,
    /// GOP structure.
    pub gop: GopStructure,
    /// Speed preset.
    pub preset: Preset,
    /// Per-frame header overhead in bytes (SPS/PPS amortized + slice headers).
    pub header_bytes: u32,
    /// Per-frame encode latency on the reference device at medium preset, in microseconds
    /// (1080p hardware-assisted encode is a few milliseconds).
    pub base_encode_latency_us: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            block_size: 64,
            gop: GopStructure::default(),
            preset: Preset::Medium,
            header_bytes: 120,
            base_encode_latency_us: 4_000,
        }
    }
}

/// Reusable buffers for [`Encoder::encode_into`].
///
/// One scratch per encoding session removes every per-frame heap allocation from the
/// encode hot path: the whole-frame [`GridContent`] raster is refilled in place each
/// encode, and the per-block object-coverage `Arc`s are cached per block index — when a
/// block's coverage is unchanged from the previous frame (the common case under temporal
/// coherence, and always the case when re-encoding the same frame), the cached `Arc` is
/// refcount-bumped instead of reallocated.
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    /// Per-CTU content descriptors for the whole frame, rasterized placement-by-placement
    /// (identical values to a cell-by-cell [`Frame::region_content_into`] walk at a
    /// fraction of the cost).
    grid: GridContent,
    /// Last-seen coverage list per block index; hit ⇒ `Arc::clone`, miss ⇒ fresh `Arc`.
    coverage_cache: Vec<Arc<[(u32, f64)]>>,
    /// Memo of the last `(qp, detail)` → quality evaluation. `block_quality` is a pure
    /// function and most of a frame is background (`detail` exactly 0.0) at one or two
    /// distinct QPs, so this one-entry memo removes the bulk of the per-block `exp` calls
    /// while returning the identical f64 (same inputs ⇒ the memoized same output).
    quality_memo: QualityMemo,
    /// The most recently allocated coverage `Arc`: runs of adjacent blocks fully covered
    /// by the same objects produce identical lists, which share one allocation.
    last_coverage: Option<Arc<[(u32, f64)]>>,
}

/// See [`EncodeScratch::quality_memo`].
#[derive(Debug, Clone, Copy)]
struct QualityMemo {
    /// `u16::MAX` marks the empty memo (no valid QP is above 51).
    qp: u16,
    detail_bits: u64,
    quality: f64,
}

impl Default for QualityMemo {
    fn default() -> Self {
        Self {
            qp: u16::MAX,
            detail_bits: 0,
            quality: 0.0,
        }
    }
}

impl EncodeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable buffers for [`Encoder::encode_into_par`]: one [`EncodeScratch`] per pool lane,
/// created on first use and owned by that lane ever after. Because the chunk→lane mapping
/// is static, each lane's coverage cache keeps tracking the same block indices across
/// frames, preserving both the hit rate and the zero-allocation steady state of the
/// sequential scratch. Lane 0's scratch doubles as the sequential scratch when the pool
/// has a single lane.
#[derive(Debug, Clone, Default)]
pub struct EncodeParScratch {
    /// One private scratch per pool lane.
    lanes: Vec<EncodeScratch>,
    /// The whole-frame raster, filled once sequentially before the lanes dispatch (the
    /// fill is a small fraction of the encode; sharing it read-only keeps every lane's
    /// per-block inputs — and therefore the output — bit-identical to the sequential walk).
    grid: GridContent,
}

impl EncodeParScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
    rd: RdModel,
    /// `qp_factors[qp] == rd.qp_factor(qp)` for every representable QP — the rate law's
    /// only transcendental, hoisted out of the per-block loop into a 52-entry table.
    qp_factors: [f64; QP_TABLE],
    /// Shared empty coverage list: background-only blocks (the majority of a 1080p frame)
    /// take a refcount bump instead of allocating an `Arc` header each.
    empty_coverage: Arc<[(u32, f64)]>,
}

impl Encoder {
    /// Creates an encoder with the default R-D model.
    pub fn new(config: EncoderConfig) -> Self {
        Self::with_rd_model(config, RdModel::default())
    }

    /// Creates an encoder with an explicit R-D model (used by calibration tests).
    pub fn with_rd_model(config: EncoderConfig, rd: RdModel) -> Self {
        let mut qp_factors = [0.0; QP_TABLE];
        for (qp, factor) in qp_factors.iter_mut().enumerate() {
            *factor = rd.qp_factor(Qp::new(qp as i32));
        }
        Self {
            config,
            rd,
            qp_factors,
            empty_coverage: Arc::from(&[][..]),
        }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The R-D model in use.
    pub fn rd_model(&self) -> &RdModel {
        &self.rd
    }

    /// The hoisted 52-entry `qp_factors` table (`qp_factors[qp] == rd.qp_factor(qp)`),
    /// shared with the rate-plan probe loops so plan predictions read the same factors
    /// the encode kernels do.
    pub(crate) fn qp_factor_table(&self) -> &[f64; QP_TABLE] {
        &self.qp_factors
    }

    /// The CTU grid an encode of `frame` will use.
    pub fn grid_for(&self, frame: &Frame) -> GridDims {
        GridDims::for_frame(frame.width, frame.height, self.config.block_size)
    }

    /// Per-frame encode latency for this configuration, in microseconds.
    pub fn encode_latency_us(&self) -> u64 {
        (self.config.base_encode_latency_us as f64 * self.config.preset.compute_factor()).round() as u64
    }

    /// Encodes a frame with a per-CTU QP map. The map's grid must match [`Encoder::grid_for`].
    ///
    /// Allocates a fresh [`EncodedFrame`] per call; per-frame loops should hold an
    /// [`EncodeScratch`] and an output buffer and call [`Encoder::encode_into`] instead,
    /// which is allocation-free after warmup.
    pub fn encode_with_qp_map(&self, frame: &Frame, qp_map: &QpMap) -> EncodedFrame {
        let mut scratch = EncodeScratch::new();
        let mut out = EncodedFrame::placeholder();
        // A one-shot scratch can never hit its cache, so skip populating it (CACHE = false):
        // same output, none of the cache bookkeeping.
        self.encode_into_impl::<false>(frame, qp_map, &mut scratch, &mut out);
        out
    }

    /// [`Encoder::encode_with_qp_map`] into a caller-owned frame buffer.
    ///
    /// `out` is refilled in place (its block vector keeps its capacity) and per-block
    /// object-coverage lists are `Arc`-reused through the scratch's cache whenever a block's
    /// coverage is unchanged since the scratch last saw it. After warmup — one encode of
    /// each frame geometry — re-encoding a frame whose block coverage did not change
    /// performs zero heap allocations. Output is bit-identical to
    /// [`Encoder::encode_with_qp_map`] (see the equivalence tests).
    pub fn encode_into(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        scratch: &mut EncodeScratch,
        out: &mut EncodedFrame,
    ) {
        self.encode_into_impl::<true>(frame, qp_map, scratch, out);
    }

    /// [`Encoder::encode_into`] reusing the content raster a [`crate::RatePlan`] already
    /// holds for this frame, instead of re-filling the scratch's own grid. `grid.fill` is
    /// a pure function of `(frame, block_size)`, so reading the plan's raster — filled
    /// from the same frame by [`Encoder::prepare_rate_plan`] — produces bit-identical
    /// output (asserted by the equivalence tests); rate-control callers that just probed
    /// the frame save one full rasterization per encode.
    pub fn encode_into_planned(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        plan: &crate::RatePlan,
        scratch: &mut EncodeScratch,
        out: &mut EncodedFrame,
    ) {
        let dims = self.grid_for(frame);
        assert_eq!(plan.dims(), dims, "rate plan was prepared for a different frame grid");
        let EncodeScratch {
            coverage_cache,
            quality_memo,
            last_coverage,
            ..
        } = scratch;
        self.encode_walk::<true>(
            frame,
            qp_map,
            plan.grid(),
            coverage_cache,
            quality_memo,
            last_coverage,
            out,
        );
    }

    /// The CTU walk behind [`Encoder::encode_into`]. `CACHE` selects at compile time
    /// whether coverage-`Arc` cache misses populate the scratch (long-lived scratches) or
    /// bypass it (the one-shot [`Encoder::encode_with_qp_map`] wrapper, which can never
    /// hit and would only pay the bookkeeping).
    fn encode_into_impl<const CACHE: bool>(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        scratch: &mut EncodeScratch,
        out: &mut EncodedFrame,
    ) {
        let EncodeScratch {
            grid,
            coverage_cache,
            quality_memo,
            last_coverage,
        } = scratch;
        grid.fill(frame, self.config.block_size);
        self.encode_walk::<CACHE>(frame, qp_map, grid, coverage_cache, quality_memo, last_coverage, out);
    }

    /// The block walk shared by [`Encoder::encode_into_impl`] (own raster, freshly
    /// filled) and [`Encoder::encode_into_planned`] (a rate plan's raster for the same
    /// frame): identical walk, identical output.
    #[allow(clippy::too_many_arguments)]
    fn encode_walk<const CACHE: bool>(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        grid: &GridContent,
        coverage_cache: &mut Vec<Arc<[(u32, f64)]>>,
        quality_memo: &mut QualityMemo,
        last_coverage: &mut Option<Arc<[(u32, f64)]>>,
        out: &mut EncodedFrame,
    ) {
        let dims = self.grid_for(frame);
        assert_eq!(qp_map.dims(), dims, "QP map grid does not match frame grid");
        let frame_type = self.config.gop.frame_type(frame.index);
        let preset_factor = self.config.preset.rate_factor();

        out.blocks.clear();
        out.blocks.reserve(dims.len());
        let total = dims.len();
        let mut offset = self.config.header_bytes as u64;
        let mut bytes = [0u32; RATE_LANES];
        let mut idx = 0;
        while idx + RATE_LANES <= total {
            self.block_bytes_batch(grid, qp_map, idx, frame_type, preset_factor, &mut bytes);
            for (lane, &byte_len) in bytes.iter().enumerate() {
                let block_idx = idx + lane;
                let mut block = self.finish_block::<CACHE>(
                    grid,
                    coverage_cache,
                    quality_memo,
                    last_coverage,
                    block_idx,
                    qp_map.get_index(block_idx),
                    byte_len,
                );
                block.byte_offset = offset;
                offset += block.byte_len as u64;
                out.blocks.push(block);
            }
            idx += RATE_LANES;
        }
        while idx < total {
            let qp = qp_map.get_index(idx);
            let byte_len = self.block_bytes_one(grid, idx, qp, frame_type, preset_factor);
            let mut block = self.finish_block::<CACHE>(
                grid,
                coverage_cache,
                quality_memo,
                last_coverage,
                idx,
                qp,
                byte_len,
            );
            block.byte_offset = offset;
            offset += block.byte_len as u64;
            out.blocks.push(block);
            idx += 1;
        }
        self.fill_frame_header(out, frame, dims, frame_type);
    }

    /// Byte sizes of eight consecutive CTUs starting at `base`: gathers the per-block
    /// inputs out of the grid raster's structure-of-arrays columns, runs the eight rate-law
    /// evaluations in lockstep ([`RdModel::block_bits_batch`]), then applies the
    /// preset/ceil/floor epilogue element-wise. Each lane computes the exact scalar
    /// expression sequence of [`Encoder::block_bytes_one`] on the same inputs, so the
    /// results are bit-identical; the fixed-width loops are what LLVM turns into SIMD.
    fn block_bytes_batch(
        &self,
        grid: &GridContent,
        qp_map: &QpMap,
        base: usize,
        frame_type: FrameType,
        preset_factor: f64,
        out: &mut [u32; RATE_LANES],
    ) {
        let mut factors = [0.0f64; RATE_LANES];
        for (lane, factor) in factors.iter_mut().enumerate() {
            *factor = self.qp_factors[qp_map.get_index(base + lane).value() as usize];
        }
        let mut pixels = [0u64; RATE_LANES];
        pixels.copy_from_slice(&grid.area()[base..base + RATE_LANES]);
        let mut complexity = [0.0f64; RATE_LANES];
        complexity.copy_from_slice(&grid.complexity()[base..base + RATE_LANES]);
        let mut motion = [0.0f64; RATE_LANES];
        motion.copy_from_slice(&grid.motion()[base..base + RATE_LANES]);
        let mut bits = [0u64; RATE_LANES];
        self.rd
            .block_bits_batch(&factors, &pixels, &complexity, &motion, frame_type, &mut bits);
        for (byte_len, &b) in out.iter_mut().zip(&bits) {
            *byte_len = (((b as f64 * preset_factor) / 8.0).ceil() as u32).max(1);
        }
    }

    /// Byte size of the CTU at `idx` — the scalar form of [`Encoder::block_bytes_batch`],
    /// used for the sub-eight-block tail of the grid walk.
    fn block_bytes_one(
        &self,
        grid: &GridContent,
        idx: usize,
        qp: Qp,
        frame_type: FrameType,
        preset_factor: f64,
    ) -> u32 {
        let bits = self.rd.block_bits_with_factor(
            self.qp_factors[qp.value() as usize],
            grid.area()[idx],
            grid.complexity()[idx],
            grid.motion()[idx],
            frame_type,
        );
        (((bits as f64 * preset_factor) / 8.0).ceil() as u32).max(1)
    }

    /// Everything per-CTU that is not the vectorizable rate math: recognition quality
    /// (logistic, stays scalar), coverage-`Arc` reuse through the cache, and assembly of
    /// the block record. Shared by the sequential walk and the data-parallel path so both
    /// produce bit-identical blocks; `byte_offset` is left zero for the caller to assign
    /// (it is a prefix sum over preceding blocks).
    ///
    /// Cache policy: background blocks bypass the cache entirely (the shared empty Arc is
    /// already free), hits clone the cached Arc without touching the cache, and only misses
    /// write — so a warm re-encode mutates nothing. Stale entries under changed geometry
    /// are harmless: the content compare decides every reuse. Cold encodes (no warm cache)
    /// still coalesce runs of identical coverage through `last_coverage`.
    #[allow(clippy::too_many_arguments)]
    fn finish_block<const CACHE: bool>(
        &self,
        grid: &GridContent,
        coverage_cache: &mut Vec<Arc<[(u32, f64)]>>,
        quality_memo: &mut QualityMemo,
        last_coverage: &mut Option<Arc<[(u32, f64)]>>,
        idx: usize,
        qp: Qp,
        byte_len: u32,
    ) -> EncodedBlock {
        let detail = grid.detail()[idx];
        let quality = if quality_memo.qp == qp.value() as u16
            && quality_memo.detail_bits == detail.to_bits()
        {
            quality_memo.quality
        } else {
            let quality = self.rd.block_quality(qp, detail);
            *quality_memo = QualityMemo {
                qp: qp.value() as u16,
                detail_bits: detail.to_bits(),
                quality,
            };
            quality
        };
        let coverage = grid.coverage(idx);
        let object_coverage = if coverage.is_empty() {
            Arc::clone(&self.empty_coverage)
        } else if let Some(cached) = coverage_cache
            .get(idx)
            .filter(|cached| cached[..] == *coverage)
        {
            Arc::clone(cached)
        } else if let Some(last) = last_coverage
            .as_ref()
            .filter(|last| last[..] == *coverage)
        {
            let shared = Arc::clone(last);
            if CACHE {
                while coverage_cache.len() <= idx {
                    coverage_cache.push(Arc::clone(&self.empty_coverage));
                }
                coverage_cache[idx] = Arc::clone(&shared);
            }
            shared
        } else {
            let fresh: Arc<[(u32, f64)]> = Arc::from(coverage);
            if CACHE {
                while coverage_cache.len() <= idx {
                    coverage_cache.push(Arc::clone(&self.empty_coverage));
                }
                coverage_cache[idx] = Arc::clone(&fresh);
            }
            *last_coverage = Some(Arc::clone(&fresh));
            fresh
        };
        EncodedBlock {
            index: idx,
            byte_offset: 0,
            byte_len,
            qp,
            encoded_quality: quality,
            detail,
            complexity: grid.complexity()[idx],
            motion: grid.motion()[idx],
            object_coverage,
        }
    }

    /// Fills the frame-level fields of an encode output (shared by every encode path).
    fn fill_frame_header(
        &self,
        out: &mut EncodedFrame,
        frame: &Frame,
        dims: GridDims,
        frame_type: FrameType,
    ) {
        out.frame_index = frame.index;
        out.capture_ts_us = frame.capture_ts_us;
        out.frame_type = frame_type;
        out.width = frame.width;
        out.height = frame.height;
        out.block_size = self.config.block_size;
        out.grid_cols = dims.cols;
        out.grid_rows = dims.rows;
        out.header_bytes = self.config.header_bytes;
    }

    /// Data-parallel form of [`Encoder::encode_into`]: the CTU grid is split into
    /// contiguous raster-order chunks (≈ groups of CTU rows) encoded across the pool's
    /// lanes, each lane writing its disjoint slice of the block list through its own
    /// [`EncodeScratch`]; byte offsets (a prefix sum over preceding blocks) are then
    /// assigned in one cheap sequential pass.
    ///
    /// Output is **bit-identical** to [`Encoder::encode_into`] and
    /// [`Encoder::encode_with_qp_map`] for any pool size: per-block bits, quality and
    /// coverage never depend on other blocks, and the offset pass reproduces the
    /// sequential accumulation exactly (see the equivalence tests). With a one-lane pool
    /// this delegates to the sequential path. The static chunk→lane mapping means each
    /// lane's coverage cache sees the same block indices every frame, so cache hit rates —
    /// and the zero-allocation steady state — survive parallelization.
    pub fn encode_into_par(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        pool: &MiniPool,
        scratch: &mut EncodeParScratch,
        out: &mut EncodedFrame,
    ) {
        while scratch.lanes.len() < pool.lanes() {
            scratch.lanes.push(EncodeScratch::new());
        }
        if pool.lanes() == 1 {
            self.encode_into(frame, qp_map, &mut scratch.lanes[0], out);
            return;
        }
        let dims = self.grid_for(frame);
        assert_eq!(qp_map.dims(), dims, "QP map grid does not match frame grid");
        let frame_type = self.config.gop.frame_type(frame.index);
        let preset_factor = self.config.preset.rate_factor();
        let EncodeParScratch { lanes, grid } = scratch;
        grid.fill(frame, self.config.block_size);
        let grid = &*grid;
        // Every slot is overwritten below; the placeholder only sizes the buffer (its Arc
        // clone is a refcount bump, so a warm re-encode stays allocation-free).
        let placeholder = EncodedBlock {
            index: 0,
            byte_offset: 0,
            byte_len: 0,
            qp: Qp::new(0),
            encoded_quality: 0.0,
            detail: 0.0,
            complexity: 0.0,
            motion: 0.0,
            object_coverage: Arc::clone(&self.empty_coverage),
        };
        out.blocks.clear();
        out.blocks.resize(dims.len(), placeholder);
        let chunks = (pool.lanes() * PAR_CHUNKS_PER_LANE).min(dims.len());
        pool.for_each_chunk(&mut out.blocks, chunks, lanes, |ctx, blocks, lane| {
            // Same batched walk as the sequential path, restarted per chunk: the chunk
            // boundary only changes where the sub-eight tail falls, and the batch and
            // scalar kernels are bit-identical, so chunking cannot change the output.
            let EncodeScratch {
                coverage_cache,
                quality_memo,
                last_coverage,
                ..
            } = lane;
            let mut bytes = [0u32; RATE_LANES];
            let mut offset = 0;
            while offset + RATE_LANES <= blocks.len() {
                let base = ctx.start + offset;
                self.block_bytes_batch(grid, qp_map, base, frame_type, preset_factor, &mut bytes);
                for (lane_idx, &byte_len) in bytes.iter().enumerate() {
                    let idx = base + lane_idx;
                    blocks[offset + lane_idx] = self.finish_block::<true>(
                        grid,
                        coverage_cache,
                        quality_memo,
                        last_coverage,
                        idx,
                        qp_map.get_index(idx),
                        byte_len,
                    );
                }
                offset += RATE_LANES;
            }
            while offset < blocks.len() {
                let idx = ctx.start + offset;
                let qp = qp_map.get_index(idx);
                let byte_len = self.block_bytes_one(grid, idx, qp, frame_type, preset_factor);
                blocks[offset] = self.finish_block::<true>(
                    grid,
                    coverage_cache,
                    quality_memo,
                    last_coverage,
                    idx,
                    qp,
                    byte_len,
                );
                offset += 1;
            }
        });
        let mut offset = self.config.header_bytes as u64;
        for block in &mut out.blocks {
            block.byte_offset = offset;
            offset += block.byte_len as u64;
        }
        self.fill_frame_header(out, frame, dims, frame_type);
    }

    /// Encodes a frame at a single, uniform QP (the context-agnostic baseline).
    pub fn encode_uniform(&self, frame: &Frame, qp: Qp) -> EncodedFrame {
        let dims = self.grid_for(frame);
        self.encode_with_qp_map(frame, &QpMap::uniform(dims, qp))
    }

    /// Predicted size in bytes of encoding `frame` at uniform `qp` — identical math to
    /// [`Encoder::encode_uniform`] but without building the block list. Used by rate control.
    pub fn predict_uniform_size(&self, frame: &Frame, qp: Qp) -> u64 {
        let dims = self.grid_for(frame);
        self.predict_map_size(frame, &QpMap::uniform(dims, qp), &mut EncodeScratch::new())
    }

    /// Predicted total size in bytes of encoding `frame` with `qp_map` — the exact byte
    /// accounting of [`Encoder::encode_into`] (same grid raster, same batched rate kernel,
    /// same per-block ceil/floor) without building the block list. Rate-control searches
    /// probe candidate QP maps with this instead of running full encodes; equality with the
    /// actual encode is asserted by tests, so a probe's winner is exactly the encode's size.
    pub fn predict_map_size(&self, frame: &Frame, qp_map: &QpMap, scratch: &mut EncodeScratch) -> u64 {
        let dims = self.grid_for(frame);
        assert_eq!(qp_map.dims(), dims, "QP map grid does not match frame grid");
        let frame_type = self.config.gop.frame_type(frame.index);
        let preset_factor = self.config.preset.rate_factor();
        let grid = &mut scratch.grid;
        grid.fill(frame, self.config.block_size);
        let total_blocks = dims.len();
        let mut total = self.config.header_bytes as u64;
        let mut bytes = [0u32; RATE_LANES];
        let mut idx = 0;
        while idx + RATE_LANES <= total_blocks {
            self.block_bytes_batch(grid, qp_map, idx, frame_type, preset_factor, &mut bytes);
            for &byte_len in &bytes {
                total += byte_len as u64;
            }
            idx += RATE_LANES;
        }
        while idx < total_blocks {
            let qp = qp_map.get_index(idx);
            total += self.block_bytes_one(grid, idx, qp, frame_type, preset_factor) as u64;
            idx += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn test_frame() -> Frame {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        source.frame(0)
    }

    #[test]
    fn encode_produces_one_block_per_grid_cell() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let dims = enc.grid_for(&frame);
        let encoded = enc.encode_uniform(&frame, Qp::new(32));
        assert_eq!(encoded.blocks.len(), dims.len());
        assert_eq!(encoded.grid_cols, dims.cols);
        assert_eq!(encoded.grid_rows, dims.rows);
    }

    #[test]
    fn block_offsets_are_contiguous() {
        let enc = Encoder::new(EncoderConfig::default());
        let encoded = enc.encode_uniform(&test_frame(), Qp::new(32));
        let mut expected = encoded.header_bytes as u64;
        for b in &encoded.blocks {
            assert_eq!(b.byte_offset, expected);
            expected += b.byte_len as u64;
        }
        assert_eq!(encoded.total_bytes(), expected);
    }

    #[test]
    fn higher_qp_means_smaller_frame_and_lower_quality() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let q20 = enc.encode_uniform(&frame, Qp::new(20));
        let q40 = enc.encode_uniform(&frame, Qp::new(40));
        assert!(q20.total_bytes() > q40.total_bytes() * 3);
        assert!(q20.mean_encoded_quality() > q40.mean_encoded_quality());
    }

    #[test]
    fn intra_frame_is_larger_than_inter_frame() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let intra = enc.encode_uniform(&source.frame(0), Qp::new(32));
        let inter = enc.encode_uniform(&source.frame(1), Qp::new(32));
        assert_eq!(intra.frame_type, FrameType::Intra);
        assert_eq!(inter.frame_type, FrameType::Inter);
        assert!(intra.total_bytes() > inter.total_bytes() * 2);
    }

    #[test]
    fn roi_qp_map_shifts_bits_not_total() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let dims = enc.grid_for(&frame);
        // Build a map: left half QP 24 (good), right half QP 45 (poor).
        let mut map = QpMap::uniform(dims, Qp::new(45));
        for row in 0..dims.rows {
            for col in 0..dims.cols / 2 {
                map.set(row, col, Qp::new(24));
            }
        }
        let roi = enc.encode_with_qp_map(&frame, &map);
        let uniform = enc.encode_uniform(&frame, Qp::new(32));
        // Left-half blocks should hold far more bytes than right-half blocks.
        let left: u64 = roi
            .blocks
            .iter()
            .filter(|b| (b.index as u32 % dims.cols) < dims.cols / 2)
            .map(|b| b.byte_len as u64)
            .sum();
        let right: u64 = roi
            .blocks
            .iter()
            .filter(|b| (b.index as u32 % dims.cols) >= dims.cols / 2)
            .map(|b| b.byte_len as u64)
            .sum();
        assert!(left > right * 4, "left {left} right {right}");
        // And total size should land in the same order of magnitude as the uniform encode.
        let ratio = roi.total_bytes() as f64 / uniform.total_bytes() as f64;
        assert!(ratio > 0.4 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn predict_uniform_size_matches_actual_encode() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        for qp in [20, 32, 45] {
            let predicted = enc.predict_uniform_size(&frame, Qp::new(qp));
            let actual = enc.encode_uniform(&frame, Qp::new(qp)).total_bytes();
            assert_eq!(predicted, actual, "qp {qp}");
        }
    }

    #[test]
    fn slower_preset_is_smaller_and_costlier() {
        let medium = Encoder::new(EncoderConfig::default());
        let slower = Encoder::new(EncoderConfig {
            preset: Preset::Slower,
            ..EncoderConfig::default()
        });
        let frame = test_frame();
        assert!(
            slower.encode_uniform(&frame, Qp::new(32)).total_bytes()
                < medium.encode_uniform(&frame, Qp::new(32)).total_bytes()
        );
        assert!(slower.encode_latency_us() > medium.encode_latency_us());
    }

    #[test]
    fn capture_timestamp_is_propagated() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let frame = source.frame(17);
        let encoded = enc.encode_uniform(&frame, Qp::new(32));
        assert_eq!(encoded.capture_ts_us, frame.capture_ts_us);
        assert_eq!(encoded.frame_index, 17);
    }

    #[test]
    fn encode_into_is_identical_to_encode_with_qp_map() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let mut scratch = EncodeScratch::new();
        let mut out = EncodedFrame::placeholder();
        // Consecutive frames through the same scratch/buffer match the allocating path,
        // including the cached-coverage reuse on later frames.
        for i in [0u64, 1, 2, 30, 0] {
            let frame = source.frame(i);
            let dims = enc.grid_for(&frame);
            let map = QpMap::uniform(dims, Qp::new(31));
            enc.encode_into(&frame, &map, &mut scratch, &mut out);
            assert_eq!(out, enc.encode_with_qp_map(&frame, &map), "frame {i}");
        }
    }

    #[test]
    fn encode_into_survives_geometry_changes() {
        // The coverage cache is index-keyed; switching to a different frame size must still
        // produce correct output (cache misses, never stale hits).
        let enc = Encoder::new(EncoderConfig::default());
        let big = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0)).frame(0);
        let mut small_scene = aivc_scene::Scene::new("small", 256, 192).with_background(0.3, 0.1, vec![]);
        small_scene.add_object(
            aivc_scene::SceneObject::new(1, "thing", aivc_scene::Rect::new(10, 10, 100, 100))
                .with_concept("player", 1.0)
                .with_detail(0.5)
                .with_texture(0.5),
        );
        let small = Frame::sample(&small_scene, 0, 0, 0.0);
        let mut scratch = EncodeScratch::new();
        let mut out = EncodedFrame::placeholder();
        for frame in [&big, &small, &big] {
            let map = QpMap::uniform(enc.grid_for(frame), Qp::new(33));
            enc.encode_into(frame, &map, &mut scratch, &mut out);
            assert_eq!(out, enc.encode_with_qp_map(frame, &map));
        }
    }

    #[test]
    fn encode_into_par_is_bit_identical_for_every_pool_size() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        for lanes in [1usize, 2, 3, 8] {
            let pool = MiniPool::new(lanes);
            let mut scratch = EncodeParScratch::new();
            let mut out = EncodedFrame::placeholder();
            // Consecutive frames, a jump, a revisit, and a non-uniform ROI map — all must
            // match the allocating reference exactly, including offsets and coverage.
            for i in [0u64, 1, 2, 30, 0] {
                let frame = source.frame(i);
                let dims = enc.grid_for(&frame);
                let mut map = QpMap::uniform(dims, Qp::new(40));
                for row in 0..dims.rows {
                    for col in 0..dims.cols / 3 {
                        map.set(row, col, Qp::new(22));
                    }
                }
                enc.encode_into_par(&frame, &map, &pool, &mut scratch, &mut out);
                assert_eq!(
                    out,
                    enc.encode_with_qp_map(&frame, &map),
                    "lanes {lanes} frame {i}"
                );
            }
        }
    }

    #[test]
    fn encode_into_par_survives_geometry_changes() {
        let enc = Encoder::new(EncoderConfig::default());
        let big = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0)).frame(0);
        let mut small_scene = aivc_scene::Scene::new("small", 256, 192).with_background(0.3, 0.1, vec![]);
        small_scene.add_object(
            aivc_scene::SceneObject::new(1, "thing", aivc_scene::Rect::new(10, 10, 100, 100))
                .with_concept("player", 1.0)
                .with_detail(0.5)
                .with_texture(0.5),
        );
        let small = Frame::sample(&small_scene, 0, 0, 0.0);
        let pool = MiniPool::new(4);
        let mut scratch = EncodeParScratch::new();
        let mut out = EncodedFrame::placeholder();
        for frame in [&big, &small, &big] {
            let map = QpMap::uniform(enc.grid_for(frame), Qp::new(33));
            enc.encode_into_par(frame, &map, &pool, &mut scratch, &mut out);
            assert_eq!(out, enc.encode_with_qp_map(frame, &map));
        }
    }

    /// Recomputes every block of `encoded` the pre-vectorization way — a per-cell
    /// [`Frame::region_content_into`] walk feeding scalar R-D calls — and asserts exact
    /// equality of every field. This is the ground-truth check that the grid raster plus
    /// the batched rate kernel changed the encode's speed and nothing else.
    fn assert_blocks_match_scalar_walk(enc: &Encoder, frame: &Frame, map: &QpMap, encoded: &EncodedFrame) {
        let dims = enc.grid_for(frame);
        assert_eq!(encoded.blocks.len(), dims.len());
        let frame_type = enc.config().gop.frame_type(frame.index);
        let preset_factor = enc.config().preset.rate_factor();
        let mut content = aivc_scene::RegionContent::empty();
        let mut offset = enc.config().header_bytes as u64;
        for (idx, block) in encoded.blocks.iter().enumerate() {
            let (row, col) = dims.position(idx);
            let rect = dims.cell_rect(row, col, frame.width, frame.height);
            frame.region_content_into(&rect, &mut content);
            let qp = map.get_index(idx);
            let bits = enc.rd_model().block_bits(qp, rect.area(), content.complexity, content.motion, frame_type);
            let bytes = (((bits as f64 * preset_factor) / 8.0).ceil() as u32).max(1);
            assert_eq!(block.byte_len, bytes, "bytes {idx}");
            assert_eq!(block.byte_offset, offset, "offset {idx}");
            assert_eq!(block.qp, qp, "qp {idx}");
            assert_eq!(
                block.encoded_quality,
                enc.rd_model().block_quality(qp, content.detail),
                "quality {idx}"
            );
            assert_eq!(block.detail, content.detail, "detail {idx}");
            assert_eq!(block.complexity, content.complexity, "complexity {idx}");
            assert_eq!(block.motion, content.motion, "motion {idx}");
            assert_eq!(&block.object_coverage[..], &content.object_coverage[..], "coverage {idx}");
            offset += bytes as u64;
        }
    }

    #[test]
    fn batched_encode_matches_scalar_walk_for_every_tail_length() {
        // Frame sizes chosen so the CTU-grid length sweeps every batch-tail case: below one
        // batch (1, 4, 6 blocks), exactly one (8), multiples (16), and non-multiples with
        // every partial-edge-cell flavour (510 blocks at 1080p, 12, 35).
        let cases = [
            (64u32, 64u32),     // 1 block
            (256, 64),          // 4
            (130, 170),         // 3×2 = 6, partial edges both axes
            (512, 64),          // 8, exactly one batch
            (1024, 64),         // 16
            (256, 192),         // 4×3 = 12
            (448, 320),         // 7×5 = 35
            (1920, 1080),       // 30×17 = 510
        ];
        for (w, h) in cases {
            let mut scene = basketball_game(1);
            scene.width = w;
            scene.height = h;
            let source = VideoSource::new(scene, SourceConfig::fps30(2.0));
            let enc = Encoder::new(EncoderConfig::default());
            for i in [0u64, 1] {
                let frame = source.frame(i);
                let dims = enc.grid_for(&frame);
                let values: Vec<Qp> = (0..dims.len())
                    .map(|idx| Qp::new(20 + (idx as i32 * 7) % 28))
                    .collect();
                let map = QpMap::from_values(dims, values);
                let encoded = enc.encode_with_qp_map(&frame, &map);
                assert_blocks_match_scalar_walk(&enc, &frame, &map, &encoded);
            }
        }
    }

    #[test]
    fn predict_map_size_matches_actual_encode_for_roi_maps() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let mut scratch = EncodeScratch::new();
        for i in [0u64, 1, 7] {
            let frame = source.frame(i);
            let dims = enc.grid_for(&frame);
            let mut map = QpMap::uniform(dims, Qp::new(42));
            for row in 0..dims.rows {
                for col in 0..dims.cols / 2 {
                    map.set(row, col, Qp::new(23));
                }
            }
            let predicted = enc.predict_map_size(&frame, &map, &mut scratch);
            let actual = enc.encode_with_qp_map(&frame, &map).total_bytes();
            assert_eq!(predicted, actual, "frame {i}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_qp_map_rejected() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let wrong = QpMap::uniform(GridDims::for_frame(64, 64, 64), Qp::new(30));
        let _ = enc.encode_with_qp_map(&frame, &wrong);
    }
}
