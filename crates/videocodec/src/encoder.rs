//! The encoder: scene frame + QP map → [`EncodedFrame`].
//!
//! Mirrors the knobs the paper actually turns on Kvazaar: CTU size, GOP structure, a preset
//! efficiency factor (medium vs slower), and — crucially — an externally supplied per-CTU QP
//! map (Kvazaar's `--roi` style control) which is how Context-Aware Video Streaming injects
//! its CLIP-informed allocation (§3.2).

use crate::frame::{EncodedBlock, EncodedFrame, FrameType};
use crate::gop::GopStructure;
use crate::qp::{Qp, QpMap};
use crate::rd::RdModel;
use aivc_par::MiniPool;
use aivc_scene::{Frame, GridDims, RegionContent};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Chunks handed to the pool per lane by [`Encoder::encode_into_par`] — a few per lane
/// smooth out CTU-row load imbalance (object-dense rows cost more) while keeping the
/// chunk→lane mapping deterministic, so each lane's coverage cache keeps seeing the same
/// block indices frame after frame.
const PAR_CHUNKS_PER_LANE: usize = 4;

/// Encoder speed preset. Slower presets squeeze more quality out of each bit, which the
/// paper's "Client-side computation" discussion proposes as a fairness ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    /// Fast preset: ~15 % worse compression than medium.
    Fast,
    /// The default used in the paper's experiments.
    Medium,
    /// Slower preset: ~12 % better compression than medium.
    Slower,
}

impl Preset {
    /// Multiplier applied to every block's bit cost.
    pub fn rate_factor(self) -> f64 {
        match self {
            Preset::Fast => 1.15,
            Preset::Medium => 1.0,
            Preset::Slower => 0.88,
        }
    }

    /// Encoding compute cost relative to medium (used by the latency budget accounting).
    pub fn compute_factor(self) -> f64 {
        match self {
            Preset::Fast => 0.55,
            Preset::Medium => 1.0,
            Preset::Slower => 2.6,
        }
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// CTU edge length in pixels (64 is HEVC's default).
    pub block_size: u32,
    /// GOP structure.
    pub gop: GopStructure,
    /// Speed preset.
    pub preset: Preset,
    /// Per-frame header overhead in bytes (SPS/PPS amortized + slice headers).
    pub header_bytes: u32,
    /// Per-frame encode latency on the reference device at medium preset, in microseconds
    /// (1080p hardware-assisted encode is a few milliseconds).
    pub base_encode_latency_us: u64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            block_size: 64,
            gop: GopStructure::default(),
            preset: Preset::Medium,
            header_bytes: 120,
            base_encode_latency_us: 4_000,
        }
    }
}

/// Reusable buffers for [`Encoder::encode_into`].
///
/// One scratch per encoding session removes every per-frame heap allocation from the
/// encode hot path: the per-CTU region descriptor is reused across the CTU walk, and the
/// per-block object-coverage `Arc`s are cached per block index — when a block's coverage is
/// unchanged from the previous frame (the common case under temporal coherence, and always
/// the case when re-encoding the same frame), the cached `Arc` is refcount-bumped instead
/// of reallocated.
#[derive(Debug, Clone)]
pub struct EncodeScratch {
    /// Per-CTU region descriptor (filled by [`Frame::region_content_into`]).
    content: RegionContent,
    /// Last-seen coverage list per block index; hit ⇒ `Arc::clone`, miss ⇒ fresh `Arc`.
    coverage_cache: Vec<Arc<[(u32, f64)]>>,
}

impl Default for EncodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl EncodeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self {
            content: RegionContent::empty(),
            coverage_cache: Vec::new(),
        }
    }
}

/// Reusable buffers for [`Encoder::encode_into_par`]: one [`EncodeScratch`] per pool lane,
/// created on first use and owned by that lane ever after. Because the chunk→lane mapping
/// is static, each lane's coverage cache keeps tracking the same block indices across
/// frames, preserving both the hit rate and the zero-allocation steady state of the
/// sequential scratch. Lane 0's scratch doubles as the sequential scratch when the pool
/// has a single lane.
#[derive(Debug, Clone, Default)]
pub struct EncodeParScratch {
    /// One private scratch per pool lane.
    lanes: Vec<EncodeScratch>,
}

impl EncodeParScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
    rd: RdModel,
    /// Shared empty coverage list: background-only blocks (the majority of a 1080p frame)
    /// take a refcount bump instead of allocating an `Arc` header each.
    empty_coverage: Arc<[(u32, f64)]>,
}

impl Encoder {
    /// Creates an encoder with the default R-D model.
    pub fn new(config: EncoderConfig) -> Self {
        Self::with_rd_model(config, RdModel::default())
    }

    /// Creates an encoder with an explicit R-D model (used by calibration tests).
    pub fn with_rd_model(config: EncoderConfig, rd: RdModel) -> Self {
        Self {
            config,
            rd,
            empty_coverage: Arc::from(&[][..]),
        }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The R-D model in use.
    pub fn rd_model(&self) -> &RdModel {
        &self.rd
    }

    /// The CTU grid an encode of `frame` will use.
    pub fn grid_for(&self, frame: &Frame) -> GridDims {
        GridDims::for_frame(frame.width, frame.height, self.config.block_size)
    }

    /// Per-frame encode latency for this configuration, in microseconds.
    pub fn encode_latency_us(&self) -> u64 {
        (self.config.base_encode_latency_us as f64 * self.config.preset.compute_factor()).round() as u64
    }

    /// Encodes a frame with a per-CTU QP map. The map's grid must match [`Encoder::grid_for`].
    ///
    /// Allocates a fresh [`EncodedFrame`] per call; per-frame loops should hold an
    /// [`EncodeScratch`] and an output buffer and call [`Encoder::encode_into`] instead,
    /// which is allocation-free after warmup.
    pub fn encode_with_qp_map(&self, frame: &Frame, qp_map: &QpMap) -> EncodedFrame {
        let mut scratch = EncodeScratch::new();
        let mut out = EncodedFrame::placeholder();
        // A one-shot scratch can never hit its cache, so skip populating it (CACHE = false):
        // same output, none of the cache bookkeeping.
        self.encode_into_impl::<false>(frame, qp_map, &mut scratch, &mut out);
        out
    }

    /// [`Encoder::encode_with_qp_map`] into a caller-owned frame buffer.
    ///
    /// `out` is refilled in place (its block vector keeps its capacity) and per-block
    /// object-coverage lists are `Arc`-reused through the scratch's cache whenever a block's
    /// coverage is unchanged since the scratch last saw it. After warmup — one encode of
    /// each frame geometry — re-encoding a frame whose block coverage did not change
    /// performs zero heap allocations. Output is bit-identical to
    /// [`Encoder::encode_with_qp_map`] (see the equivalence tests).
    pub fn encode_into(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        scratch: &mut EncodeScratch,
        out: &mut EncodedFrame,
    ) {
        self.encode_into_impl::<true>(frame, qp_map, scratch, out);
    }

    /// The CTU walk behind [`Encoder::encode_into`]. `CACHE` selects at compile time
    /// whether coverage-`Arc` cache misses populate the scratch (long-lived scratches) or
    /// bypass it (the one-shot [`Encoder::encode_with_qp_map`] wrapper, which can never
    /// hit and would only pay the bookkeeping).
    fn encode_into_impl<const CACHE: bool>(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        scratch: &mut EncodeScratch,
        out: &mut EncodedFrame,
    ) {
        let dims = self.grid_for(frame);
        assert_eq!(qp_map.dims(), dims, "QP map grid does not match frame grid");
        let frame_type = self.config.gop.frame_type(frame.index);
        let preset_factor = self.config.preset.rate_factor();

        out.blocks.clear();
        out.blocks.reserve(dims.len());
        let mut offset = self.config.header_bytes as u64;
        for row in 0..dims.rows {
            for col in 0..dims.cols {
                let idx = dims.index(row, col);
                let mut block = self.encode_block::<CACHE>(
                    frame,
                    dims,
                    idx,
                    qp_map.get_index(idx),
                    frame_type,
                    preset_factor,
                    scratch,
                );
                block.byte_offset = offset;
                offset += block.byte_len as u64;
                out.blocks.push(block);
            }
        }
        self.fill_frame_header(out, frame, dims, frame_type);
    }

    /// One CTU of the encode: region descriptor → bits/quality through the R-D model →
    /// coverage-`Arc` reuse through the scratch's cache. Shared by the sequential walk and
    /// the data-parallel path so both produce bit-identical blocks; `byte_offset` is left
    /// zero for the caller to assign (it is a prefix sum over preceding blocks).
    ///
    /// Cache policy: background blocks bypass the cache entirely (the shared empty Arc is
    /// already free), hits clone the cached Arc without touching the cache, and only misses
    /// write — so a warm re-encode mutates nothing. Stale entries under changed geometry
    /// are harmless: the content compare decides every reuse.
    #[allow(clippy::too_many_arguments)]
    fn encode_block<const CACHE: bool>(
        &self,
        frame: &Frame,
        dims: GridDims,
        idx: usize,
        qp: Qp,
        frame_type: FrameType,
        preset_factor: f64,
        scratch: &mut EncodeScratch,
    ) -> EncodedBlock {
        let (row, col) = dims.position(idx);
        let rect = dims.cell_rect(row, col, frame.width, frame.height);
        let content = &mut scratch.content;
        frame.region_content_into(&rect, content);
        let bits = self
            .rd
            .block_bits(qp, rect.area(), content.complexity, content.motion, frame_type);
        let bytes = (((bits as f64 * preset_factor) / 8.0).ceil() as u32).max(1);
        let quality = self.rd.block_quality(qp, content.detail);
        let object_coverage = if content.object_coverage.is_empty() {
            Arc::clone(&self.empty_coverage)
        } else if let Some(cached) = scratch
            .coverage_cache
            .get(idx)
            .filter(|cached| cached[..] == content.object_coverage[..])
        {
            Arc::clone(cached)
        } else {
            let fresh: Arc<[(u32, f64)]> = Arc::from(content.object_coverage.as_slice());
            if CACHE {
                while scratch.coverage_cache.len() <= idx {
                    scratch.coverage_cache.push(Arc::clone(&self.empty_coverage));
                }
                scratch.coverage_cache[idx] = Arc::clone(&fresh);
            }
            fresh
        };
        EncodedBlock {
            index: idx,
            byte_offset: 0,
            byte_len: bytes,
            qp,
            encoded_quality: quality,
            detail: content.detail,
            complexity: content.complexity,
            motion: content.motion,
            object_coverage,
        }
    }

    /// Fills the frame-level fields of an encode output (shared by every encode path).
    fn fill_frame_header(
        &self,
        out: &mut EncodedFrame,
        frame: &Frame,
        dims: GridDims,
        frame_type: FrameType,
    ) {
        out.frame_index = frame.index;
        out.capture_ts_us = frame.capture_ts_us;
        out.frame_type = frame_type;
        out.width = frame.width;
        out.height = frame.height;
        out.block_size = self.config.block_size;
        out.grid_cols = dims.cols;
        out.grid_rows = dims.rows;
        out.header_bytes = self.config.header_bytes;
    }

    /// Data-parallel form of [`Encoder::encode_into`]: the CTU grid is split into
    /// contiguous raster-order chunks (≈ groups of CTU rows) encoded across the pool's
    /// lanes, each lane writing its disjoint slice of the block list through its own
    /// [`EncodeScratch`]; byte offsets (a prefix sum over preceding blocks) are then
    /// assigned in one cheap sequential pass.
    ///
    /// Output is **bit-identical** to [`Encoder::encode_into`] and
    /// [`Encoder::encode_with_qp_map`] for any pool size: per-block bits, quality and
    /// coverage never depend on other blocks, and the offset pass reproduces the
    /// sequential accumulation exactly (see the equivalence tests). With a one-lane pool
    /// this delegates to the sequential path. The static chunk→lane mapping means each
    /// lane's coverage cache sees the same block indices every frame, so cache hit rates —
    /// and the zero-allocation steady state — survive parallelization.
    pub fn encode_into_par(
        &self,
        frame: &Frame,
        qp_map: &QpMap,
        pool: &MiniPool,
        scratch: &mut EncodeParScratch,
        out: &mut EncodedFrame,
    ) {
        while scratch.lanes.len() < pool.lanes() {
            scratch.lanes.push(EncodeScratch::new());
        }
        if pool.lanes() == 1 {
            self.encode_into(frame, qp_map, &mut scratch.lanes[0], out);
            return;
        }
        let dims = self.grid_for(frame);
        assert_eq!(qp_map.dims(), dims, "QP map grid does not match frame grid");
        let frame_type = self.config.gop.frame_type(frame.index);
        let preset_factor = self.config.preset.rate_factor();
        // Every slot is overwritten below; the placeholder only sizes the buffer (its Arc
        // clone is a refcount bump, so a warm re-encode stays allocation-free).
        let placeholder = EncodedBlock {
            index: 0,
            byte_offset: 0,
            byte_len: 0,
            qp: Qp::new(0),
            encoded_quality: 0.0,
            detail: 0.0,
            complexity: 0.0,
            motion: 0.0,
            object_coverage: Arc::clone(&self.empty_coverage),
        };
        out.blocks.clear();
        out.blocks.resize(dims.len(), placeholder);
        let chunks = (pool.lanes() * PAR_CHUNKS_PER_LANE).min(dims.len());
        pool.for_each_chunk(
            &mut out.blocks,
            chunks,
            &mut scratch.lanes,
            |ctx, blocks, lane| {
                for (offset, slot) in blocks.iter_mut().enumerate() {
                    let idx = ctx.start + offset;
                    *slot = self.encode_block::<true>(
                        frame,
                        dims,
                        idx,
                        qp_map.get_index(idx),
                        frame_type,
                        preset_factor,
                        lane,
                    );
                }
            },
        );
        let mut offset = self.config.header_bytes as u64;
        for block in &mut out.blocks {
            block.byte_offset = offset;
            offset += block.byte_len as u64;
        }
        self.fill_frame_header(out, frame, dims, frame_type);
    }

    /// Encodes a frame at a single, uniform QP (the context-agnostic baseline).
    pub fn encode_uniform(&self, frame: &Frame, qp: Qp) -> EncodedFrame {
        let dims = self.grid_for(frame);
        self.encode_with_qp_map(frame, &QpMap::uniform(dims, qp))
    }

    /// Predicted size in bytes of encoding `frame` at uniform `qp` — identical math to
    /// [`Encoder::encode_uniform`] but without building the block list. Used by rate control.
    pub fn predict_uniform_size(&self, frame: &Frame, qp: Qp) -> u64 {
        let dims = self.grid_for(frame);
        let frame_type = self.config.gop.frame_type(frame.index);
        let preset_factor = self.config.preset.rate_factor();
        let mut total = self.config.header_bytes as u64;
        let mut content = RegionContent::empty();
        for row in 0..dims.rows {
            for col in 0..dims.cols {
                let rect = dims.cell_rect(row, col, frame.width, frame.height);
                frame.region_content_into(&rect, &mut content);
                let bits =
                    self.rd
                        .block_bits(qp, rect.area(), content.complexity, content.motion, frame_type);
                total += (((bits as f64 * preset_factor) / 8.0).ceil() as u64).max(1);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameType;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn test_frame() -> Frame {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        source.frame(0)
    }

    #[test]
    fn encode_produces_one_block_per_grid_cell() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let dims = enc.grid_for(&frame);
        let encoded = enc.encode_uniform(&frame, Qp::new(32));
        assert_eq!(encoded.blocks.len(), dims.len());
        assert_eq!(encoded.grid_cols, dims.cols);
        assert_eq!(encoded.grid_rows, dims.rows);
    }

    #[test]
    fn block_offsets_are_contiguous() {
        let enc = Encoder::new(EncoderConfig::default());
        let encoded = enc.encode_uniform(&test_frame(), Qp::new(32));
        let mut expected = encoded.header_bytes as u64;
        for b in &encoded.blocks {
            assert_eq!(b.byte_offset, expected);
            expected += b.byte_len as u64;
        }
        assert_eq!(encoded.total_bytes(), expected);
    }

    #[test]
    fn higher_qp_means_smaller_frame_and_lower_quality() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let q20 = enc.encode_uniform(&frame, Qp::new(20));
        let q40 = enc.encode_uniform(&frame, Qp::new(40));
        assert!(q20.total_bytes() > q40.total_bytes() * 3);
        assert!(q20.mean_encoded_quality() > q40.mean_encoded_quality());
    }

    #[test]
    fn intra_frame_is_larger_than_inter_frame() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let intra = enc.encode_uniform(&source.frame(0), Qp::new(32));
        let inter = enc.encode_uniform(&source.frame(1), Qp::new(32));
        assert_eq!(intra.frame_type, FrameType::Intra);
        assert_eq!(inter.frame_type, FrameType::Inter);
        assert!(intra.total_bytes() > inter.total_bytes() * 2);
    }

    #[test]
    fn roi_qp_map_shifts_bits_not_total() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let dims = enc.grid_for(&frame);
        // Build a map: left half QP 24 (good), right half QP 45 (poor).
        let mut map = QpMap::uniform(dims, Qp::new(45));
        for row in 0..dims.rows {
            for col in 0..dims.cols / 2 {
                map.set(row, col, Qp::new(24));
            }
        }
        let roi = enc.encode_with_qp_map(&frame, &map);
        let uniform = enc.encode_uniform(&frame, Qp::new(32));
        // Left-half blocks should hold far more bytes than right-half blocks.
        let left: u64 = roi
            .blocks
            .iter()
            .filter(|b| (b.index as u32 % dims.cols) < dims.cols / 2)
            .map(|b| b.byte_len as u64)
            .sum();
        let right: u64 = roi
            .blocks
            .iter()
            .filter(|b| (b.index as u32 % dims.cols) >= dims.cols / 2)
            .map(|b| b.byte_len as u64)
            .sum();
        assert!(left > right * 4, "left {left} right {right}");
        // And total size should land in the same order of magnitude as the uniform encode.
        let ratio = roi.total_bytes() as f64 / uniform.total_bytes() as f64;
        assert!(ratio > 0.4 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn predict_uniform_size_matches_actual_encode() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        for qp in [20, 32, 45] {
            let predicted = enc.predict_uniform_size(&frame, Qp::new(qp));
            let actual = enc.encode_uniform(&frame, Qp::new(qp)).total_bytes();
            assert_eq!(predicted, actual, "qp {qp}");
        }
    }

    #[test]
    fn slower_preset_is_smaller_and_costlier() {
        let medium = Encoder::new(EncoderConfig::default());
        let slower = Encoder::new(EncoderConfig {
            preset: Preset::Slower,
            ..EncoderConfig::default()
        });
        let frame = test_frame();
        assert!(
            slower.encode_uniform(&frame, Qp::new(32)).total_bytes()
                < medium.encode_uniform(&frame, Qp::new(32)).total_bytes()
        );
        assert!(slower.encode_latency_us() > medium.encode_latency_us());
    }

    #[test]
    fn capture_timestamp_is_propagated() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let frame = source.frame(17);
        let encoded = enc.encode_uniform(&frame, Qp::new(32));
        assert_eq!(encoded.capture_ts_us, frame.capture_ts_us);
        assert_eq!(encoded.frame_index, 17);
    }

    #[test]
    fn encode_into_is_identical_to_encode_with_qp_map() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let mut scratch = EncodeScratch::new();
        let mut out = EncodedFrame::placeholder();
        // Consecutive frames through the same scratch/buffer match the allocating path,
        // including the cached-coverage reuse on later frames.
        for i in [0u64, 1, 2, 30, 0] {
            let frame = source.frame(i);
            let dims = enc.grid_for(&frame);
            let map = QpMap::uniform(dims, Qp::new(31));
            enc.encode_into(&frame, &map, &mut scratch, &mut out);
            assert_eq!(out, enc.encode_with_qp_map(&frame, &map), "frame {i}");
        }
    }

    #[test]
    fn encode_into_survives_geometry_changes() {
        // The coverage cache is index-keyed; switching to a different frame size must still
        // produce correct output (cache misses, never stale hits).
        let enc = Encoder::new(EncoderConfig::default());
        let big = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0)).frame(0);
        let mut small_scene = aivc_scene::Scene::new("small", 256, 192).with_background(0.3, 0.1, vec![]);
        small_scene.add_object(
            aivc_scene::SceneObject::new(1, "thing", aivc_scene::Rect::new(10, 10, 100, 100))
                .with_concept("player", 1.0)
                .with_detail(0.5)
                .with_texture(0.5),
        );
        let small = Frame::sample(&small_scene, 0, 0, 0.0);
        let mut scratch = EncodeScratch::new();
        let mut out = EncodedFrame::placeholder();
        for frame in [&big, &small, &big] {
            let map = QpMap::uniform(enc.grid_for(frame), Qp::new(33));
            enc.encode_into(frame, &map, &mut scratch, &mut out);
            assert_eq!(out, enc.encode_with_qp_map(frame, &map));
        }
    }

    #[test]
    fn encode_into_par_is_bit_identical_for_every_pool_size() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        for lanes in [1usize, 2, 3, 8] {
            let pool = MiniPool::new(lanes);
            let mut scratch = EncodeParScratch::new();
            let mut out = EncodedFrame::placeholder();
            // Consecutive frames, a jump, a revisit, and a non-uniform ROI map — all must
            // match the allocating reference exactly, including offsets and coverage.
            for i in [0u64, 1, 2, 30, 0] {
                let frame = source.frame(i);
                let dims = enc.grid_for(&frame);
                let mut map = QpMap::uniform(dims, Qp::new(40));
                for row in 0..dims.rows {
                    for col in 0..dims.cols / 3 {
                        map.set(row, col, Qp::new(22));
                    }
                }
                enc.encode_into_par(&frame, &map, &pool, &mut scratch, &mut out);
                assert_eq!(
                    out,
                    enc.encode_with_qp_map(&frame, &map),
                    "lanes {lanes} frame {i}"
                );
            }
        }
    }

    #[test]
    fn encode_into_par_survives_geometry_changes() {
        let enc = Encoder::new(EncoderConfig::default());
        let big = VideoSource::new(basketball_game(1), SourceConfig::fps30(5.0)).frame(0);
        let mut small_scene = aivc_scene::Scene::new("small", 256, 192).with_background(0.3, 0.1, vec![]);
        small_scene.add_object(
            aivc_scene::SceneObject::new(1, "thing", aivc_scene::Rect::new(10, 10, 100, 100))
                .with_concept("player", 1.0)
                .with_detail(0.5)
                .with_texture(0.5),
        );
        let small = Frame::sample(&small_scene, 0, 0, 0.0);
        let pool = MiniPool::new(4);
        let mut scratch = EncodeParScratch::new();
        let mut out = EncodedFrame::placeholder();
        for frame in [&big, &small, &big] {
            let map = QpMap::uniform(enc.grid_for(frame), Qp::new(33));
            enc.encode_into_par(frame, &map, &pool, &mut scratch, &mut out);
            assert_eq!(out, enc.encode_with_qp_map(frame, &map));
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_qp_map_rejected() {
        let enc = Encoder::new(EncoderConfig::default());
        let frame = test_frame();
        let wrong = QpMap::uniform(GridDims::for_frame(64, 64, 64), Qp::new(30));
        let _ = enc.encode_with_qp_map(&frame, &wrong);
    }
}
