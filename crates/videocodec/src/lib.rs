//! # aivc-videocodec — a block-based video codec simulator with region-wise QP control
//!
//! The paper encodes with Kvazaar (H.265) and controls the Quantization Parameter (QP) of
//! individual regions to implement Context-Aware Video Streaming (§3.2, Eq. 2). Running a
//! real HEVC encoder is outside this environment's scope, so this crate provides a codec
//! **simulator** that preserves the properties the paper's argument actually relies on:
//!
//! * bits per block are a *monotone decreasing, roughly exponential* function of QP
//!   (halving every ~6 QP steps, the standard HEVC rule of thumb);
//! * bits grow with spatial complexity and motion; intra frames cost several times more
//!   than inter frames;
//! * decoded quality is a *monotone decreasing* function of QP, and detail-rich content
//!   loses "recognizability" at lower QP than flat content;
//! * per-region (CTU) QP maps shift bits between regions at ~constant total bitrate;
//! * rate control hits a target bitrate only approximately, so the paper's trial-and-error
//!   bitrate matching is reproduced explicitly ([`ratecontrol::match_bitrate_qp`]).
//!
//! The encoder consumes [`aivc_scene::Frame`] content descriptors and produces
//! [`EncodedFrame`]s whose blocks carry everything downstream consumers need (bytes, QP,
//! decoded quality, object coverage), so the decoder and the MLLM simulator never have to
//! reach back into the scene.

pub mod decoder;
pub mod encoder;
pub mod frame;
pub mod gop;
pub mod qp;
pub mod quality;
pub mod rate_plan;
pub mod ratecontrol;
pub mod rd;
pub mod transcode;

pub use decoder::{DecodeScratch, DecodedBlock, DecodedFrame, Decoder};
pub use encoder::{EncodeParScratch, EncodeScratch, Encoder, EncoderConfig};
pub use frame::{EncodedBlock, EncodedFrame, FrameType};
pub use gop::GopStructure;
pub use qp::{Qp, QpMap};
pub use quality::{frame_quality, region_quality};
pub use rate_plan::RatePlan;
pub use ratecontrol::{match_bitrate_qp, RateController, RateControllerConfig};
pub use rd::RdModel;
pub use transcode::{transcode_clip, TranscodeSummary};
