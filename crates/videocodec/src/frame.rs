//! Encoded-frame representation.
//!
//! An [`EncodedFrame`] is the unit handed to the RTC packetizer: a byte length, a frame
//! type and a list of [`EncodedBlock`]s laid out contiguously in raster order. Blocks carry
//! everything downstream stages need (QP, encoded quality, detail, object coverage), which
//! keeps the decoder and the MLLM simulator independent of the original scene.

use crate::qp::Qp;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Whether a frame was coded without reference (intra/IDR) or predicted (inter/P).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded (keyframe).
    Intra,
    /// Inter-coded (predicted from previous frames).
    Inter,
}

/// One coded CTU/block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedBlock {
    /// Flat raster index into the frame's block grid.
    pub index: usize,
    /// Byte offset of this block's payload within the frame's bitstream.
    pub byte_offset: u64,
    /// Payload size of this block in bytes (≥ 1: every CTU costs at least a header).
    pub byte_len: u32,
    /// QP the block was coded with.
    pub qp: Qp,
    /// Recognition quality of the block *as encoded* (before any transport loss).
    pub encoded_quality: f64,
    /// Detail requirement of the content in the block (copied from the scene descriptor).
    pub detail: f64,
    /// Spatial complexity of the content (copied from the scene descriptor).
    pub complexity: f64,
    /// Motion of the content (copied from the scene descriptor).
    pub motion: f64,
    /// Coverage of the block by scene objects: `(object_id, fraction of block area)`.
    ///
    /// Shared (`Arc`) rather than owned: the decoder and downstream stages keep a reference
    /// to the same coverage list instead of cloning a `Vec` per block per stage.
    pub object_coverage: Arc<[(u32, f64)]>,
}

/// A complete encoded frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// Source frame index.
    pub frame_index: u64,
    /// Capture timestamp in microseconds (propagated end-to-end; the MLLM's positional
    /// encoding uses this, §2.1).
    pub capture_ts_us: u64,
    /// Frame type.
    pub frame_type: FrameType,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// CTU edge length in pixels.
    pub block_size: u32,
    /// Number of block columns.
    pub grid_cols: u32,
    /// Number of block rows.
    pub grid_rows: u32,
    /// Coded blocks in raster order. Offsets are contiguous and start at `header_bytes`.
    pub blocks: Vec<EncodedBlock>,
    /// Frame-level header/parameter-set overhead in bytes.
    pub header_bytes: u32,
}

impl EncodedFrame {
    /// An empty placeholder frame — the natural initial state for reusable output buffers
    /// passed to `Encoder::encode_into`.
    pub fn placeholder() -> Self {
        Self {
            frame_index: 0,
            capture_ts_us: 0,
            frame_type: FrameType::Intra,
            width: 0,
            height: 0,
            block_size: 1,
            grid_cols: 0,
            grid_rows: 0,
            blocks: Vec::new(),
            header_bytes: 0,
        }
    }

    /// Total coded size of the frame in bytes (header + all block payloads).
    pub fn total_bytes(&self) -> u64 {
        self.header_bytes as u64 + self.blocks.iter().map(|b| b.byte_len as u64).sum::<u64>()
    }

    /// Total coded size in bits.
    pub fn total_bits(&self) -> u64 {
        self.total_bytes() * 8
    }

    /// Mean encoded quality over blocks, weighted by block pixel share (uniform blocks, so a
    /// plain mean).
    pub fn mean_encoded_quality(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.encoded_quality).sum::<f64>() / self.blocks.len() as f64
    }

    /// Mean QP over blocks.
    pub fn mean_qp(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.qp.as_f64()).sum::<f64>() / self.blocks.len() as f64
    }

    /// The byte range `[offset, offset + len)` occupied by each block, in raster order.
    pub fn block_byte_ranges(&self) -> Vec<(u64, u64)> {
        self.blocks
            .iter()
            .map(|b| (b.byte_offset, b.byte_offset + b.byte_len as u64))
            .collect()
    }

    /// The blocks whose byte ranges are fully contained in the received byte set.
    ///
    /// `received` is a sorted, non-overlapping list of `[start, end)` ranges produced by the
    /// RTC depacketizer. Blocks not fully covered are considered lost (HEVC cannot decode a
    /// truncated CTU) and will be concealed by the decoder.
    pub fn blocks_covered_by(&self, received: &[(u64, u64)]) -> Vec<bool> {
        let mut out = Vec::new();
        self.blocks_covered_into(received, &mut out);
        out
    }

    /// [`EncodedFrame::blocks_covered_by`] into a caller-owned buffer (cleared first), so
    /// per-frame decode loops stay allocation-free after warmup.
    pub fn blocks_covered_into(&self, received: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(self.blocks.len());
        out.extend(self.blocks.iter().map(|b| {
            let start = b.byte_offset;
            let end = b.byte_offset + b.byte_len as u64;
            range_covered(start, end, received)
        }));
    }

    /// Bits allocated to blocks whose object coverage includes `object_id` (≥ `min_cover`).
    pub fn bits_on_object(&self, object_id: u32, min_cover: f64) -> u64 {
        self.blocks
            .iter()
            .filter(|b| {
                b.object_coverage
                    .iter()
                    .any(|(id, f)| *id == object_id && *f >= min_cover)
            })
            .map(|b| b.byte_len as u64 * 8)
            .sum()
    }
}

/// True when `[start, end)` is fully covered by the union of the sorted ranges in `received`.
fn range_covered(start: u64, end: u64, received: &[(u64, u64)]) -> bool {
    let mut cursor = start;
    for &(s, e) in received {
        if e <= cursor {
            continue;
        }
        if s > cursor {
            return false;
        }
        cursor = cursor.max(s).max(cursor);
        cursor = e.max(cursor);
        if cursor >= end {
            return true;
        }
    }
    cursor >= end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_blocks(lens: &[u32]) -> EncodedFrame {
        let mut offset = 100u64; // header
        let blocks = lens
            .iter()
            .enumerate()
            .map(|(i, len)| {
                let b = EncodedBlock {
                    index: i,
                    byte_offset: offset,
                    byte_len: *len,
                    qp: Qp::new(30),
                    encoded_quality: 0.8,
                    detail: 0.5,
                    complexity: 0.5,
                    motion: 0.2,
                    object_coverage: if i == 0 {
                        vec![(7, 1.0)].into()
                    } else {
                        Vec::new().into()
                    },
                };
                offset += *len as u64;
                b
            })
            .collect();
        EncodedFrame {
            frame_index: 0,
            capture_ts_us: 0,
            frame_type: FrameType::Intra,
            width: 256,
            height: 64,
            block_size: 64,
            grid_cols: lens.len() as u32,
            grid_rows: 1,
            blocks,
            header_bytes: 100,
        }
    }

    #[test]
    fn total_bytes_includes_header() {
        let f = frame_with_blocks(&[200, 300, 150]);
        assert_eq!(f.total_bytes(), 100 + 650);
        assert_eq!(f.total_bits(), (100 + 650) * 8);
    }

    #[test]
    fn block_ranges_are_contiguous() {
        let f = frame_with_blocks(&[200, 300, 150]);
        let ranges = f.block_byte_ranges();
        assert_eq!(ranges[0], (100, 300));
        assert_eq!(ranges[1], (300, 600));
        assert_eq!(ranges[2], (600, 750));
    }

    #[test]
    fn full_coverage_marks_all_blocks_received() {
        let f = frame_with_blocks(&[200, 300, 150]);
        let covered = f.blocks_covered_by(&[(0, f.total_bytes())]);
        assert!(covered.iter().all(|c| *c));
    }

    #[test]
    fn missing_middle_range_loses_only_middle_block() {
        let f = frame_with_blocks(&[200, 300, 150]);
        // Received: [0, 300) and [600, 750) — the middle block [300, 600) is missing.
        let covered = f.blocks_covered_by(&[(0, 300), (600, 750)]);
        assert_eq!(covered, vec![true, false, true]);
    }

    #[test]
    fn partial_block_coverage_counts_as_lost() {
        let f = frame_with_blocks(&[200, 300, 150]);
        let covered = f.blocks_covered_by(&[(0, 500)]); // second block only half received
        assert_eq!(covered, vec![true, false, false]);
    }

    #[test]
    fn adjacent_ranges_union_correctly() {
        let f = frame_with_blocks(&[200, 300, 150]);
        let covered = f.blocks_covered_by(&[(0, 250), (250, 400), (400, 750)]);
        assert!(covered.iter().all(|c| *c));
    }

    #[test]
    fn bits_on_object_filters_by_coverage() {
        let f = frame_with_blocks(&[200, 300, 150]);
        assert_eq!(f.bits_on_object(7, 0.5), 200 * 8);
        assert_eq!(f.bits_on_object(8, 0.5), 0);
    }

    #[test]
    fn mean_quality_and_qp() {
        let f = frame_with_blocks(&[200, 300]);
        assert!((f.mean_encoded_quality() - 0.8).abs() < 1e-12);
        assert!((f.mean_qp() - 30.0).abs() < 1e-12);
    }
}
