//! Per-frame rate plan: the QP-independent half of the rate law, hoisted out of the
//! rate-control probe loop.
//!
//! [`Encoder::predict_map_size`] re-rasterizes the frame's [`GridContent`] and re-derives
//! each block's content factors on **every** call — fine for a single prediction, ruinous
//! for a binary search that probes the same frame seven times per capture (the warm
//! conversational turn spent ~90 % of its time here; see DESIGN.md §"Where the warm
//! turn's microsecond goes"). A [`RatePlan`] folds everything that does not depend on QP
//! into per-block coefficients once per frame:
//!
//! * `lead[b]  = intra_bpp_at_ref * content_factor(b)` — the rate law's first product,
//! * `tail[b]  = type_factor(b)` (exactly `1.0` on intra frames),
//! * `pixels[b]` as `f64`, and the frame's base QP per block when probing offsets.
//!
//! A probe then evaluates, per block, the *identical* IEEE-754 expression sequence the
//! encoder's rate kernel performs — `((lead · qp_factor) · tail).max(min_bpp)`, the same
//! `ceil`s, the same `max(1)` floor — so every predicted size is bit-for-bit equal to
//! [`Encoder::predict_map_size`] (and therefore to a real encode), which the equivalence
//! tests below pin for every probe level. Multiplying by a `tail` of exactly `1.0` is an
//! IEEE identity, so collapsing the intra/inter split into one expression is lossless.

use crate::frame::FrameType;
use crate::qp::{Qp, QpMap};
use aivc_scene::grid_content::GridContent;
use aivc_scene::{Frame, GridDims};

/// Reusable per-frame probe state for rate-control searches. Buffers retain capacity
/// across frames, so a warm conversation prepares plans without touching the allocator.
#[derive(Debug, Clone)]
pub struct RatePlan {
    dims: GridDims,
    /// `intra_bpp_at_ref * content_factor` per block (the rate law's first product).
    lead: Vec<f64>,
    /// `type_factor` per block — exactly `1.0` on intra frames.
    tail: Vec<f64>,
    /// Block pixel counts, pre-converted to `f64`.
    pixels: Vec<f64>,
    /// The base QP map snapshot offset probes apply their level to (empty when the plan
    /// was prepared without a base map, i.e. for uniform probes only).
    base_qp: Vec<u8>,
    /// Private raster scratch (capacity reused across frames).
    grid: GridContent,
}

impl Default for RatePlan {
    fn default() -> Self {
        Self::new()
    }
}

impl RatePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self {
            dims: GridDims {
                cols: 0,
                rows: 0,
                cell: 1,
            },
            lead: Vec::new(),
            tail: Vec::new(),
            pixels: Vec::new(),
            base_qp: Vec::new(),
            grid: GridContent::default(),
        }
    }

    /// Grid geometry of the prepared frame.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    pub(crate) fn grid_mut(&mut self) -> &mut GridContent {
        &mut self.grid
    }

    pub(crate) fn grid(&self) -> &GridContent {
        &self.grid
    }

    pub(crate) fn parts(&self) -> (&[f64], &[f64], &[f64], &[u8]) {
        (&self.lead, &self.tail, &self.pixels, &self.base_qp)
    }

    pub(crate) fn set_geometry(&mut self, dims: GridDims) {
        self.dims = dims;
        self.lead.clear();
        self.tail.clear();
        self.pixels.clear();
        self.base_qp.clear();
    }

    pub(crate) fn push_block(&mut self, lead: f64, tail: f64, pixels: f64) {
        self.lead.push(lead);
        self.tail.push(tail);
        self.pixels.push(pixels);
    }

    pub(crate) fn snapshot_base(&mut self, base: &QpMap) {
        assert_eq!(base.dims(), self.dims, "base QP map grid does not match plan grid");
        self.base_qp.extend(base.values().iter().map(|q| q.value()));
    }
}

use crate::encoder::Encoder;

impl Encoder {
    /// Prepares `plan` for rate-control probes over `frame`: rasterizes the content grid
    /// once and folds every QP-independent term of the rate law into per-block
    /// coefficients. With `base` supplied, the plan also snapshots the per-block base QP
    /// so [`Encoder::predict_plan_offset_size`] can probe uniform offsets on top of it
    /// (the context-aware search); without it only
    /// [`Encoder::predict_plan_uniform_size`] is valid (the baseline search).
    pub fn prepare_rate_plan(&self, frame: &Frame, base: Option<&QpMap>, plan: &mut RatePlan) {
        let dims = self.grid_for(frame);
        let frame_type = self.config().gop.frame_type(frame.index);
        plan.set_geometry(dims);
        plan.grid_mut().fill(frame, self.config().block_size);
        let rd = self.rd_model();
        let (intra_bpp, inter_base, inter_motion) =
            (rd.intra_bpp_at_ref, rd.inter_base_fraction, rd.inter_motion_fraction);
        for idx in 0..dims.len() {
            let grid = plan.grid();
            // The identical clamp + content/type factor expressions of the encoder's rate
            // kernel (`block_bytes_one` / `block_bytes_batch`), evaluated once per frame.
            let content_factor = 0.08 + 0.92 * grid.complexity()[idx].clamp(0.0, 1.0);
            let tail = match frame_type {
                FrameType::Intra => 1.0,
                FrameType::Inter => inter_base + inter_motion * grid.motion()[idx].clamp(0.0, 1.0),
            };
            let pixels = grid.area()[idx] as f64;
            plan.push_block(intra_bpp * content_factor, tail, pixels);
        }
        if let Some(base) = base {
            plan.snapshot_base(base);
        }
    }

    /// Predicted total size in bytes of encoding the planned frame with its base QP map
    /// offset uniformly by `level` — bit-identical to building the offset map with
    /// [`QpMap::offset_all_into`] and calling [`Encoder::predict_map_size`] on it.
    pub fn predict_plan_offset_size(&self, plan: &RatePlan, level: i32) -> u64 {
        let (lead, tail, pixels, base_qp) = plan.parts();
        assert_eq!(
            base_qp.len(),
            lead.len(),
            "offset probes need a plan prepared with a base QP map"
        );
        let factors = self.qp_factor_table();
        let preset_factor = self.config().preset.rate_factor();
        let min_bpp = self.rd_model().min_bpp;
        let mut total = self.config().header_bytes as u64;
        for b in 0..lead.len() {
            let qp = (base_qp[b] as i32 + level).clamp(0, 51) as usize;
            total += plan_block_bytes(lead[b], factors[qp], tail[b], min_bpp, pixels[b], preset_factor);
        }
        total
    }

    /// Predicted total size in bytes of encoding the planned frame at a single uniform
    /// `qp` — bit-identical to [`Encoder::predict_uniform_size`].
    pub fn predict_plan_uniform_size(&self, plan: &RatePlan, qp: Qp) -> u64 {
        let (lead, tail, pixels, _) = plan.parts();
        let factor = self.qp_factor_table()[qp.value() as usize];
        let preset_factor = self.config().preset.rate_factor();
        let min_bpp = self.rd_model().min_bpp;
        let mut total = self.config().header_bytes as u64;
        for b in 0..lead.len() {
            total += plan_block_bytes(lead[b], factor, tail[b], min_bpp, pixels[b], preset_factor);
        }
        total
    }
}

/// One block's coded byte count from plan coefficients — the exact expression sequence of
/// the encoder's rate kernel: `bpp = ((lead·qp_factor)·tail).max(min_bpp)` (left-assoc,
/// matching `intra_bpp·content·qp_factor·type`), `bits = ceil(bpp·pixels)`, then the
/// preset/`ceil`/`max(1)` byte epilogue.
#[inline]
fn plan_block_bytes(lead: f64, qp_factor: f64, tail: f64, min_bpp: f64, pixels: f64, preset_factor: f64) -> u64 {
    let bpp = ((lead * qp_factor) * tail).max(min_bpp);
    let bits = (bpp * pixels).ceil() as u64;
    (((bits as f64 * preset_factor) / 8.0).ceil() as u32).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncodeScratch, EncoderConfig, Preset};
    use aivc_scene::templates::{basketball_game, lecture_slides};
    use aivc_scene::{SourceConfig, VideoSource};

    fn check_frame_all_levels(enc: &Encoder, frame: &Frame, base: &QpMap) {
        let mut plan = RatePlan::new();
        enc.prepare_rate_plan(frame, Some(base), &mut plan);
        let mut scratch = EncodeScratch::new();
        let mut probe = QpMap::empty();
        for level in -51..=51 {
            base.offset_all_into(level, &mut probe);
            let reference = enc.predict_map_size(frame, &probe, &mut scratch);
            assert_eq!(
                enc.predict_plan_offset_size(&plan, level),
                reference,
                "offset level {level} diverges for frame {}",
                frame.index
            );
        }
        for qp in 0..=51 {
            let reference = enc.predict_uniform_size(frame, Qp::new(qp));
            assert_eq!(
                enc.predict_plan_uniform_size(&plan, Qp::new(qp)),
                reference,
                "uniform qp {qp} diverges for frame {}",
                frame.index
            );
        }
    }

    #[test]
    fn plan_probes_match_predict_map_size_for_every_level() {
        for (template, preset) in [
            (basketball_game(1), Preset::Medium),
            (lecture_slides(3), Preset::Slower),
        ] {
            let enc = Encoder::new(EncoderConfig {
                preset,
                ..EncoderConfig::default()
            });
            let source = VideoSource::new(template, SourceConfig::fps30(5.0));
            // Frame 0 is intra, the others exercise the inter/motion path.
            for index in [0u64, 7, 31] {
                let frame = source.frame(index);
                let dims = enc.grid_for(&frame);
                // A non-trivial base map: QP varies across the grid.
                let values: Vec<Qp> = (0..dims.len()).map(|i| Qp::new((i % 52) as i32)).collect();
                let base = QpMap::from_values(dims, values);
                check_frame_all_levels(&enc, &frame, &base);
            }
        }
    }

    #[test]
    fn encode_into_planned_matches_encode_into() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(4), SourceConfig::fps30(5.0));
        let mut plan = RatePlan::new();
        let mut planned_scratch = EncodeScratch::new();
        let mut plain_scratch = EncodeScratch::new();
        let mut planned = crate::frame::EncodedFrame::placeholder();
        let mut plain = crate::frame::EncodedFrame::placeholder();
        for index in [0u64, 5, 17] {
            let frame = source.frame(index);
            let dims = enc.grid_for(&frame);
            let base = QpMap::uniform(dims, Qp::new(28));
            enc.prepare_rate_plan(&frame, Some(&base), &mut plan);
            let mut map = QpMap::empty();
            base.offset_all_into(-6, &mut map);
            enc.encode_into_planned(&frame, &map, &plan, &mut planned_scratch, &mut planned);
            enc.encode_into(&frame, &map, &mut plain_scratch, &mut plain);
            assert_eq!(planned, plain, "planned encode diverges on frame {index}");
        }
    }

    #[test]
    fn plan_reuse_across_frames_is_exact() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(2), SourceConfig::fps30(5.0));
        let mut plan = RatePlan::new();
        for index in [3u64, 12, 40] {
            let frame = source.frame(index);
            let dims = enc.grid_for(&frame);
            let base = QpMap::uniform(dims, Qp::new(30));
            enc.prepare_rate_plan(&frame, Some(&base), &mut plan);
            let mut scratch = EncodeScratch::new();
            let mut probe = QpMap::empty();
            for level in [-51, -13, 0, 9, 51] {
                base.offset_all_into(level, &mut probe);
                assert_eq!(
                    enc.predict_plan_offset_size(&plan, level),
                    enc.predict_map_size(&frame, &probe, &mut scratch),
                    "level {level} diverges after plan reuse on frame {index}"
                );
            }
        }
    }
}
