//! Rate control: choosing QPs so a stream hits a target bitrate.
//!
//! Two mechanisms, matching how the paper's pipeline actually worked:
//!
//! * [`RateController`] — an online CBR-style controller (Kvazaar's `--bitrate` mode): it
//!   tracks a virtual buffer of produced-vs-budgeted bits and nudges the base QP frame by
//!   frame. Like the real thing, it only *approximately* hits the target.
//! * [`match_bitrate_qp`] — the offline "trial-and-error" search the authors describe in
//!   §3.2's footnote: given a set of frames and a byte budget, binary-search the uniform QP
//!   (or a QP offset on top of an arbitrary base map) whose actual encoded size best matches
//!   the budget. This is what makes the Figure 9 comparison fair (ours vs baseline at
//!   matched actual bitrates).

use crate::encoder::Encoder;
use crate::frame::EncodedFrame;
use crate::qp::{Qp, QpMap, QP_MAX, QP_MIN};
use aivc_scene::Frame;
use serde::{Deserialize, Serialize};

/// Configuration of the online rate controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateControllerConfig {
    /// Target bitrate in bits per second.
    pub target_bitrate_bps: f64,
    /// Frame rate in frames per second.
    pub fps: f64,
    /// Initial base QP.
    pub initial_qp: Qp,
    /// Proportional gain: QP steps applied per 100 % of per-frame budget error.
    pub gain: f64,
    /// Maximum QP change between consecutive frames (temporal stability guard; the paper
    /// notes AI receivers do not need this guard, so ablations set it high).
    pub max_qp_step: i32,
}

impl RateControllerConfig {
    /// A reasonable default controller for the given bitrate/frame rate.
    pub fn new(target_bitrate_bps: f64, fps: f64) -> Self {
        Self {
            target_bitrate_bps,
            fps,
            initial_qp: Qp::new(34),
            gain: 6.0,
            max_qp_step: 4,
        }
    }
}

/// Online rate controller state.
#[derive(Debug, Clone)]
pub struct RateController {
    config: RateControllerConfig,
    current_qp: Qp,
    /// Virtual buffer: positive when we have produced more bits than budgeted.
    buffer_bits: f64,
}

impl RateController {
    /// Creates a controller.
    pub fn new(config: RateControllerConfig) -> Self {
        Self {
            config,
            current_qp: config.initial_qp,
            buffer_bits: 0.0,
        }
    }

    /// Bits budgeted per frame.
    pub fn per_frame_budget_bits(&self) -> f64 {
        self.config.target_bitrate_bps / self.config.fps
    }

    /// The QP to use for the next frame.
    pub fn next_qp(&self) -> Qp {
        self.current_qp
    }

    /// Reports the actual size of the frame just encoded and updates the controller.
    pub fn on_frame_encoded(&mut self, encoded_bits: u64) {
        let budget = self.per_frame_budget_bits();
        self.buffer_bits += encoded_bits as f64 - budget;
        // Leak the buffer slowly so a single oversized intra frame does not dominate forever.
        self.buffer_bits *= 0.92;
        let error_fraction = self.buffer_bits / budget.max(1.0);
        let delta = (error_fraction * self.config.gain)
            .clamp(-(self.config.max_qp_step as f64), self.config.max_qp_step as f64);
        self.current_qp = self.current_qp.offset(delta.round() as i32);
    }

    /// Current virtual-buffer occupancy in bits (positive = over budget).
    pub fn buffer_bits(&self) -> f64 {
        self.buffer_bits
    }
}

/// Result of the offline trial-and-error bitrate matching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitrateMatch {
    /// The uniform QP (or QP offset) selected.
    pub qp_or_offset: i32,
    /// Actual mean bitrate achieved over the probe frames, in bits per second.
    pub achieved_bitrate_bps: f64,
    /// Number of encode trials performed (the paper notes this is what made their
    /// experiments slow).
    pub trials: u32,
}

/// Finds the uniform QP whose encoded size best matches `target_bitrate_bps` over `frames`,
/// by binary search (bits are monotone in QP). Returns the chosen QP and the achieved rate.
pub fn match_bitrate_qp(
    encoder: &Encoder,
    frames: &[Frame],
    fps: f64,
    target_bitrate_bps: f64,
) -> BitrateMatch {
    assert!(!frames.is_empty(), "need at least one probe frame");
    let measure = |qp: Qp| -> f64 {
        let total_bits: u64 = frames
            .iter()
            .map(|f| encoder.predict_uniform_size(f, qp) * 8)
            .sum();
        total_bits as f64 / frames.len() as f64 * fps
    };
    let mut lo = QP_MIN as i32;
    let mut hi = QP_MAX as i32;
    let mut trials = 0;
    // Bits decrease with QP: if even QP_MIN is below target, or QP_MAX above, clamp.
    let mut best = (QP_MAX as i32, measure(Qp::new(QP_MAX as i32)));
    trials += 1;
    if best.1 > target_bitrate_bps {
        return BitrateMatch {
            qp_or_offset: best.0,
            achieved_bitrate_bps: best.1,
            trials,
        };
    }
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let rate = measure(Qp::new(mid));
        trials += 1;
        if (rate - target_bitrate_bps).abs() < (best.1 - target_bitrate_bps).abs() {
            best = (mid, rate);
        }
        if rate > target_bitrate_bps {
            lo = mid + 1; // too many bits -> raise QP
        } else {
            hi = mid - 1;
        }
    }
    BitrateMatch {
        qp_or_offset: best.0,
        achieved_bitrate_bps: best.1,
        trials,
    }
}

/// Finds a uniform QP *offset* applied on top of `base_map` so the resulting encode of
/// `frames` best matches `target_bitrate_bps`. This is how the context-aware stream is
/// brought to the same actual bitrate as the baseline (Figure 9's matched pairs).
pub fn match_bitrate_offset(
    encoder: &Encoder,
    frames: &[(Frame, QpMap)],
    fps: f64,
    target_bitrate_bps: f64,
) -> BitrateMatch {
    assert!(!frames.is_empty(), "need at least one probe frame");
    let measure = |offset: i32| -> f64 {
        let total_bits: u64 = frames
            .iter()
            .map(|(f, map)| {
                encoder
                    .encode_with_qp_map(f, &map.offset_all(offset))
                    .total_bits()
            })
            .sum();
        total_bits as f64 / frames.len() as f64 * fps
    };
    let mut lo = -(QP_MAX as i32);
    let mut hi = QP_MAX as i32;
    let mut trials = 0;
    let mut best = (0, measure(0));
    trials += 1;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let rate = measure(mid);
        trials += 1;
        if (rate - target_bitrate_bps).abs() < (best.1 - target_bitrate_bps).abs() {
            best = (mid, rate);
        }
        if rate > target_bitrate_bps {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    BitrateMatch {
        qp_or_offset: best.0,
        achieved_bitrate_bps: best.1,
        trials,
    }
}

/// Convenience: mean bitrate in bits per second of a sequence of encoded frames at `fps`.
pub fn mean_bitrate_bps(frames: &[EncodedFrame], fps: f64) -> f64 {
    if frames.is_empty() {
        return 0.0;
    }
    let total_bits: u64 = frames.iter().map(|f| f.total_bits()).sum();
    total_bits as f64 / frames.len() as f64 * fps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use aivc_scene::templates::{basketball_game, lecture_slides};
    use aivc_scene::{SourceConfig, VideoSource};

    fn frames(n: u64) -> Vec<Frame> {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        (0..n).map(|i| source.frame(i)).collect()
    }

    #[test]
    fn controller_converges_to_target_bitrate() {
        let enc = Encoder::new(EncoderConfig::default());
        let target = 1_500_000.0; // 1.5 Mbps
        let mut rc = RateController::new(RateControllerConfig::new(target, 30.0));
        let source = VideoSource::new(basketball_game(2), SourceConfig::fps30(20.0));
        let mut encoded = Vec::new();
        for i in 0..300 {
            let f = source.frame(i);
            let e = enc.encode_uniform(&f, rc.next_qp());
            rc.on_frame_encoded(e.total_bits());
            encoded.push(e);
        }
        // Ignore the first 60 frames (convergence), then check the achieved rate.
        let steady = &encoded[60..];
        let rate = mean_bitrate_bps(steady, 30.0);
        assert!(
            (rate - target).abs() / target < 0.35,
            "achieved {rate} vs target {target}"
        );
    }

    #[test]
    fn controller_tracks_lower_targets_with_higher_qp() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(basketball_game(3), SourceConfig::fps30(20.0));
        let final_qp_for = |target: f64| {
            let mut rc = RateController::new(RateControllerConfig::new(target, 30.0));
            for i in 0..150 {
                let e = enc.encode_uniform(&source.frame(i), rc.next_qp());
                rc.on_frame_encoded(e.total_bits());
            }
            rc.next_qp().value()
        };
        assert!(final_qp_for(400_000.0) > final_qp_for(4_000_000.0));
    }

    #[test]
    fn match_bitrate_qp_hits_target_within_one_step() {
        let enc = Encoder::new(EncoderConfig::default());
        let probe = frames(30);
        for target in [400_000.0, 850_000.0, 2_000_000.0, 6_000_000.0] {
            let m = match_bitrate_qp(&enc, &probe, 30.0, target);
            // A single QP step changes rate by ~12 %, so accept 20 % error.
            let err = (m.achieved_bitrate_bps - target).abs() / target;
            assert!(
                err < 0.2,
                "target {target}: achieved {} (err {err})",
                m.achieved_bitrate_bps
            );
            assert!(m.trials <= 10);
        }
    }

    #[test]
    fn match_bitrate_qp_is_monotone_in_target() {
        let enc = Encoder::new(EncoderConfig::default());
        let probe = frames(10);
        let low = match_bitrate_qp(&enc, &probe, 30.0, 300_000.0);
        let high = match_bitrate_qp(&enc, &probe, 30.0, 5_000_000.0);
        assert!(low.qp_or_offset > high.qp_or_offset);
    }

    #[test]
    fn match_bitrate_offset_brings_roi_map_to_target() {
        let enc = Encoder::new(EncoderConfig::default());
        let source = VideoSource::new(lecture_slides(4), SourceConfig::fps30(10.0));
        let dims = enc.grid_for(&source.frame(0));
        // A deliberately low-QP (expensive) base map.
        let base = QpMap::uniform(dims, Qp::new(22));
        let probe: Vec<(Frame, QpMap)> = (0..10).map(|i| (source.frame(i), base.clone())).collect();
        let target = 900_000.0;
        let m = match_bitrate_offset(&enc, &probe, 30.0, target);
        assert!(
            m.qp_or_offset > 0,
            "expected a positive offset to shrink the stream"
        );
        let err = (m.achieved_bitrate_bps - target).abs() / target;
        assert!(err < 0.25, "achieved {} (err {err})", m.achieved_bitrate_bps);
    }

    #[test]
    fn unreachable_target_clamps_to_max_qp() {
        let enc = Encoder::new(EncoderConfig::default());
        let probe = frames(5);
        let m = match_bitrate_qp(&enc, &probe, 30.0, 1_000.0); // 1 kbps is impossible
        assert_eq!(m.qp_or_offset, QP_MAX as i32);
    }
}
