//! Offline transcoding: re-encode a clip at a target bitrate.
//!
//! DeViBench's preprocessing step transcodes every source video to a 200 Kbps version
//! (§3.1, "Video Preprocessing") and later steps compare MLLM answers on the original vs
//! the degraded version. This module reproduces that step on synthetic clips: it picks the
//! uniform QP matching the target via trial-and-error and produces the decoded frames the
//! MLLM simulator will look at.

use crate::decoder::{DecodedFrame, Decoder};
use crate::encoder::Encoder;
use crate::qp::Qp;
use crate::ratecontrol::match_bitrate_qp;
use aivc_scene::VideoSource;
use serde::{Deserialize, Serialize};

/// Summary of a transcode run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranscodeSummary {
    /// Target bitrate requested, bits per second.
    pub target_bitrate_bps: f64,
    /// Actual mean bitrate achieved, bits per second.
    pub achieved_bitrate_bps: f64,
    /// Uniform QP selected by the trial-and-error search.
    pub qp: Qp,
    /// Number of frames transcoded.
    pub frames: usize,
    /// Mean decoded quality across the transcoded frames.
    pub mean_quality: f64,
}

/// Transcodes a clip to the target bitrate, sampling at most `max_frames` frames uniformly
/// across the clip (the MLLM only consumes ~2 FPS anyway, §2.1). Returns the decoded frames
/// and the transcode summary.
pub fn transcode_clip(
    encoder: &Encoder,
    source: &VideoSource,
    target_bitrate_bps: f64,
    max_frames: usize,
) -> (Vec<DecodedFrame>, TranscodeSummary) {
    assert!(max_frames > 0, "must transcode at least one frame");
    let total = source.frame_count().max(1);

    // Rate matching uses a contiguous window of one GOP (or the whole clip if shorter) so the
    // intra/inter frame mix — and therefore the measured bitrate — matches what encoding the
    // full clip would produce.
    let gop_len = encoder.config().gop.length as u64;
    let rate_window = gop_len.clamp(1, total.min(120));
    let rate_probe: Vec<_> = (0..rate_window).map(|idx| source.frame(idx)).collect();
    let matched = match_bitrate_qp(encoder, &rate_probe, source.config().fps, target_bitrate_bps);
    let qp = Qp::new(matched.qp_or_offset);
    let achieved = matched.achieved_bitrate_bps;

    // The MLLM-facing decoded frames are sampled uniformly across the clip (it only looks at
    // ~2 FPS anyway, §2.1).
    let step = (total as f64 / max_frames as f64).max(1.0);
    let mut indices = Vec::new();
    let mut i = 0.0;
    while (i as u64) < total && indices.len() < max_frames {
        indices.push(i as u64);
        i += step;
    }
    let decoder = Decoder::new();
    let mut decoded = Vec::with_capacity(indices.len());
    for &idx in &indices {
        let e = encoder.encode_uniform(&source.frame(idx), qp);
        decoded.push(decoder.decode_complete(&e, None));
    }
    let mean_quality = decoded.iter().map(|d| d.mean_quality()).sum::<f64>() / decoded.len().max(1) as f64;
    let summary = TranscodeSummary {
        target_bitrate_bps,
        achieved_bitrate_bps: achieved,
        qp,
        frames: decoded.len(),
        mean_quality,
    };
    (decoded, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use aivc_scene::templates::lecture_slides;
    use aivc_scene::SourceConfig;

    fn source() -> VideoSource {
        VideoSource::new(lecture_slides(1), SourceConfig::fps30(20.0))
    }

    #[test]
    fn transcode_hits_target_roughly() {
        let enc = Encoder::new(EncoderConfig::default());
        let (frames, summary) = transcode_clip(&enc, &source(), 200_000.0, 20);
        assert_eq!(frames.len(), 20);
        let err = (summary.achieved_bitrate_bps - 200_000.0).abs() / 200_000.0;
        assert!(err < 0.5, "achieved {}", summary.achieved_bitrate_bps);
        assert!(summary.qp.value() > 35, "200 kbps should need a high QP");
    }

    #[test]
    fn lower_bitrate_means_lower_quality() {
        let enc = Encoder::new(EncoderConfig::default());
        let (_, low) = transcode_clip(&enc, &source(), 200_000.0, 10);
        let (_, high) = transcode_clip(&enc, &source(), 4_000_000.0, 10);
        assert!(high.mean_quality > low.mean_quality + 0.15);
        assert!(high.qp.value() < low.qp.value());
    }

    #[test]
    fn frame_sampling_caps_count() {
        let enc = Encoder::new(EncoderConfig::default());
        let (frames, _) = transcode_clip(&enc, &source(), 1_000_000.0, 5);
        assert_eq!(frames.len(), 5);
    }
}
