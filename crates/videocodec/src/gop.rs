//! Group-of-pictures structure: which frames are intra-coded.
//!
//! Real-time encoders use periodic IDR frames (or intra refresh) so a receiver can join or
//! recover; the GOP length trades bitrate (intra frames are several times larger) against
//! recovery latency. The RTC experiments use a 2-second GOP by default, Kvazaar's low-delay
//! default ballpark.

use crate::frame::FrameType;
use serde::{Deserialize, Serialize};

/// Periodic GOP: frame 0 is intra, then every `length`-th frame after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GopStructure {
    /// Distance between intra frames, in frames. `1` means all-intra.
    pub length: u32,
}

impl GopStructure {
    /// Creates a GOP of the given length (≥ 1).
    pub fn new(length: u32) -> Self {
        assert!(length >= 1, "GOP length must be at least 1");
        Self { length }
    }

    /// All-intra coding (every frame is a keyframe).
    pub fn all_intra() -> Self {
        Self { length: 1 }
    }

    /// A GOP spanning `seconds` at `fps` (rounded, at least 1).
    pub fn from_seconds(seconds: f64, fps: f64) -> Self {
        Self::new(((seconds * fps).round() as u32).max(1))
    }

    /// The frame type of frame `index`.
    pub fn frame_type(&self, index: u64) -> FrameType {
        if index.is_multiple_of(self.length as u64) {
            FrameType::Intra
        } else {
            FrameType::Inter
        }
    }

    /// Fraction of frames that are intra-coded.
    pub fn intra_fraction(&self) -> f64 {
        1.0 / self.length as f64
    }
}

impl Default for GopStructure {
    /// 60-frame GOP (2 s at 30 FPS / 1 s at 60 FPS).
    fn default() -> Self {
        Self { length: 60 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_zero_is_always_intra() {
        for len in [1, 2, 30, 60, 300] {
            assert_eq!(GopStructure::new(len).frame_type(0), FrameType::Intra);
        }
    }

    #[test]
    fn periodicity() {
        let gop = GopStructure::new(30);
        assert_eq!(gop.frame_type(30), FrameType::Intra);
        assert_eq!(gop.frame_type(29), FrameType::Inter);
        assert_eq!(gop.frame_type(31), FrameType::Inter);
        assert_eq!(gop.frame_type(90), FrameType::Intra);
    }

    #[test]
    fn all_intra() {
        let gop = GopStructure::all_intra();
        assert!((0..100).all(|i| gop.frame_type(i) == FrameType::Intra));
        assert_eq!(gop.intra_fraction(), 1.0);
    }

    #[test]
    fn from_seconds() {
        assert_eq!(GopStructure::from_seconds(2.0, 30.0).length, 60);
        assert_eq!(GopStructure::from_seconds(0.0, 30.0).length, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_length_rejected() {
        let _ = GopStructure::new(0);
    }
}
