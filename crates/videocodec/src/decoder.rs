//! The decoder: encoded frame + received byte ranges → per-block decoded quality.
//!
//! The decoder's job in this simulator is bookkeeping rather than pixel reconstruction: a
//! block that arrived intact keeps its encoded recognition quality, a block that did not is
//! concealed at a much lower quality. The result, a [`DecodedFrame`], is what the MLLM
//! simulator "sees".

use crate::frame::{EncodedFrame, FrameType};
use crate::qp::Qp;
use crate::rd::RdModel;
use aivc_scene::{GridDims, Rect};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One decoded block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedBlock {
    /// Flat raster index.
    pub index: usize,
    /// Whether the block's bytes all arrived.
    pub received: bool,
    /// The QP the block was encoded with (meaningful even when the block was lost).
    pub qp: Qp,
    /// Recognition quality after decode (encoded quality if received, concealment quality
    /// otherwise).
    pub quality: f64,
    /// Detail requirement of the block's content.
    pub detail: f64,
    /// Object coverage, shared with the encoded block (an `Arc` bump, not a copy).
    pub object_coverage: Arc<[(u32, f64)]>,
}

/// A decoded frame, the MLLM-facing representation of what survived encoding + transport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedFrame {
    /// Source frame index.
    pub frame_index: u64,
    /// Capture timestamp in microseconds (drives MLLM positional encoding).
    pub capture_ts_us: u64,
    /// Time the frame became fully available at the receiver, in microseconds of simulated
    /// time (`None` when decoded offline, e.g. in benchmark preprocessing).
    pub received_at_us: Option<u64>,
    /// Frame type.
    pub frame_type: FrameType,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Block grid edge length.
    pub block_size: u32,
    /// Decoded blocks in raster order.
    pub blocks: Vec<DecodedBlock>,
}

impl DecodedFrame {
    /// An empty placeholder frame — the natural initial state for reusable output buffers
    /// passed to [`Decoder::decode_into`].
    pub fn placeholder() -> Self {
        Self {
            frame_index: 0,
            capture_ts_us: 0,
            received_at_us: None,
            frame_type: FrameType::Intra,
            width: 0,
            height: 0,
            block_size: 1,
            blocks: Vec::new(),
        }
    }

    /// The block grid of this frame.
    pub fn grid(&self) -> GridDims {
        GridDims::for_frame(self.width, self.height, self.block_size)
    }

    /// Mean decoded quality over all blocks.
    pub fn mean_quality(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.quality).sum::<f64>() / self.blocks.len() as f64
    }

    /// Fraction of blocks that arrived intact.
    pub fn received_fraction(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().filter(|b| b.received).count() as f64 / self.blocks.len() as f64
    }

    /// Area-weighted mean decoded quality of the blocks overlapping `region`.
    pub fn region_quality(&self, region: &Rect) -> f64 {
        let grid = self.grid();
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for row in 0..grid.rows {
            for col in 0..grid.cols {
                let cell = grid.cell_rect(row, col, self.width, self.height);
                let overlap = cell.intersect(region).area() as f64;
                if overlap > 0.0 {
                    let idx = grid.index(row, col);
                    weighted += overlap * self.blocks[idx].quality;
                    weight += overlap;
                }
            }
        }
        if weight == 0.0 {
            0.0
        } else {
            weighted / weight
        }
    }

    /// Question-conditioned decoded quality of the blocks covering an object.
    ///
    /// Unlike [`DecodedFrame::object_quality`] (which scores the block against its *content's*
    /// detail level), this asks: "how well would content requiring `detail` of fine detail be
    /// perceived from these blocks?" — the quantity the MLLM accuracy model needs, because a
    /// coarse question about a detailed object is still easy at high QP.
    pub fn object_quality_for_detail(
        &self,
        object_id: u32,
        min_cover: f64,
        detail: f64,
        rd: &RdModel,
    ) -> Option<f64> {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for b in &self.blocks {
            if let Some((_, frac)) = b
                .object_coverage
                .iter()
                .find(|(id, f)| *id == object_id && *f >= min_cover)
            {
                let q = if b.received {
                    rd.block_quality(b.qp, detail)
                } else {
                    rd.concealment_quality(detail)
                };
                weighted += frac * q;
                weight += frac;
            }
        }
        if weight == 0.0 {
            None
        } else {
            Some(weighted / weight)
        }
    }

    /// Question-conditioned mean quality over the whole frame (see
    /// [`DecodedFrame::object_quality_for_detail`]).
    pub fn mean_quality_for_detail(&self, detail: f64, rd: &RdModel) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks
            .iter()
            .map(|b| {
                if b.received {
                    rd.block_quality(b.qp, detail)
                } else {
                    rd.concealment_quality(detail)
                }
            })
            .sum::<f64>()
            / self.blocks.len() as f64
    }

    /// Mean decoded quality of the blocks covering a given object (coverage ≥ `min_cover`),
    /// or `None` when the object is not visible in this frame.
    pub fn object_quality(&self, object_id: u32, min_cover: f64) -> Option<f64> {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for b in &self.blocks {
            if let Some((_, frac)) = b
                .object_coverage
                .iter()
                .find(|(id, f)| *id == object_id && *f >= min_cover)
            {
                weighted += frac * b.quality;
                weight += frac;
            }
        }
        if weight == 0.0 {
            None
        } else {
            Some(weighted / weight)
        }
    }
}

/// Reusable buffers for [`Decoder::decode_into`]: the per-block coverage verdicts
/// (concealment state) computed from the received byte ranges.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Which blocks arrived intact (filled by [`EncodedFrame::blocks_covered_into`]).
    covered: Vec<bool>,
}

impl DecodeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The decoder.
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    rd: RdModel,
}

impl Decoder {
    /// Creates a decoder with the default R-D model (used only for concealment quality).
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes a frame that arrived completely (no transport loss).
    pub fn decode_complete(&self, encoded: &EncodedFrame, received_at_us: Option<u64>) -> DecodedFrame {
        let total = encoded.total_bytes();
        self.decode_with_received(encoded, &[(0, total)], received_at_us)
    }

    /// Decodes a frame given the byte ranges that actually arrived.
    ///
    /// `received` must be sorted by start offset and non-overlapping (the RTC depacketizer
    /// produces it in that form).
    ///
    /// Allocates a fresh [`DecodedFrame`] per call; per-frame loops should hold a
    /// [`DecodeScratch`] and an output buffer and call [`Decoder::decode_into`] instead,
    /// which is allocation-free after warmup.
    pub fn decode_with_received(
        &self,
        encoded: &EncodedFrame,
        received: &[(u64, u64)],
        received_at_us: Option<u64>,
    ) -> DecodedFrame {
        let mut scratch = DecodeScratch::new();
        let mut out = DecodedFrame::placeholder();
        self.decode_into(encoded, received, received_at_us, &mut scratch, &mut out);
        out
    }

    /// [`Decoder::decode_with_received`] into a caller-owned frame buffer.
    ///
    /// `out` is refilled in place (its block vector keeps its capacity) and the per-block
    /// object-coverage lists are `Arc`-shared with the encoded blocks, so once the buffers
    /// have grown to the frame's block count a decode performs zero heap allocations.
    /// Output is bit-identical to [`Decoder::decode_with_received`] (see the equivalence
    /// tests).
    pub fn decode_into(
        &self,
        encoded: &EncodedFrame,
        received: &[(u64, u64)],
        received_at_us: Option<u64>,
        scratch: &mut DecodeScratch,
        out: &mut DecodedFrame,
    ) {
        encoded.blocks_covered_into(received, &mut scratch.covered);
        out.blocks.clear();
        out.blocks.reserve(encoded.blocks.len());
        out.blocks.extend(
            encoded
                .blocks
                .iter()
                .zip(&scratch.covered)
                .map(|(b, &ok)| DecodedBlock {
                    index: b.index,
                    received: ok,
                    qp: b.qp,
                    quality: if ok {
                        b.encoded_quality
                    } else {
                        self.rd.concealment_quality(b.detail)
                    },
                    detail: b.detail,
                    object_coverage: b.object_coverage.clone(),
                }),
        );
        out.frame_index = encoded.frame_index;
        out.capture_ts_us = encoded.capture_ts_us;
        out.received_at_us = received_at_us;
        out.frame_type = encoded.frame_type;
        out.width = encoded.width;
        out.height = encoded.height;
        out.block_size = encoded.block_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use crate::qp::Qp;
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn encoded() -> EncodedFrame {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        Encoder::new(EncoderConfig::default()).encode_uniform(&source.frame(0), Qp::new(30))
    }

    #[test]
    fn complete_decode_preserves_encoded_quality() {
        let e = encoded();
        let d = Decoder::new().decode_complete(&e, Some(123));
        assert_eq!(d.blocks.len(), e.blocks.len());
        assert_eq!(d.received_fraction(), 1.0);
        assert!((d.mean_quality() - e.mean_encoded_quality()).abs() < 1e-12);
        assert_eq!(d.received_at_us, Some(123));
    }

    #[test]
    fn missing_bytes_reduce_quality() {
        let e = encoded();
        let half = e.total_bytes() / 2;
        let d = Decoder::new().decode_with_received(&e, &[(0, half)], None);
        assert!(d.received_fraction() < 1.0);
        assert!(d.mean_quality() < e.mean_encoded_quality());
    }

    #[test]
    fn region_quality_reflects_localized_loss() {
        let e = encoded();
        // Drop the last third of the bitstream: the bottom rows of the frame lose quality,
        // the top row does not.
        let cutoff = e.total_bytes() * 2 / 3;
        let d = Decoder::new().decode_with_received(&e, &[(0, cutoff)], None);
        let top = d.region_quality(&Rect::new(0, 0, e.width, 64));
        let bottom = d.region_quality(&Rect::new(0, e.height as i64 - 64, e.width, 64));
        assert!(top > bottom, "top {top} bottom {bottom}");
    }

    #[test]
    fn object_quality_found_for_visible_objects() {
        let e = encoded();
        let d = Decoder::new().decode_complete(&e, None);
        // Object 1 is the scoreboard in the basketball template.
        let q = d.object_quality(1, 0.05);
        assert!(q.is_some());
        assert!(q.unwrap() > 0.0);
        assert!(d.object_quality(9_999, 0.05).is_none());
    }

    #[test]
    fn empty_received_set_conceals_everything() {
        let e = encoded();
        let d = Decoder::new().decode_with_received(&e, &[], None);
        assert_eq!(d.received_fraction(), 0.0);
        assert!(d.mean_quality() < 0.3);
    }

    #[test]
    fn decode_into_is_identical_to_decode_with_received() {
        let e = encoded();
        let total = e.total_bytes();
        let dec = Decoder::new();
        let mut scratch = DecodeScratch::new();
        let mut out = DecodedFrame::placeholder();
        for (received, at) in [
            (vec![(0, total)], Some(5u64)),
            (vec![(0, total / 2)], None),
            (vec![], Some(9)),
            (vec![(0, total / 3), (total / 2, total)], None),
            (vec![(0, total)], None),
        ] {
            dec.decode_into(&e, &received, at, &mut scratch, &mut out);
            assert_eq!(out, dec.decode_with_received(&e, &received, at), "{received:?}");
        }
    }

    #[test]
    fn region_quality_outside_frame_is_zero() {
        let e = encoded();
        let d = Decoder::new().decode_complete(&e, None);
        assert_eq!(d.region_quality(&Rect::new(100_000, 100_000, 10, 10)), 0.0);
    }
}
