//! Frame- and region-level quality summaries.
//!
//! Traditional RTC optimizes perceptual metrics (SSIM/VMAF); the paper's point is that the
//! metric that matters for AI Video Chat is MLLM accuracy, which depends on *where* quality
//! lands, not on the average. Both views are provided: a scalar frame quality (what a
//! traditional pipeline would optimize) and per-region / per-object quality (what actually
//! predicts MLLM accuracy).

use crate::decoder::DecodedFrame;
use aivc_scene::Rect;

/// Scalar "perceptual-style" frame quality: the plain mean of block recognition quality.
///
/// This is the quantity a context-agnostic encoder implicitly maximizes at a given bitrate.
pub fn frame_quality(frame: &DecodedFrame) -> f64 {
    frame.mean_quality()
}

/// Area-weighted decoded quality of a region (delegates to [`DecodedFrame::region_quality`]).
pub fn region_quality(frame: &DecodedFrame, region: &Rect) -> f64 {
    frame.region_quality(region)
}

/// A PSNR-like score in dB derived from recognition quality, for readers who want a familiar
/// scale: maps quality 0 → ~20 dB and quality 1 → ~48 dB, monotonically.
pub fn pseudo_psnr_db(quality: f64) -> f64 {
    20.0 + 28.0 * quality.clamp(0.0, 1.0)
}

/// Detail-weighted quality: the mean of block quality weighted by the block's detail
/// requirement. This correlates with answerability of detail-rich questions far better than
/// the plain mean — it is the quantity context-aware streaming implicitly maximizes.
pub fn detail_weighted_quality(frame: &DecodedFrame) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for b in &frame.blocks {
        let w = b.detail.max(1e-6);
        num += w * b.quality;
        den += w;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::encoder::{Encoder, EncoderConfig};
    use crate::qp::{Qp, QpMap};
    use aivc_scene::templates::basketball_game;
    use aivc_scene::{SourceConfig, VideoSource};

    fn decoded_at(qp: u8) -> DecodedFrame {
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let enc = Encoder::new(EncoderConfig::default());
        let e = enc.encode_uniform(&source.frame(0), Qp::new(qp as i32));
        Decoder::new().decode_complete(&e, None)
    }

    #[test]
    fn frame_quality_decreases_with_qp() {
        assert!(frame_quality(&decoded_at(24)) > frame_quality(&decoded_at(44)));
    }

    #[test]
    fn pseudo_psnr_monotone_and_bounded() {
        assert!(pseudo_psnr_db(0.0) < pseudo_psnr_db(0.5));
        assert!(pseudo_psnr_db(0.5) < pseudo_psnr_db(1.0));
        assert_eq!(pseudo_psnr_db(-1.0), 20.0);
        assert_eq!(pseudo_psnr_db(2.0), 48.0);
    }

    #[test]
    fn detail_weighted_quality_tracks_detail_regions() {
        // Start from a uniform high-QP encode, then spend bits only on the detail-rich
        // blocks: the detail-weighted metric must improve markedly more than the plain mean,
        // because the plain mean is dominated by the (unchanged) low-detail majority.
        let source = VideoSource::new(basketball_game(1), SourceConfig::fps30(10.0));
        let frame = source.frame(0);
        let enc = Encoder::new(EncoderConfig::default());
        let dims = enc.grid_for(&frame);

        let baseline_map = QpMap::uniform(dims, Qp::new(46));
        let mut favour_detail = QpMap::uniform(dims, Qp::new(46));
        for row in 0..dims.rows {
            for col in 0..dims.cols {
                let cell = dims.cell_rect(row, col, frame.width, frame.height);
                if frame.region_content(&cell).detail > 0.5 {
                    favour_detail.set(row, col, Qp::new(22));
                }
            }
        }
        let dec = Decoder::new();
        let a = dec.decode_complete(&enc.encode_with_qp_map(&frame, &favour_detail), None);
        let b = dec.decode_complete(&enc.encode_with_qp_map(&frame, &baseline_map), None);
        let detail_gain = detail_weighted_quality(&a) - detail_weighted_quality(&b);
        let mean_gain = frame_quality(&a) - frame_quality(&b);
        assert!(detail_gain > 0.1, "detail-weighted gain too small: {detail_gain}");
        assert!(
            detail_gain > mean_gain * 2.0,
            "detail-weighted metric ({detail_gain}) should react far more than the mean ({mean_gain})"
        );
    }

    #[test]
    fn region_quality_matches_decoded_frame_method() {
        let d = decoded_at(30);
        let r = Rect::new(60, 40, 420, 110);
        assert_eq!(region_quality(&d, &r), d.region_quality(&r));
    }
}
