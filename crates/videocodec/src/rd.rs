//! The empirical rate–distortion model.
//!
//! Calibrated against standard HEVC behaviour rather than any specific sequence:
//!
//! * **Rate.** Bits per pixel decay exponentially with QP, halving roughly every 6 QP steps
//!   (`2^(-(qp-22)/6)`), scale linearly with spatial complexity, and inter-coded blocks cost
//!   a fraction of intra blocks that grows with motion.
//! * **Quality.** We model *recognition quality* in `[0, 1]` — the probability-like degree
//!   to which the detail in a block survives compression. It is a logistic function of QP
//!   whose inflection point moves to lower QP as the content's detail requirement rises:
//!   flat regions look "fine" even at QP 45, small text becomes unreadable beyond ~QP 34.
//!   This is precisely the asymmetry the paper exploits (Figure 4: coarse questions survive
//!   200 Kbps, detail questions do not).
//!
//! The constants live in one place so EXPERIMENTS.md can point at them.

use crate::frame::FrameType;
use crate::qp::Qp;
use serde::{Deserialize, Serialize};

/// Rate–distortion model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdModel {
    /// Bits per pixel of a maximum-complexity intra block at the reference QP.
    pub intra_bpp_at_ref: f64,
    /// Reference QP for the exponential rate law.
    pub ref_qp: f64,
    /// QP step that halves the bitrate (≈6 for HEVC).
    pub qp_halving_step: f64,
    /// Base fraction of intra cost paid by an inter block with zero motion.
    pub inter_base_fraction: f64,
    /// Additional inter cost per unit of motion.
    pub inter_motion_fraction: f64,
    /// Floor on per-block bits per pixel (headers, CABAC minimums).
    pub min_bpp: f64,
    /// QP at which half the *recognition quality* of zero-detail content is lost.
    pub quality_qp50_flat: f64,
    /// How many QP steps earlier the half-quality point arrives per unit of detail.
    pub quality_qp50_detail_shift: f64,
    /// Logistic slope (QP steps per e-fold) of the quality curve.
    pub quality_slope: f64,
}

impl Default for RdModel {
    fn default() -> Self {
        Self {
            intra_bpp_at_ref: 0.30,
            ref_qp: 22.0,
            qp_halving_step: 6.0,
            inter_base_fraction: 0.10,
            inter_motion_fraction: 0.55,
            min_bpp: 0.0015,
            quality_qp50_flat: 48.0,
            quality_qp50_detail_shift: 16.0,
            quality_slope: 5.0,
        }
    }
}

/// Lane count of [`RdModel::block_bits_batch`]: eight f64 lanes span two AVX2 registers
/// (or four NEON ones), enough for LLVM to keep the whole rate law in vector registers.
pub const RATE_LANES: usize = 8;

impl RdModel {
    /// The QP-dependent factor of the exponential rate law — the only transcendental in
    /// [`RdModel::block_bits`]. Exposed so encode loops can precompute a 52-entry lookup
    /// table (QP is integral) instead of paying a `powf` per block.
    pub fn qp_factor(&self, qp: Qp) -> f64 {
        2f64.powf(-(qp.as_f64() - self.ref_qp) / self.qp_halving_step)
    }

    /// Bits needed to encode a block of `pixels` pixels with the given QP and content.
    ///
    /// `complexity` and `motion` are the scene descriptors in `[0, 1]`.
    pub fn block_bits(
        &self,
        qp: Qp,
        pixels: u64,
        complexity: f64,
        motion: f64,
        frame_type: FrameType,
    ) -> u64 {
        self.block_bits_with_factor(self.qp_factor(qp), pixels, complexity, motion, frame_type)
    }

    /// [`RdModel::block_bits`] with the QP factor supplied by the caller (normally from a
    /// per-QP lookup table built with [`RdModel::qp_factor`]).
    pub fn block_bits_with_factor(
        &self,
        qp_factor: f64,
        pixels: u64,
        complexity: f64,
        motion: f64,
        frame_type: FrameType,
    ) -> u64 {
        let complexity = complexity.clamp(0.0, 1.0);
        let motion = motion.clamp(0.0, 1.0);
        let content_factor = 0.08 + 0.92 * complexity;
        let type_factor = match frame_type {
            FrameType::Intra => 1.0,
            FrameType::Inter => self.inter_base_fraction + self.inter_motion_fraction * motion,
        };
        let bpp = (self.intra_bpp_at_ref * content_factor * qp_factor * type_factor).max(self.min_bpp);
        (bpp * pixels as f64).ceil() as u64
    }

    /// Eight [`RdModel::block_bits_with_factor`] evaluations in lockstep. Every lane runs
    /// the identical expression on its own inputs — the rate law is element-wise, so each
    /// lane's result is bit-identical to the scalar call by construction, and the
    /// fixed-width loops lower to straight-line SIMD (clamps → vector min/max, the factor
    /// products → vector multiplies) under the release profile.
    pub fn block_bits_batch(
        &self,
        qp_factor: &[f64; RATE_LANES],
        pixels: &[u64; RATE_LANES],
        complexity: &[f64; RATE_LANES],
        motion: &[f64; RATE_LANES],
        frame_type: FrameType,
        out: &mut [u64; RATE_LANES],
    ) {
        let mut bpp = [0.0f64; RATE_LANES];
        match frame_type {
            FrameType::Intra => {
                for lane in 0..RATE_LANES {
                    let content_factor = 0.08 + 0.92 * complexity[lane].clamp(0.0, 1.0);
                    bpp[lane] = (self.intra_bpp_at_ref * content_factor * qp_factor[lane])
                        .max(self.min_bpp);
                }
            }
            FrameType::Inter => {
                for lane in 0..RATE_LANES {
                    let content_factor = 0.08 + 0.92 * complexity[lane].clamp(0.0, 1.0);
                    let type_factor = self.inter_base_fraction
                        + self.inter_motion_fraction * motion[lane].clamp(0.0, 1.0);
                    bpp[lane] = (self.intra_bpp_at_ref * content_factor * qp_factor[lane] * type_factor)
                        .max(self.min_bpp);
                }
            }
        }
        for lane in 0..RATE_LANES {
            out[lane] = (bpp[lane] * pixels[lane] as f64).ceil() as u64;
        }
    }

    /// Recognition quality in `[0, 1]` of a block encoded at `qp` whose content requires
    /// `detail` ∈ `[0, 1]` of fine detail to be understood.
    ///
    /// Monotone decreasing in QP and in detail requirement.
    pub fn block_quality(&self, qp: Qp, detail: f64) -> f64 {
        let detail = detail.clamp(0.0, 1.0);
        let qp50 = self.quality_qp50_flat - self.quality_qp50_detail_shift * detail;
        let x = (qp.as_f64() - qp50) / self.quality_slope;
        1.0 / (1.0 + x.exp())
    }

    /// The QP at which `block_quality` crosses `target_quality` for the given detail level
    /// (useful for inverse queries in tests and in the rate allocator).
    pub fn qp_for_quality(&self, target_quality: f64, detail: f64) -> Qp {
        let target = target_quality.clamp(1e-6, 1.0 - 1e-6);
        let detail = detail.clamp(0.0, 1.0);
        let qp50 = self.quality_qp50_flat - self.quality_qp50_detail_shift * detail;
        let qp = qp50 + self.quality_slope * ((1.0 - target) / target).ln();
        Qp::from_f64(qp)
    }

    /// The quality assigned to a block that was lost in transit and had to be concealed
    /// from neighbouring/previous content. Concealment preserves almost none of the detail.
    pub fn concealment_quality(&self, detail: f64) -> f64 {
        // Flat content conceals tolerably; detailed content is essentially destroyed.
        (0.25 * (1.0 - detail.clamp(0.0, 1.0))).clamp(0.02, 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_halves_every_six_qp() {
        let m = RdModel::default();
        let b30 = m.block_bits(Qp::new(30), 64 * 64, 0.6, 0.3, FrameType::Intra);
        let b36 = m.block_bits(Qp::new(36), 64 * 64, 0.6, 0.3, FrameType::Intra);
        let ratio = b30 as f64 / b36 as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn rate_is_monotone_decreasing_in_qp() {
        let m = RdModel::default();
        let mut prev = u64::MAX;
        for qp in 0..=51 {
            let bits = m.block_bits(Qp::new(qp), 64 * 64, 0.5, 0.5, FrameType::Intra);
            assert!(bits <= prev, "bits increased at qp {qp}");
            prev = bits;
        }
    }

    #[test]
    fn inter_is_cheaper_than_intra_and_scales_with_motion() {
        let m = RdModel::default();
        let intra = m.block_bits(Qp::new(30), 64 * 64, 0.5, 0.0, FrameType::Intra);
        let inter_static = m.block_bits(Qp::new(30), 64 * 64, 0.5, 0.0, FrameType::Inter);
        let inter_moving = m.block_bits(Qp::new(30), 64 * 64, 0.5, 1.0, FrameType::Inter);
        assert!(inter_static < intra);
        assert!(inter_moving > inter_static);
        assert!(inter_moving < intra);
    }

    #[test]
    fn complexity_increases_rate() {
        let m = RdModel::default();
        let flat = m.block_bits(Qp::new(30), 64 * 64, 0.05, 0.0, FrameType::Intra);
        let busy = m.block_bits(Qp::new(30), 64 * 64, 0.95, 0.0, FrameType::Intra);
        assert!(busy > flat * 3);
    }

    #[test]
    fn rate_has_floor() {
        let m = RdModel::default();
        let bits = m.block_bits(Qp::new(51), 64 * 64, 0.0, 0.0, FrameType::Inter);
        assert!(bits >= (m.min_bpp * 64.0 * 64.0) as u64);
    }

    #[test]
    fn quality_monotone_in_qp_and_detail() {
        let m = RdModel::default();
        for detail in [0.0, 0.3, 0.6, 0.9] {
            let mut prev = f64::INFINITY;
            for qp in 0..=51 {
                let q = m.block_quality(Qp::new(qp), detail);
                assert!(q <= prev + 1e-12);
                assert!((0.0..=1.0).contains(&q));
                prev = q;
            }
        }
        // More detail => lower quality at the same QP.
        assert!(m.block_quality(Qp::new(38), 0.9) < m.block_quality(Qp::new(38), 0.1));
    }

    #[test]
    fn low_qp_preserves_even_small_text() {
        let m = RdModel::default();
        assert!(m.block_quality(Qp::new(20), 0.95) > 0.85);
    }

    #[test]
    fn high_qp_destroys_detail_but_not_coarse_content() {
        let m = RdModel::default();
        let text = m.block_quality(Qp::new(42), 0.9);
        let pose = m.block_quality(Qp::new(42), 0.2);
        assert!(text < 0.25, "text quality {text}");
        assert!(pose > 0.6, "pose quality {pose}");
    }

    #[test]
    fn qp_for_quality_inverts_block_quality() {
        let m = RdModel::default();
        for &detail in &[0.1, 0.5, 0.9] {
            for &target in &[0.3, 0.5, 0.8] {
                let qp = m.qp_for_quality(target, detail);
                let q = m.block_quality(qp, detail);
                assert!(
                    (q - target).abs() < 0.12,
                    "detail {detail} target {target} got {q}"
                );
            }
        }
    }

    #[test]
    fn batched_rate_matches_scalar_lane_for_lane() {
        let m = RdModel::default();
        // Includes out-of-range complexity/motion (clamped) and mixed pixel counts.
        let complexity = [0.0, 0.05, 0.3, 0.5, 0.77, 1.0, 1.4, -0.2];
        let motion = [0.0, 1.0, 0.5, 0.25, 0.9, 0.1, -0.3, 2.0];
        let pixels = [4096u64, 4096, 2048, 64, 4096, 1000, 4096, 512];
        let qps = [0, 10, 22, 30, 37, 44, 51, 26];
        let mut qp_factor = [0.0; RATE_LANES];
        for (f, &qp) in qp_factor.iter_mut().zip(&qps) {
            *f = m.qp_factor(Qp::new(qp));
        }
        for frame_type in [FrameType::Intra, FrameType::Inter] {
            let mut out = [0u64; RATE_LANES];
            m.block_bits_batch(&qp_factor, &pixels, &complexity, &motion, frame_type, &mut out);
            for lane in 0..RATE_LANES {
                let scalar = m.block_bits(
                    Qp::new(qps[lane]),
                    pixels[lane],
                    complexity[lane],
                    motion[lane],
                    frame_type,
                );
                assert_eq!(out[lane], scalar, "lane {lane} {frame_type:?}");
            }
        }
    }

    #[test]
    fn concealment_quality_is_poor() {
        let m = RdModel::default();
        assert!(m.concealment_quality(0.9) < 0.1);
        assert!(m.concealment_quality(0.0) <= 0.25);
        assert!(m.concealment_quality(0.5) < m.block_quality(Qp::new(35), 0.5));
    }
}
