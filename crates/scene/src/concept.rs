//! Semantic concepts and the relatedness ontology.
//!
//! The paper uses CLIP to relate *user words* to *video regions*, including indirect,
//! high-level relations (e.g. "season" relates to "grass" because grass growth implies the
//! season, Figure 5). Our CLIP substitute (`aivc-semantics`) needs a notion of which
//! concepts are related and how strongly. That knowledge lives here, next to the scene
//! templates that use the same vocabulary, so scene ground truth and semantic embeddings
//! always agree on terminology.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A semantic concept, identified by a lowercase kebab-case name (e.g. `"dog-head"`).
///
/// Concepts are cheap, order-comparable string newtypes; the interesting structure (which
/// concepts relate to which) lives in [`Ontology`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Concept(pub String);

impl Concept {
    /// Creates a concept from any string-like name. Names are normalized to lowercase.
    pub fn new(name: impl Into<String>) -> Self {
        Concept(name.into().to_lowercase())
    }

    /// The concept's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Concept {
    fn from(s: &str) -> Self {
        Concept::new(s)
    }
}

impl std::fmt::Display for Concept {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A symmetric, weighted relatedness graph over concepts.
///
/// `relatedness(a, b)` ∈ `[0, 1]`: `1.0` for identical concepts, values around `0.6..0.9`
/// for strong direct relations (dog ↔ dog-head), `0.3..0.6` for inferential relations
/// (grass ↔ season), and `0.0` for unrelated concepts. The graph also performs one hop of
/// transitive closure at a discount so that e.g. "floppy ears" relates (weakly) to "dog".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ontology {
    concepts: BTreeSet<Concept>,
    /// Direct relation weights, keyed by the ordered pair (min, max).
    relations: BTreeMap<(Concept, Concept), f64>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when no concepts are registered.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Registers a concept (idempotent).
    pub fn add_concept(&mut self, c: impl Into<Concept>) -> Concept {
        let c = c.into();
        self.concepts.insert(c.clone());
        c
    }

    /// Returns true if the concept has been registered.
    pub fn contains(&self, c: &Concept) -> bool {
        self.concepts.contains(c)
    }

    /// Iterates over all registered concepts in lexicographic order.
    pub fn concepts(&self) -> impl Iterator<Item = &Concept> {
        self.concepts.iter()
    }

    /// Declares a symmetric relation of strength `weight` ∈ `[0, 1]` between two concepts,
    /// registering both as a side effect. Re-declaring keeps the maximum weight.
    pub fn relate(&mut self, a: impl Into<Concept>, b: impl Into<Concept>, weight: f64) {
        let a = self.add_concept(a);
        let b = self.add_concept(b);
        if a == b {
            return;
        }
        let key = Self::key(a, b);
        let w = weight.clamp(0.0, 1.0);
        let entry = self.relations.entry(key).or_insert(0.0);
        if w > *entry {
            *entry = w;
        }
    }

    fn key(a: Concept, b: Concept) -> (Concept, Concept) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Direct relation weight between two concepts (0 when none was declared).
    pub fn direct_relatedness(&self, a: &Concept, b: &Concept) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = Self::key(a.clone(), b.clone());
        self.relations.get(&key).copied().unwrap_or(0.0)
    }

    /// Relatedness with one hop of transitive closure at a 0.5 discount.
    ///
    /// `relatedness(a, b) = max(direct(a, b), 0.5 * max_c direct(a, c) * direct(c, b))`.
    /// This captures chains such as *floppy-ears — dog-head — dog* without requiring every
    /// pair to be declared explicitly.
    pub fn relatedness(&self, a: &Concept, b: &Concept) -> f64 {
        let direct = self.direct_relatedness(a, b);
        if direct >= 1.0 {
            return 1.0;
        }
        let mut best = direct;
        for c in &self.concepts {
            if c == a || c == b {
                continue;
            }
            let via = 0.5 * self.direct_relatedness(a, c) * self.direct_relatedness(c, b);
            if via > best {
                best = via;
            }
        }
        best
    }

    /// All concepts whose relatedness to `query` is at least `threshold`, most related first.
    pub fn related_to(&self, query: &Concept, threshold: f64) -> Vec<(Concept, f64)> {
        let mut out: Vec<(Concept, f64)> = self
            .concepts
            .iter()
            .map(|c| (c.clone(), self.relatedness(query, c)))
            .filter(|(_, w)| *w >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The standard ontology used by the built-in scene templates.
    ///
    /// Covers the paper's running examples (basketball game with scoreboard/jersey/spectators,
    /// dog with ears in a park with grass/seasons, text-rich lecture slides, cooking, street
    /// scenes) plus generic background concepts.
    pub fn standard() -> Self {
        let mut o = Ontology::new();
        // --- sports / basketball (Figures 4 and 10) ---
        o.relate("basketball-game", "player", 0.85);
        o.relate("basketball-game", "scoreboard", 0.8);
        o.relate("basketball-game", "court", 0.8);
        o.relate("basketball-game", "spectators", 0.7);
        o.relate("basketball-game", "jersey", 0.6);
        o.relate("player", "jersey", 0.85);
        o.relate("player", "mouth", 0.5);
        o.relate("player", "action", 0.7);
        o.relate("player", "person", 0.9);
        o.relate("jersey", "logo", 0.9);
        o.relate("jersey", "number", 0.8);
        o.relate("scoreboard", "score", 0.95);
        o.relate("scoreboard", "text", 0.85);
        o.relate("scoreboard", "number", 0.85);
        o.relate("score", "number", 0.9);
        o.relate("spectators", "crowd", 0.95);
        o.relate("spectators", "person", 0.7);
        o.relate("spectators", "counting", 0.6);
        o.relate("crowd", "counting", 0.55);
        o.relate("mouth", "face", 0.85);
        o.relate("face", "person", 0.85);
        o.relate("logo", "text", 0.6);
        o.relate("logo", "brand", 0.9);
        // --- dog / park / seasons (Figure 5) ---
        o.relate("dog", "dog-head", 0.9);
        o.relate("dog", "animal", 0.9);
        o.relate("dog-head", "ears", 0.9);
        o.relate("ears", "floppy-ears", 0.85);
        o.relate("ears", "erect-ears", 0.85);
        o.relate("dog", "tail", 0.75);
        o.relate("dog", "fur", 0.7);
        o.relate("park", "grass", 0.8);
        o.relate("park", "tree", 0.75);
        o.relate("park", "bench", 0.6);
        o.relate("grass", "season", 0.55);
        o.relate("tree", "season", 0.5);
        o.relate("grass", "lawn", 0.9);
        o.relate("sky", "weather", 0.7);
        o.relate("weather", "season", 0.6);
        // --- text-rich / lecture / documents ---
        o.relate("slide", "text", 0.9);
        o.relate("slide", "title", 0.8);
        o.relate("slide", "diagram", 0.7);
        o.relate("whiteboard", "text", 0.85);
        o.relate("document", "text", 0.9);
        o.relate("sign", "text", 0.85);
        o.relate("text", "reading", 0.8);
        o.relate("text", "word", 0.9);
        o.relate("title", "text", 0.85);
        o.relate("caption", "text", 0.85);
        o.relate("number", "text", 0.7);
        o.relate("lecturer", "person", 0.85);
        o.relate("lecture", "slide", 0.8);
        o.relate("lecture", "lecturer", 0.8);
        // --- cooking ---
        o.relate("kitchen", "cooking", 0.85);
        o.relate("cooking", "food", 0.85);
        o.relate("cooking", "chef", 0.8);
        o.relate("cooking", "pan", 0.75);
        o.relate("chef", "person", 0.85);
        o.relate("food", "ingredient", 0.85);
        o.relate("ingredient", "vegetable", 0.7);
        o.relate("recipe", "text", 0.6);
        o.relate("recipe", "cooking", 0.8);
        o.relate("pan", "stove", 0.8);
        o.relate("kitchen", "stove", 0.75);
        // --- street / traffic ---
        o.relate("street", "car", 0.8);
        o.relate("street", "pedestrian", 0.75);
        o.relate("street", "traffic-light", 0.7);
        o.relate("car", "license-plate", 0.8);
        o.relate("license-plate", "text", 0.8);
        o.relate("license-plate", "number", 0.8);
        o.relate("pedestrian", "person", 0.9);
        o.relate("traffic-light", "color", 0.7);
        o.relate("car", "color", 0.5);
        o.relate("street", "sign", 0.6);
        // --- generic spatial / attribute / counting hooks ---
        o.relate("counting", "number", 0.6);
        o.relate("color", "attribute", 0.7);
        o.relate("attribute", "appearance", 0.8);
        o.relate("spatial", "position", 0.9);
        o.relate("position", "left", 0.6);
        o.relate("position", "right", 0.6);
        o.relate("action", "motion", 0.8);
        o.relate("person", "clothing", 0.6);
        o.relate("clothing", "color", 0.6);
        o.relate("clothing", "jersey", 0.6);
        // --- background concepts present in most scenes ---
        for c in ["background", "wall", "floor", "sky", "ground", "audience-stand"] {
            o.add_concept(c);
        }
        o.relate("audience-stand", "spectators", 0.7);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concept_normalizes_case() {
        assert_eq!(Concept::new("Dog-Head"), Concept::new("dog-head"));
        assert_eq!(Concept::from("GRASS").name(), "grass");
    }

    #[test]
    fn relatedness_is_symmetric_and_bounded() {
        let o = Ontology::standard();
        for a in o.concepts() {
            for b in o.concepts() {
                let ab = o.relatedness(a, b);
                let ba = o.relatedness(b, a);
                assert!((ab - ba).abs() < 1e-12, "asymmetric for {a} / {b}");
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn identity_relatedness_is_one() {
        let o = Ontology::standard();
        let dog = Concept::new("dog");
        assert_eq!(o.relatedness(&dog, &dog), 1.0);
    }

    #[test]
    fn direct_relations_from_standard_ontology() {
        let o = Ontology::standard();
        assert!(o.relatedness(&"scoreboard".into(), &"score".into()) > 0.9);
        assert!(o.relatedness(&"grass".into(), &"season".into()) > 0.5);
        assert!(o.relatedness(&"dog".into(), &"scoreboard".into()) < 0.2);
    }

    #[test]
    fn transitive_hop_connects_ears_to_dog() {
        let o = Ontology::standard();
        // floppy-ears -- ears -- dog-head -- dog: at least one intermediate hop should give
        // a nonzero relatedness between floppy-ears and dog-head.
        let w = o.relatedness(&"floppy-ears".into(), &"dog-head".into());
        assert!(w > 0.3, "expected transitive relation, got {w}");
    }

    #[test]
    fn relate_keeps_maximum_weight() {
        let mut o = Ontology::new();
        o.relate("a", "b", 0.3);
        o.relate("b", "a", 0.7);
        o.relate("a", "b", 0.5);
        assert!((o.direct_relatedness(&"a".into(), &"b".into()) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn related_to_sorted_descending() {
        let o = Ontology::standard();
        let rel = o.related_to(&"dog".into(), 0.2);
        assert!(rel.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(rel[0].0, Concept::new("dog"));
    }

    #[test]
    fn self_relation_is_ignored() {
        let mut o = Ontology::new();
        o.relate("x", "x", 0.4);
        assert_eq!(o.relatedness(&"x".into(), &"x".into()), 1.0);
        assert_eq!(o.len(), 1);
    }
}
