//! Ground-truth facts: the raw material DeViBench turns into QA samples.
//!
//! A fact states something objectively true about a scene ("the home team's score is 78",
//! "the dog has floppy ears", "there are 5 visible spectators"), which objects carry the
//! evidence, how much decoded detail is required to perceive the evidence, and whether a
//! single frame suffices (Figure 8's inner ring distinguishes single- vs multi-frame
//! questions).

use serde::{Deserialize, Serialize};

/// The six QA categories reported in the paper's Figure 8 (outer ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FactCategory {
    /// Reading text/numbers in the video (54.84 % of DeViBench).
    TextRich,
    /// What an actor is doing (17.03 %).
    ActionPerception,
    /// Properties of objects: color, shape, ear type… (14.43 %).
    AttributePerception,
    /// How many instances are visible (6 %).
    Counting,
    /// Which objects are present (5.9 %).
    ObjectPerception,
    /// Relative positions (1.8 %).
    SpatialUnderstanding,
}

impl FactCategory {
    /// All categories, in the order the paper reports them.
    pub const ALL: [FactCategory; 6] = [
        FactCategory::TextRich,
        FactCategory::ActionPerception,
        FactCategory::AttributePerception,
        FactCategory::Counting,
        FactCategory::ObjectPerception,
        FactCategory::SpatialUnderstanding,
    ];

    /// The paper's reported share of DeViBench QA samples for this category (Figure 8).
    pub fn paper_share(self) -> f64 {
        match self {
            FactCategory::TextRich => 0.5484,
            FactCategory::ActionPerception => 0.1703,
            FactCategory::AttributePerception => 0.1443,
            FactCategory::Counting => 0.06,
            FactCategory::ObjectPerception => 0.059,
            FactCategory::SpatialUnderstanding => 0.018,
        }
    }

    /// Human-readable label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            FactCategory::TextRich => "text-rich understanding",
            FactCategory::ActionPerception => "action perception",
            FactCategory::AttributePerception => "attribute perception",
            FactCategory::Counting => "counting",
            FactCategory::ObjectPerception => "object perception",
            FactCategory::SpatialUnderstanding => "spatial understanding",
        }
    }

    /// How quality-sensitive questions in this category typically are, in `[0, 1]`.
    ///
    /// Text and counting need fine detail; object presence and coarse actions survive heavy
    /// compression (this is exactly why only 8 % of StreamingBench questions flip at
    /// 200 Kbps, §2.3).
    pub fn typical_detail_requirement(self) -> f64 {
        match self {
            FactCategory::TextRich => 0.85,
            FactCategory::Counting => 0.75,
            FactCategory::AttributePerception => 0.6,
            FactCategory::SpatialUnderstanding => 0.45,
            FactCategory::ActionPerception => 0.35,
            FactCategory::ObjectPerception => 0.25,
        }
    }
}

impl std::fmt::Display for FactCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A ground-truth fact about a scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneFact {
    /// Category of question this fact supports.
    pub category: FactCategory,
    /// A natural-language question a user might ask about the fact.
    pub question: String,
    /// The (single) correct answer.
    pub answer: String,
    /// Plausible-but-wrong alternatives used to build multiple-choice distractors.
    pub distractors: Vec<String>,
    /// IDs of the scene objects that carry the evidence.
    pub evidence_objects: Vec<u32>,
    /// How much decoded detail of the evidence regions is needed to answer, in `[0, 1]`.
    ///
    /// 0.2 means "answerable from a heavily blurred frame"; 0.9 means "needs near-lossless
    /// quality" (small text, counting similar small objects).
    pub required_detail: f64,
    /// Whether answering requires observing multiple frames (temporal dependency).
    pub multi_frame: bool,
    /// Key concepts the question refers to (used by the semantics model for the query text).
    pub query_concepts: Vec<String>,
}

impl SceneFact {
    /// Creates a fact with the mandatory fields; distractors and flags via builder methods.
    pub fn new(
        category: FactCategory,
        question: impl Into<String>,
        answer: impl Into<String>,
        evidence_objects: Vec<u32>,
        required_detail: f64,
    ) -> Self {
        Self {
            category,
            question: question.into(),
            answer: answer.into(),
            distractors: Vec::new(),
            evidence_objects,
            required_detail: required_detail.clamp(0.0, 1.0),
            multi_frame: false,
            query_concepts: Vec::new(),
        }
    }

    /// Adds multiple-choice distractors.
    pub fn with_distractors<I, S>(mut self, distractors: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.distractors.extend(distractors.into_iter().map(Into::into));
        self
    }

    /// Marks the fact as requiring multiple frames to answer.
    pub fn multi_frame(mut self) -> Self {
        self.multi_frame = true;
        self
    }

    /// Declares the concepts mentioned by the question text.
    pub fn with_query_concepts<I, S>(mut self, concepts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.query_concepts.extend(concepts.into_iter().map(Into::into));
        self
    }

    /// A fact is *quality-sensitive* when its required detail exceeds the given threshold.
    ///
    /// DeViBench is built almost entirely from quality-sensitive facts; StreamingBench-style
    /// benchmarks are built mostly from insensitive ones (§2.3).
    pub fn is_quality_sensitive(&self, threshold: f64) -> bool {
        self.required_detail >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shares_sum_to_one() {
        let total: f64 = FactCategory::ALL.iter().map(|c| c.paper_share()).sum();
        assert!((total - 1.0).abs() < 0.005, "total = {total}");
    }

    #[test]
    fn text_rich_is_most_detail_demanding() {
        let max = FactCategory::ALL
            .iter()
            .max_by(|a, b| {
                a.typical_detail_requirement()
                    .partial_cmp(&b.typical_detail_requirement())
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert_eq!(max, FactCategory::TextRich);
    }

    #[test]
    fn fact_builder_and_sensitivity() {
        let f = SceneFact::new(
            FactCategory::Counting,
            "How many spectators can be seen?",
            "5",
            vec![7],
            0.8,
        )
        .with_distractors(["3", "4", "6"])
        .with_query_concepts(["spectators", "counting"])
        .multi_frame();
        assert!(f.is_quality_sensitive(0.5));
        assert!(!f.is_quality_sensitive(0.9));
        assert!(f.multi_frame);
        assert_eq!(f.distractors.len(), 3);
        assert_eq!(f.query_concepts, vec!["spectators", "counting"]);
    }

    #[test]
    fn required_detail_is_clamped() {
        let f = SceneFact::new(FactCategory::ObjectPerception, "q", "a", vec![], 7.0);
        assert_eq!(f.required_detail, 1.0);
    }

    #[test]
    fn category_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = FactCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
