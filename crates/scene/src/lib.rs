//! # aivc-scene — synthetic video scenes with ground-truth annotations
//!
//! The paper evaluates on real footage (StreamingBench videos) that we cannot ship or decode
//! here. This crate provides the substitute substrate: **synthetic scenes** that are
//! compositions of labelled objects. Every object carries
//!
//! * a set of semantic [`Concept`]s (what it *is*, for the CLIP-like model),
//! * a spatial region and motion (what it *costs* to encode, for the codec simulator),
//! * a detail level and optional text content (how *sensitive* it is to quality degradation,
//!   for the MLLM accuracy model), and
//! * ground-truth [`SceneFact`]s (what questions can be asked about it, for DeViBench).
//!
//! Because the downstream models (codec R-D, CLIP correlation, MLLM accuracy) only consume
//! these per-region descriptors — never raw pixels — a synthetic scene exercises exactly the
//! same code paths as a decoded real video would, while making the ground truth explicit.
//!
//! The crate is fully deterministic: all randomness goes through seeded ChaCha RNGs.

pub mod concept;
pub mod corpus;
pub mod fact;
pub mod frame;
pub mod geometry;
pub mod grid_content;
pub mod object;
pub mod scene;
pub mod source;
pub mod templates;

pub use concept::{Concept, Ontology};
pub use corpus::{Corpus, VideoClip};
pub use fact::{FactCategory, SceneFact};
pub use frame::{Frame, RegionContent};
pub use geometry::{GridDims, Rect};
pub use object::SceneObject;
pub use scene::Scene;
pub use source::{SourceConfig, VideoSource};
