//! Video sources: turn a static [`Scene`] into a stream of timestamped [`Frame`]s.
//!
//! The paper's capture side runs at the camera's native rate (e.g. 60 FPS, §3.2) while the
//! MLLM consumes at most 2 FPS — the sampling mismatch illustrated in Figure 2. The source
//! therefore exposes both an iterator over all captured frames and random access by time,
//! so the MLLM-side sampler can pick its own (sparser) instants.

use crate::frame::Frame;
use crate::scene::Scene;
use serde::{Deserialize, Serialize};

/// Configuration of a capture source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceConfig {
    /// Capture frame rate in frames per second.
    pub fps: f64,
    /// Clip duration in seconds.
    pub duration_secs: f64,
}

impl SourceConfig {
    /// A 60 FPS source (the paper's example rate).
    pub fn fps60(duration_secs: f64) -> Self {
        Self {
            fps: 60.0,
            duration_secs,
        }
    }

    /// A 30 FPS source (typical RTC camera).
    pub fn fps30(duration_secs: f64) -> Self {
        Self {
            fps: 30.0,
            duration_secs,
        }
    }

    /// Number of frames the clip contains.
    pub fn frame_count(&self) -> u64 {
        (self.fps * self.duration_secs).floor() as u64
    }

    /// Frame interval in microseconds.
    pub fn frame_interval_us(&self) -> u64 {
        (1_000_000.0 / self.fps).round() as u64
    }
}

/// A deterministic video source sampling a [`Scene`].
#[derive(Debug, Clone)]
pub struct VideoSource {
    scene: Scene,
    config: SourceConfig,
}

impl VideoSource {
    /// Creates a source for a scene.
    pub fn new(scene: Scene, config: SourceConfig) -> Self {
        assert!(config.fps > 0.0, "fps must be positive");
        assert!(config.duration_secs > 0.0, "duration must be positive");
        Self { scene, config }
    }

    /// The underlying scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The source configuration.
    pub fn config(&self) -> SourceConfig {
        self.config
    }

    /// Number of frames this source will produce.
    pub fn frame_count(&self) -> u64 {
        self.config.frame_count()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.config.duration_secs
    }

    /// Capture timestamp (µs) of frame `index`.
    pub fn timestamp_us(&self, index: u64) -> u64 {
        (index as f64 * 1_000_000.0 / self.config.fps).round() as u64
    }

    /// Produces the frame with the given index.
    pub fn frame(&self, index: u64) -> Frame {
        let ts = self.timestamp_us(index);
        Frame::sample(&self.scene, index, ts, ts as f64 / 1e6)
    }

    /// Produces the frame nearest to time `t_secs`.
    pub fn frame_at(&self, t_secs: f64) -> Frame {
        let index = ((t_secs * self.config.fps).round() as u64).min(self.frame_count().saturating_sub(1));
        self.frame(index)
    }

    /// Iterates over every captured frame, in order.
    pub fn frames(&self) -> FrameIter<'_> {
        FrameIter {
            source: self,
            next: 0,
        }
    }

    /// Iterates over frames sampled at a lower rate (`target_fps`), e.g. the ≤2 FPS an MLLM
    /// actually processes. Always includes frame 0.
    pub fn frames_at_fps(&self, target_fps: f64) -> Vec<Frame> {
        assert!(target_fps > 0.0);
        let step = (self.config.fps / target_fps).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0_f64;
        while (i.round() as u64) < self.frame_count() {
            out.push(self.frame(i.round() as u64));
            i += step;
        }
        out
    }
}

/// Iterator over a source's frames.
pub struct FrameIter<'a> {
    source: &'a VideoSource,
    next: u64,
}

impl Iterator for FrameIter<'_> {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.next >= self.source.frame_count() {
            return None;
        }
        let f = self.source.frame(self.next);
        self.next += 1;
        Some(f)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.source.frame_count() - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FrameIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::object::SceneObject;

    fn source() -> VideoSource {
        let mut s = Scene::new("t", 640, 480);
        s.add_object(SceneObject::new(1, "ball", Rect::new(0, 0, 64, 64)).with_motion(0.9, (120.0, 60.0)));
        VideoSource::new(s, SourceConfig::fps30(2.0))
    }

    #[test]
    fn frame_count_and_timestamps() {
        let src = source();
        assert_eq!(src.frame_count(), 60);
        assert_eq!(src.timestamp_us(0), 0);
        assert_eq!(src.timestamp_us(30), 1_000_000);
        assert_eq!(src.frames().len(), 60);
    }

    #[test]
    fn frames_are_monotone_in_time() {
        let src = source();
        let frames: Vec<_> = src.frames().collect();
        assert!(frames.windows(2).all(|w| w[0].capture_ts_us < w[1].capture_ts_us));
        assert_eq!(frames.last().unwrap().index, 59);
    }

    #[test]
    fn moving_object_changes_position_between_frames() {
        let src = source();
        let first = src.frame(0);
        let later = src.frame(45);
        assert_ne!(
            first.placement(1).unwrap().region,
            later.placement(1).unwrap().region
        );
    }

    #[test]
    fn downsampled_fps_produces_expected_count() {
        let src = source(); // 30 FPS, 2 s
        let sampled = src.frames_at_fps(2.0);
        assert_eq!(sampled.len(), 4); // frames 0, 15, 30, 45
        assert_eq!(sampled[0].index, 0);
        assert_eq!(sampled[1].index, 15);
    }

    #[test]
    fn frame_at_clamps_to_clip_end() {
        let src = source();
        assert_eq!(src.frame_at(100.0).index, 59);
        assert_eq!(src.frame_at(0.0).index, 0);
    }

    #[test]
    fn fps60_config() {
        let c = SourceConfig::fps60(1.0);
        assert_eq!(c.frame_count(), 60);
        assert_eq!(c.frame_interval_us(), 16_667);
    }
}
