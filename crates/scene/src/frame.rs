//! Frames: time-sampled views of a scene, queried region-by-region.
//!
//! A [`Frame`] does not hold pixels. It holds the object layout at a capture instant and
//! exposes [`Frame::region_content`]: given any pixel rectangle, it reports the spatial
//! complexity, motion and object coverage of that region. The codec simulator queries it
//! per CTU; the CLIP-like patch encoder queries it per patch; the MLLM accuracy model
//! queries it per evidence region. All consumers therefore observe a mutually consistent
//! content model.

use crate::concept::Concept;
use crate::geometry::{GridDims, Rect};
use crate::object::SceneObject;
use crate::scene::Scene;
use serde::{Deserialize, Serialize};

/// Per-object layout at a capture instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectPlacement {
    /// The object id (refers back into the scene).
    pub object_id: u32,
    /// Where the object is at this frame's capture time.
    pub region: Rect,
}

/// Aggregated content descriptor for an arbitrary pixel region of a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionContent {
    /// Area-weighted spatial complexity in `[0, 1]`.
    pub complexity: f64,
    /// Area-weighted motion magnitude in `[0, 1]`.
    pub motion: f64,
    /// Area-weighted fine-detail level in `[0, 1]`.
    pub detail: f64,
    /// Coverage of the region by each overlapping object: `(object_id, fraction)` with
    /// fractions in `[0, 1]` relative to the region's own area.
    pub object_coverage: Vec<(u32, f64)>,
    /// Fraction of the region that is background (no object).
    pub background_fraction: f64,
}

impl RegionContent {
    /// An all-background descriptor, the natural initial state for reusable buffers passed
    /// to [`Frame::region_content_into`].
    pub fn empty() -> Self {
        Self {
            complexity: 0.0,
            motion: 0.0,
            detail: 0.0,
            object_coverage: Vec::new(),
            background_fraction: 1.0,
        }
    }

    /// Coverage fraction of a specific object in this region.
    pub fn coverage_of(&self, object_id: u32) -> f64 {
        self.object_coverage
            .iter()
            .find(|(id, _)| *id == object_id)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }

    /// True when any object covers at least `min_fraction` of the region.
    pub fn has_object_coverage(&self, min_fraction: f64) -> bool {
        self.object_coverage.iter().any(|(_, f)| *f >= min_fraction)
    }
}

/// A captured frame: object layout plus references to scene-wide content parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Sequential frame index within its clip (0-based).
    pub index: u64,
    /// Capture timestamp in microseconds since the start of the clip.
    ///
    /// MLLM positional encoding uses this value, *not* the network arrival time — which is
    /// exactly why jitter does not affect MLLM perception (§2.1).
    pub capture_ts_us: u64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Background complexity copied from the scene.
    pub background_complexity: f64,
    /// Background motion copied from the scene.
    pub background_motion: f64,
    /// Background concepts copied from the scene.
    pub background_concepts: Vec<(Concept, f64)>,
    /// Snapshot of every object's placement at the capture time.
    pub placements: Vec<ObjectPlacement>,
    /// Full object descriptions (cloned from the scene so a frame is self-contained).
    pub objects: Vec<SceneObject>,
}

impl Frame {
    /// Samples `scene` at `t_secs`, producing the frame with the given index and timestamp.
    pub fn sample(scene: &Scene, index: u64, capture_ts_us: u64, t_secs: f64) -> Self {
        let placements = scene
            .objects
            .iter()
            .map(|o| ObjectPlacement {
                object_id: o.id,
                region: o.region_at(t_secs, scene.width, scene.height),
            })
            .collect();
        Frame {
            index,
            capture_ts_us,
            width: scene.width,
            height: scene.height,
            background_complexity: scene.background_complexity,
            background_motion: scene.background_motion,
            background_concepts: scene.background_concepts.clone(),
            placements,
            objects: scene.objects.clone(),
        }
    }

    /// Total number of pixels.
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// The full-frame rectangle.
    pub fn rect(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Looks up an object description carried by this frame.
    pub fn object(&self, id: u32) -> Option<&SceneObject> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// The placement of an object at this frame's capture time.
    pub fn placement(&self, id: u32) -> Option<&ObjectPlacement> {
        self.placements.iter().find(|p| p.object_id == id)
    }

    /// Computes the aggregated content descriptor for an arbitrary region.
    ///
    /// Complexity/motion/detail are the area-weighted mixture of background and overlapping
    /// objects. Overlap between objects is resolved additively then clamped — good enough
    /// for the block-level R-D and perception models that consume it.
    pub fn region_content(&self, region: &Rect) -> RegionContent {
        let mut out = RegionContent {
            complexity: 0.0,
            motion: 0.0,
            detail: 0.0,
            object_coverage: Vec::new(),
            background_fraction: 1.0,
        };
        self.region_content_into(region, &mut out);
        out
    }

    /// [`Frame::region_content`] into a caller-owned buffer, so per-block/per-patch loops
    /// (the encoder's CTU walk, the CLIP patch walk) stay allocation-free after warmup.
    pub fn region_content_into(&self, region: &Rect, out: &mut RegionContent) {
        out.object_coverage.clear();
        let region = region.intersect(&self.rect());
        if region.is_empty() {
            out.complexity = 0.0;
            out.motion = 0.0;
            out.detail = 0.0;
            out.background_fraction = 1.0;
            return;
        }
        let mut covered_total = 0.0_f64;
        let mut complexity = 0.0_f64;
        let mut motion = 0.0_f64;
        let mut detail = 0.0_f64;
        for placement in &self.placements {
            let frac = region.coverage_by(&placement.region);
            if frac <= 0.0 {
                continue;
            }
            let Some(obj) = self.object(placement.object_id) else {
                continue;
            };
            out.object_coverage.push((placement.object_id, frac));
            covered_total += frac;
            complexity += frac * obj.texture_complexity;
            motion += frac * obj.motion;
            detail += frac * obj.detail;
        }
        let covered = covered_total.min(1.0);
        let background_fraction = (1.0 - covered).max(0.0);
        complexity += background_fraction * self.background_complexity;
        motion += background_fraction * self.background_motion;
        // Background carries essentially no chat-relevant detail.
        out.complexity = complexity.clamp(0.0, 1.0);
        out.motion = motion.clamp(0.0, 1.0);
        out.detail = detail.clamp(0.0, 1.0);
        out.background_fraction = background_fraction;
    }

    /// Computes [`RegionContent`] for every cell of a regular grid (row-major order).
    pub fn grid_content(&self, cell: u32) -> (GridDims, Vec<RegionContent>) {
        let dims = GridDims::for_frame(self.width, self.height, cell);
        let mut out = Vec::with_capacity(dims.len());
        for row in 0..dims.rows {
            for col in 0..dims.cols {
                let rect = dims.cell_rect(row, col, self.width, self.height);
                out.push(self.region_content(&rect));
            }
        }
        (dims, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_scene() -> Scene {
        let mut s = Scene::new("t", 640, 480).with_background(0.2, 0.1, vec![(Concept::new("court"), 1.0)]);
        s.add_object(
            SceneObject::new(1, "scoreboard", Rect::new(0, 0, 320, 240))
                .with_concept("scoreboard", 1.0)
                .with_detail(0.9)
                .with_texture(0.8),
        );
        s.add_object(
            SceneObject::new(2, "player", Rect::new(320, 240, 320, 240))
                .with_concept("player", 1.0)
                .with_detail(0.3)
                .with_texture(0.5)
                .with_motion(0.7, (0.0, 0.0)),
        );
        s
    }

    #[test]
    fn full_coverage_region_matches_object() {
        let f = Frame::sample(&test_scene(), 0, 0, 0.0);
        let c = f.region_content(&Rect::new(0, 0, 320, 240));
        assert!((c.coverage_of(1) - 1.0).abs() < 1e-12);
        assert!((c.complexity - 0.8).abs() < 1e-9);
        assert!((c.detail - 0.9).abs() < 1e-9);
        assert!(c.background_fraction.abs() < 1e-12);
    }

    #[test]
    fn background_only_region() {
        let f = Frame::sample(&test_scene(), 0, 0, 0.0);
        let c = f.region_content(&Rect::new(320, 0, 320, 240));
        assert!(c.object_coverage.is_empty());
        assert!((c.complexity - 0.2).abs() < 1e-9);
        assert!((c.background_fraction - 1.0).abs() < 1e-12);
        assert_eq!(c.detail, 0.0);
    }

    #[test]
    fn mixed_region_is_weighted() {
        let f = Frame::sample(&test_scene(), 0, 0, 0.0);
        // Straddles the scoreboard (left half) and background (right half).
        let c = f.region_content(&Rect::new(160, 0, 320, 240));
        assert!((c.coverage_of(1) - 0.5).abs() < 1e-9);
        let expected = 0.5 * 0.8 + 0.5 * 0.2;
        assert!((c.complexity - expected).abs() < 1e-9);
    }

    #[test]
    fn out_of_frame_region_is_empty() {
        let f = Frame::sample(&test_scene(), 0, 0, 0.0);
        let c = f.region_content(&Rect::new(10_000, 10_000, 64, 64));
        assert_eq!(c.background_fraction, 1.0);
        assert_eq!(c.complexity, 0.0);
    }

    #[test]
    fn grid_content_covers_all_cells() {
        let f = Frame::sample(&test_scene(), 0, 0, 0.0);
        let (dims, cells) = f.grid_content(64);
        assert_eq!(cells.len(), dims.len());
        assert_eq!(dims.cols, 10);
        assert_eq!(dims.rows, 8 /* 480/64 = 7.5 -> 8 */);
        // Top-left cell fully inside scoreboard.
        assert!((cells[0].coverage_of(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frame_is_self_contained() {
        let scene = test_scene();
        let f = Frame::sample(&scene, 3, 50_000, 0.05);
        assert_eq!(f.index, 3);
        assert_eq!(f.capture_ts_us, 50_000);
        assert_eq!(f.objects.len(), scene.objects.len());
        assert!(f.object(1).is_some());
        assert!(f.placement(2).is_some());
    }
}
