//! Scene templates: parametric generators for the scene families used throughout the paper.
//!
//! Each template builds a [`Scene`] whose *parameters* (scores, counts, attributes, text)
//! are drawn from a seeded RNG, so a corpus of hundreds of distinct-but-plausible clips can
//! be generated deterministically. The families mirror the paper's running examples:
//!
//! * [`basketball_game`] — the Figure 4 / Figure 10 scenario (scoreboard, jersey logo,
//!   spectators, a player covering his mouth);
//! * [`dog_park`] — the Figure 5 scenario (dog ears, grass implying the season);
//! * [`lecture_slides`] — text-rich content, DeViBench's dominant category;
//! * [`cooking_show`] — attribute/action-heavy content;
//! * [`street_scene`] — counting/spatial content with small text (license plates).

use crate::concept::Concept;
use crate::fact::{FactCategory, SceneFact};
use crate::geometry::Rect;
use crate::object::SceneObject;
use crate::scene::Scene;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The canvas used by all templates: 1080p, the paper's example capture resolution.
pub const CANVAS_W: u32 = 1920;
/// Canvas height, see [`CANVAS_W`].
pub const CANVAS_H: u32 = 1080;

/// Identifiers of the built-in templates, in corpus rotation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateKind {
    /// Basketball game with scoreboard, players, spectators.
    Basketball,
    /// Dog in a park with grass and trees.
    DogPark,
    /// Lecture with a text slide and a lecturer.
    Lecture,
    /// Cooking show with chef, pan, ingredients and a recipe card.
    Cooking,
    /// Street scene with cars, pedestrians and a traffic light.
    Street,
}

impl TemplateKind {
    /// All template kinds in rotation order.
    pub const ALL: [TemplateKind; 5] = [
        TemplateKind::Basketball,
        TemplateKind::DogPark,
        TemplateKind::Lecture,
        TemplateKind::Cooking,
        TemplateKind::Street,
    ];

    /// Builds a scene of this kind from a seed.
    pub fn build(self, seed: u64) -> Scene {
        match self {
            TemplateKind::Basketball => basketball_game(seed),
            TemplateKind::DogPark => dog_park(seed),
            TemplateKind::Lecture => lecture_slides(seed),
            TemplateKind::Cooking => cooking_show(seed),
            TemplateKind::Street => street_scene(seed),
        }
    }
}

fn rng(seed: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(stream))
}

fn pick<'a, T>(r: &mut ChaCha8Rng, items: &'a [T]) -> &'a T {
    &items[r.gen_range(0..items.len())]
}

/// Builds numeric distractors around a correct integer answer.
fn numeric_distractors(r: &mut ChaCha8Rng, answer: i64) -> Vec<String> {
    let mut out = Vec::new();
    let mut used = vec![answer];
    while out.len() < 3 {
        let delta = r.gen_range(1..=4) * if r.gen_bool(0.5) { 1 } else { -1 };
        let v = (answer + delta).max(0);
        if !used.contains(&v) {
            used.push(v);
            out.push(v.to_string());
        }
    }
    out
}

/// Basketball game: the paper's Figure 4 / Figure 10 scenario.
///
/// Contains a scoreboard (text-rich), a star player with a jersey logo (attribute), a player
/// covering his mouth (coarse action), and a row of spectators (counting).
pub fn basketball_game(seed: u64) -> Scene {
    let mut r = rng(seed, 1);
    let mut s = Scene::new("basketball-game", CANVAS_W, CANVAS_H).with_background(
        0.35,
        0.15,
        vec![
            (Concept::new("court"), 0.8),
            (Concept::new("basketball-game"), 0.6),
        ],
    );

    let home: i64 = r.gen_range(55..115);
    let away: i64 = r.gen_range(55..115);
    let score_text = format!("HOME {home} - {away} AWAY");
    let scoreboard_id = s.add_object(
        SceneObject::new(1, "scoreboard", Rect::new(60, 40, 420, 110))
            .with_concept("scoreboard", 1.0)
            .with_concept("score", 0.9)
            .with_concept("text", 0.8)
            .with_concept("number", 0.7)
            .with_detail(0.92)
            .with_texture(0.75)
            .with_text(score_text.clone())
            .with_attribute("home-score", home.to_string())
            .with_attribute("away-score", away.to_string()),
    );

    let logos = ["FALCON", "ORBIT", "NIMBUS", "VERTEX", "PIONEER"];
    let logo = pick(&mut r, &logos).to_string();
    let jersey_colors = ["red", "blue", "white", "green", "yellow"];
    let jersey_color = pick(&mut r, &jersey_colors).to_string();
    let player_id = s.add_object(
        SceneObject::new(2, "star-player", Rect::new(800, 300, 280, 620))
            .with_concept("player", 1.0)
            .with_concept("person", 0.9)
            .with_concept("jersey", 0.7)
            .with_detail(0.35)
            .with_texture(0.55)
            .with_motion(0.7, (190.0, 40.0))
            .with_attribute("jersey-color", jersey_color.clone())
            .with_attribute("action", "dribbling the ball"),
    );
    let logo_id = s.add_object(
        SceneObject::new(3, "jersey-logo", Rect::new(880, 420, 90, 60))
            .with_concept("logo", 1.0)
            .with_concept("jersey", 0.8)
            .with_concept("text", 0.7)
            .with_concept("brand", 0.7)
            .with_detail(0.88)
            .with_texture(0.6)
            .with_motion(0.7, (190.0, 40.0))
            .with_text(logo.clone())
            .with_attribute("brand", logo.clone()),
    );

    let covering_id = s.add_object(
        SceneObject::new(4, "player-covering-mouth", Rect::new(1350, 350, 260, 600))
            .with_concept("player", 0.9)
            .with_concept("person", 0.9)
            .with_concept("mouth", 0.7)
            .with_concept("face", 0.6)
            .with_detail(0.3)
            .with_texture(0.5)
            .with_motion(0.4, (-60.0, 0.0))
            .with_attribute("action", "covering his mouth"),
    );

    let spectators: i64 = r.gen_range(3..9);
    let spectators_id = s.add_object(
        SceneObject::new(5, "spectators", Rect::new(200, 170, 1500, 140))
            .with_concept("spectators", 1.0)
            .with_concept("crowd", 0.9)
            .with_concept("person", 0.6)
            .with_detail(0.8)
            .with_texture(0.7)
            .with_motion(0.1, (0.0, 0.0))
            .with_attribute("count", spectators.to_string()),
    );

    // --- facts ---
    s.add_fact(
        SceneFact::new(
            FactCategory::TextRich,
            "Could you tell me the present score of the game?",
            format!("{home} - {away}"),
            vec![scoreboard_id],
            0.55,
        )
        .with_distractors(vec![
            format!("{} - {}", home - 2, away),
            format!("{} - {}", home, away + 3),
            format!("{} - {}", home + 1, away - 1),
        ])
        .with_query_concepts(["score", "scoreboard", "basketball-game"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "What logo is seen on the jersey of the player covering his mouth?",
            logo.clone(),
            vec![logo_id, covering_id],
            0.85,
        )
        .with_distractors(
            logos
                .iter()
                .filter(|l| **l != logo)
                .take(3)
                .map(|l| l.to_string()),
        )
        .with_query_concepts(["logo", "jersey", "player"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ActionPerception,
            "What is the player on the right doing?",
            "He is covering his mouth",
            vec![covering_id],
            0.2,
        )
        .with_distractors([
            "He is shooting the ball",
            "He is tying his shoes",
            "He is arguing with the referee",
        ])
        .with_query_concepts(["player", "action"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::Counting,
            "How many spectators can be seen in the front row?",
            spectators.to_string(),
            vec![spectators_id],
            0.8,
        )
        .with_distractors(numeric_distractors(&mut r, spectators))
        .with_query_concepts(["spectators", "counting", "crowd"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "What color is the star player's jersey?",
            jersey_color.clone(),
            vec![player_id],
            0.3,
        )
        .with_distractors(
            jersey_colors
                .iter()
                .filter(|c| **c != jersey_color)
                .take(3)
                .map(|c| c.to_string()),
        )
        .with_query_concepts(["jersey", "color", "player"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ObjectPerception,
            "Is there a scoreboard visible in the video?",
            "Yes",
            vec![scoreboard_id],
            0.1,
        )
        .with_distractors(["No", "Only a shot clock", "Only an advertisement board"])
        .with_query_concepts(["scoreboard"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::SpatialUnderstanding,
            "Where is the scoreboard relative to the players?",
            "Above and to the left",
            vec![scoreboard_id, player_id],
            0.25,
        )
        .with_distractors([
            "Below the players",
            "To the right of the players",
            "Behind the spectators",
        ])
        .with_query_concepts(["scoreboard", "position", "spatial"]),
    );
    s
}

/// Dog in a park: the paper's Figure 5 scenario (ear type, season inference from grass).
pub fn dog_park(seed: u64) -> Scene {
    let mut r = rng(seed, 2);
    let mut s = Scene::new("dog-park", CANVAS_W, CANVAS_H).with_background(
        0.3,
        0.08,
        vec![(Concept::new("park"), 0.8), (Concept::new("sky"), 0.4)],
    );

    let ear_types = ["floppy", "erect"];
    let ear = pick(&mut r, &ear_types).to_string();
    let fur_colors = ["brown", "black", "white", "golden"];
    let fur = pick(&mut r, &fur_colors).to_string();

    let dog_id = s.add_object(
        SceneObject::new(1, "dog", Rect::new(700, 520, 480, 380))
            .with_concept("dog", 1.0)
            .with_concept("animal", 0.9)
            .with_concept("fur", 0.5)
            .with_detail(0.45)
            .with_texture(0.6)
            .with_motion(0.6, (150.0, 20.0))
            .with_attribute("fur-color", fur.clone())
            .with_attribute("action", "running across the lawn"),
    );
    let head_id = s.add_object(
        SceneObject::new(2, "dog-head", Rect::new(1060, 520, 140, 130))
            .with_concept("dog-head", 1.0)
            .with_concept("ears", 0.9)
            .with_concept("dog", 0.8)
            .with_detail(0.82)
            .with_texture(0.65)
            .with_motion(0.6, (150.0, 20.0))
            .with_attribute("ear-type", ear.clone()),
    );
    let seasons = [
        ("spring", "lush green"),
        ("summer", "tall green"),
        ("autumn", "yellowing"),
        ("winter", "sparse brown"),
    ];
    let (season, grass_state) = *pick(&mut r, &seasons);
    let grass_id = s.add_object(
        SceneObject::new(3, "grass", Rect::new(0, 760, 1920, 320))
            .with_concept("grass", 1.0)
            .with_concept("lawn", 0.9)
            .with_concept("park", 0.6)
            .with_concept("season", 0.45)
            .with_detail(0.55)
            .with_texture(0.7)
            .with_motion(0.05, (0.0, 0.0))
            .with_attribute("state", grass_state.to_string())
            .with_attribute("season", season.to_string()),
    );
    let tree_id = s.add_object(
        SceneObject::new(4, "tree", Rect::new(120, 120, 380, 640))
            .with_concept("tree", 1.0)
            .with_concept("park", 0.6)
            .with_concept("season", 0.4)
            .with_detail(0.35)
            .with_texture(0.6)
            .with_attribute("season", season.to_string()),
    );

    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "Is the dog in the video erect-eared or floppy-eared?",
            format!("{ear}-eared"),
            vec![head_id],
            0.78,
        )
        .with_distractors(vec![
            format!("{}-eared", if ear == "floppy" { "erect" } else { "floppy" }),
            "It has no visible ears".to_string(),
            "It is wearing a hat".to_string(),
        ])
        .with_query_concepts(["dog", "ears", "dog-head"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "What color is the dog's fur?",
            fur.clone(),
            vec![dog_id],
            0.4,
        )
        .with_distractors(
            fur_colors
                .iter()
                .filter(|c| **c != fur)
                .take(3)
                .map(|c| c.to_string()),
        )
        .with_query_concepts(["dog", "fur", "color"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ActionPerception,
            "What is the dog doing in the video?",
            "Running across the lawn",
            vec![dog_id],
            0.25,
        )
        .multi_frame()
        .with_distractors(["Sleeping under the tree", "Digging a hole", "Drinking water"])
        .with_query_concepts(["dog", "action"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "Infer what season it might be in the video",
            season.to_string(),
            vec![grass_id, tree_id],
            0.6,
        )
        .with_distractors(
            seasons
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| *n != season)
                .take(3)
                .map(|n| n.to_string()),
        )
        .with_query_concepts(["season", "grass", "tree"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ObjectPerception,
            "Which animal appears in the video?",
            "A dog",
            vec![dog_id],
            0.12,
        )
        .with_distractors(["A cat", "A rabbit", "A horse"])
        .with_query_concepts(["dog", "animal"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::SpatialUnderstanding,
            "Is the tree to the left or to the right of the dog?",
            "To the left",
            vec![tree_id, dog_id],
            0.2,
        )
        .with_distractors(["To the right", "Behind the camera", "Directly above the dog"])
        .with_query_concepts(["tree", "dog", "position"]),
    );
    s
}

/// Lecture slides: dominated by small text, the most quality-sensitive family.
pub fn lecture_slides(seed: u64) -> Scene {
    let mut r = rng(seed, 3);
    let mut s = Scene::new("lecture-slides", CANVAS_W, CANVAS_H).with_background(
        0.15,
        0.03,
        vec![(Concept::new("lecture"), 0.7), (Concept::new("wall"), 0.5)],
    );
    let topics = [
        "Congestion Control",
        "Transformer Attention",
        "Photosynthesis",
        "Supply Chains",
        "Roman History",
    ];
    let topic = pick(&mut r, &topics).to_string();
    let bullet_counts: i64 = r.gen_range(3..7);
    let slide_number: i64 = r.gen_range(2..40);
    let slide_id = s.add_object(
        SceneObject::new(1, "slide", Rect::new(250, 90, 1300, 740))
            .with_concept("slide", 1.0)
            .with_concept("text", 0.95)
            .with_concept("title", 0.7)
            .with_concept("diagram", 0.5)
            .with_detail(0.95)
            .with_texture(0.8)
            .with_text(format!("{topic} — slide {slide_number}"))
            .with_attribute("title", topic.clone())
            .with_attribute("bullet-count", bullet_counts.to_string())
            .with_attribute("slide-number", slide_number.to_string()),
    );
    let lecturer_id = s.add_object(
        SceneObject::new(2, "lecturer", Rect::new(1580, 420, 280, 640))
            .with_concept("lecturer", 1.0)
            .with_concept("person", 0.9)
            .with_detail(0.3)
            .with_texture(0.5)
            .with_motion(0.3, (30.0, 0.0))
            .with_attribute("action", "pointing at the slide"),
    );

    s.add_fact(
        SceneFact::new(
            FactCategory::TextRich,
            "What is the title written on the slide?",
            topic.clone(),
            vec![slide_id],
            0.9,
        )
        .with_distractors(
            topics
                .iter()
                .filter(|t| **t != topic)
                .take(3)
                .map(|t| t.to_string()),
        )
        .with_query_concepts(["slide", "title", "text"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::TextRich,
            "What slide number is currently displayed?",
            slide_number.to_string(),
            vec![slide_id],
            0.92,
        )
        .with_distractors(numeric_distractors(&mut r, slide_number))
        .with_query_concepts(["slide", "number", "text"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::Counting,
            "How many bullet points are on the slide?",
            bullet_counts.to_string(),
            vec![slide_id],
            0.85,
        )
        .with_distractors(numeric_distractors(&mut r, bullet_counts))
        .with_query_concepts(["slide", "counting", "text"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ActionPerception,
            "What is the lecturer doing?",
            "Pointing at the slide",
            vec![lecturer_id],
            0.25,
        )
        .with_distractors([
            "Writing on a whiteboard",
            "Sitting at a desk",
            "Handing out papers",
        ])
        .with_query_concepts(["lecturer", "action"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ObjectPerception,
            "Is there a projected slide visible?",
            "Yes",
            vec![slide_id],
            0.1,
        )
        .with_distractors(["No", "Only a blackboard", "Only a poster"])
        .with_query_concepts(["slide"]),
    );
    s
}

/// Cooking show: action- and attribute-heavy with a small recipe card (text).
pub fn cooking_show(seed: u64) -> Scene {
    let mut r = rng(seed, 4);
    let mut s = Scene::new("cooking-show", CANVAS_W, CANVAS_H).with_background(
        0.4,
        0.1,
        vec![(Concept::new("kitchen"), 0.9), (Concept::new("cooking"), 0.6)],
    );
    let dishes = [
        "tomato pasta",
        "vegetable stir-fry",
        "mushroom omelette",
        "pancakes",
    ];
    let dish = pick(&mut r, &dishes).to_string();
    let ingredient_count: i64 = r.gen_range(3..8);
    let chef_id = s.add_object(
        SceneObject::new(1, "chef", Rect::new(760, 240, 400, 760))
            .with_concept("chef", 1.0)
            .with_concept("person", 0.9)
            .with_concept("cooking", 0.8)
            .with_detail(0.3)
            .with_texture(0.5)
            .with_motion(0.5, (40.0, 0.0))
            .with_attribute("action", "stirring the pan"),
    );
    let pan_id = s.add_object(
        SceneObject::new(2, "pan", Rect::new(900, 820, 360, 200))
            .with_concept("pan", 1.0)
            .with_concept("stove", 0.7)
            .with_concept("cooking", 0.7)
            .with_detail(0.45)
            .with_texture(0.55)
            .with_motion(0.3, (0.0, 0.0))
            .with_attribute("content", dish.clone()),
    );
    let ingredients_id = s.add_object(
        SceneObject::new(3, "ingredients", Rect::new(200, 840, 520, 200))
            .with_concept("ingredient", 1.0)
            .with_concept("food", 0.9)
            .with_concept("vegetable", 0.6)
            .with_detail(0.75)
            .with_texture(0.7)
            .with_attribute("count", ingredient_count.to_string()),
    );
    let recipe_id = s.add_object(
        SceneObject::new(4, "recipe-card", Rect::new(1500, 120, 340, 240))
            .with_concept("recipe", 1.0)
            .with_concept("text", 0.9)
            .with_detail(0.9)
            .with_texture(0.75)
            .with_text(format!("Recipe: {dish}"))
            .with_attribute("dish", dish.clone()),
    );

    s.add_fact(
        SceneFact::new(
            FactCategory::TextRich,
            "What dish name is written on the recipe card?",
            dish.clone(),
            vec![recipe_id],
            0.88,
        )
        .with_distractors(
            dishes
                .iter()
                .filter(|d| **d != dish)
                .take(3)
                .map(|d| d.to_string()),
        )
        .with_query_concepts(["recipe", "text"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::Counting,
            "How many different ingredients are laid out on the counter?",
            ingredient_count.to_string(),
            vec![ingredients_id],
            0.8,
        )
        .with_distractors(numeric_distractors(&mut r, ingredient_count))
        .with_query_concepts(["ingredient", "counting", "food"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ActionPerception,
            "What is the chef currently doing?",
            "Stirring the pan",
            vec![chef_id, pan_id],
            0.25,
        )
        .multi_frame()
        .with_distractors(["Chopping vegetables", "Washing dishes", "Plating the food"])
        .with_query_concepts(["chef", "cooking", "action"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ObjectPerception,
            "Is a frying pan visible on the stove?",
            "Yes",
            vec![pan_id],
            0.12,
        )
        .with_distractors(["No", "Only a pot", "Only an oven tray"])
        .with_query_concepts(["pan", "stove"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::SpatialUnderstanding,
            "Where is the recipe card relative to the chef?",
            "To the upper right",
            vec![recipe_id, chef_id],
            0.25,
        )
        .with_distractors(["To the lower left", "Directly behind the pan", "On the floor"])
        .with_query_concepts(["recipe", "chef", "position"]),
    );
    s
}

/// Street scene: small text (license plate), counting and spatial questions.
pub fn street_scene(seed: u64) -> Scene {
    let mut r = rng(seed, 5);
    let mut s = Scene::new("street-scene", CANVAS_W, CANVAS_H).with_background(
        0.45,
        0.2,
        vec![(Concept::new("street"), 0.9), (Concept::new("sky"), 0.3)],
    );
    let plate = format!(
        "{}{}-{}{}{}",
        (b'A' + r.gen_range(0..26u8)) as char,
        (b'A' + r.gen_range(0..26u8)) as char,
        r.gen_range(0..10),
        r.gen_range(0..10),
        r.gen_range(0..10),
    );
    let car_colors = ["red", "blue", "silver", "black", "white"];
    let car_color = pick(&mut r, &car_colors).to_string();
    let pedestrians: i64 = r.gen_range(2..7);
    let light_states = ["red", "green", "yellow"];
    let light = pick(&mut r, &light_states).to_string();

    let car_id = s.add_object(
        SceneObject::new(1, "car", Rect::new(300, 560, 700, 360))
            .with_concept("car", 1.0)
            .with_concept("street", 0.6)
            .with_detail(0.35)
            .with_texture(0.55)
            .with_motion(0.8, (260.0, 0.0))
            .with_attribute("color", car_color.clone()),
    );
    let plate_id = s.add_object(
        SceneObject::new(2, "license-plate", Rect::new(860, 820, 150, 60))
            .with_concept("license-plate", 1.0)
            .with_concept("text", 0.85)
            .with_concept("number", 0.8)
            .with_detail(0.95)
            .with_texture(0.7)
            .with_motion(0.8, (260.0, 0.0))
            .with_text(plate.clone())
            .with_attribute("plate", plate.clone()),
    );
    let pedestrians_id = s.add_object(
        SceneObject::new(3, "pedestrians", Rect::new(1200, 430, 600, 480))
            .with_concept("pedestrian", 1.0)
            .with_concept("person", 0.9)
            .with_detail(0.7)
            .with_texture(0.65)
            .with_motion(0.4, (-50.0, 0.0))
            .with_attribute("count", pedestrians.to_string()),
    );
    let light_id = s.add_object(
        SceneObject::new(4, "traffic-light", Rect::new(1100, 120, 90, 260))
            .with_concept("traffic-light", 1.0)
            .with_concept("color", 0.7)
            .with_detail(0.5)
            .with_texture(0.4)
            .with_attribute("state", light.clone()),
    );

    s.add_fact(
        SceneFact::new(
            FactCategory::TextRich,
            "What is written on the car's license plate?",
            plate.clone(),
            vec![plate_id],
            0.95,
        )
        .with_distractors(vec![
            format!("{}X", &plate[..plate.len() - 1]),
            "KL-402".to_string(),
            "BN-773".to_string(),
        ])
        .with_query_concepts(["license-plate", "text", "car"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::Counting,
            "How many pedestrians are waiting at the crossing?",
            pedestrians.to_string(),
            vec![pedestrians_id],
            0.78,
        )
        .with_distractors(numeric_distractors(&mut r, pedestrians))
        .with_query_concepts(["pedestrian", "counting"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "What color is the car driving past?",
            car_color.clone(),
            vec![car_id],
            0.3,
        )
        .with_distractors(
            car_colors
                .iter()
                .filter(|c| **c != car_color)
                .take(3)
                .map(|c| c.to_string()),
        )
        .with_query_concepts(["car", "color"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::AttributePerception,
            "What state is the traffic light showing?",
            light.clone(),
            vec![light_id],
            0.45,
        )
        .with_distractors(
            light_states
                .iter()
                .filter(|c| **c != light)
                .map(|c| c.to_string())
                .chain(["off".to_string()])
                .take(3),
        )
        .with_query_concepts(["traffic-light", "color"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::ActionPerception,
            "What is the car doing in the clip?",
            "Driving from left to right",
            vec![car_id],
            0.2,
        )
        .multi_frame()
        .with_distractors([
            "Parking in reverse",
            "Standing still",
            "Driving from right to left",
        ])
        .with_query_concepts(["car", "motion", "action"]),
    );
    s.add_fact(
        SceneFact::new(
            FactCategory::SpatialUnderstanding,
            "Are the pedestrians to the left or right of the car?",
            "To the right",
            vec![pedestrians_id, car_id],
            0.25,
        )
        .with_distractors(["To the left", "On top of the car", "Behind the traffic light"])
        .with_query_concepts(["pedestrian", "car", "position"]),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_validate() {
        for kind in TemplateKind::ALL {
            for seed in 0..5u64 {
                let s = kind.build(seed);
                let problems = s.validate();
                assert!(problems.is_empty(), "{kind:?} seed {seed}: {problems:?}");
                assert!(!s.facts.is_empty());
                assert!(!s.objects.is_empty());
            }
        }
    }

    #[test]
    fn templates_are_deterministic() {
        for kind in TemplateKind::ALL {
            assert_eq!(kind.build(42), kind.build(42), "{kind:?} not deterministic");
        }
    }

    #[test]
    fn different_seeds_vary_parameters() {
        let a = basketball_game(1);
        let b = basketball_game(2);
        // At least one of the scoreboard attributes should differ across many seeds.
        let differs = (0..20u64).any(|s| {
            basketball_game(s).object(1).unwrap().attribute("home-score")
                != basketball_game(s + 100)
                    .object(1)
                    .unwrap()
                    .attribute("home-score")
        });
        assert!(differs || a != b);
    }

    #[test]
    fn every_template_has_quality_sensitive_and_insensitive_facts() {
        for kind in TemplateKind::ALL {
            let s = kind.build(7);
            let sensitive = s.quality_sensitive_facts(0.7).len();
            let total = s.facts.len();
            assert!(sensitive >= 1, "{kind:?} lacks quality-sensitive facts");
            assert!(sensitive < total, "{kind:?} has only quality-sensitive facts");
        }
    }

    #[test]
    fn every_template_covers_multiple_categories() {
        for kind in TemplateKind::ALL {
            let s = kind.build(3);
            let cats: std::collections::BTreeSet<_> = s.facts.iter().map(|f| f.category).collect();
            assert!(cats.len() >= 4, "{kind:?} covers only {cats:?}");
        }
    }

    #[test]
    fn facts_distractors_do_not_contain_answer() {
        for kind in TemplateKind::ALL {
            for seed in 0..10u64 {
                let s = kind.build(seed);
                for f in &s.facts {
                    assert!(
                        !f.distractors.contains(&f.answer),
                        "{kind:?} seed {seed}: answer leaked into distractors for {:?}",
                        f.question
                    );
                    assert!(f.distractors.len() >= 3);
                }
            }
        }
    }
}
