//! Scene objects: the atomic unit of ground truth.
//!
//! An object is a rectangular region with semantics (concepts), encoding cost drivers
//! (texture complexity, motion) and an understanding-difficulty driver (`detail`). The
//! `detail` level is the key quantity for the paper's argument: *detail-rich* content (text
//! on a scoreboard, a small logo, individual spectators) needs high decoded quality to be
//! understood by the MLLM, whereas coarse content (a player's overall pose) survives heavy
//! compression (§2.3, Figure 4).

use crate::concept::Concept;
use crate::geometry::Rect;
use serde::{Deserialize, Serialize};

/// A labelled object inside a [`crate::Scene`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Stable identifier, unique within its scene.
    pub id: u32,
    /// Human-readable name, e.g. `"scoreboard"`.
    pub name: String,
    /// Weighted semantic labels; weights in `[0, 1]`, the dominant concept first.
    pub concepts: Vec<(Concept, f64)>,
    /// Position and size at scene time zero, in pixels.
    pub region: Rect,
    /// How much fine-grained detail the object carries, in `[0, 1]`.
    ///
    /// 0.9+ for small text, ~0.6 for logos and faces, ~0.3 for body pose, ~0.1 for sky.
    /// Questions about high-detail objects are quality-sensitive (DeViBench targets these).
    pub detail: f64,
    /// Spatial texture complexity in `[0, 1]`; drives bits-per-block in the codec R-D model.
    pub texture_complexity: f64,
    /// Temporal motion magnitude in `[0, 1]`; drives inter-frame residual cost.
    pub motion: f64,
    /// Velocity in pixels per second (dx, dy); the object translates linearly and bounces
    /// off the frame borders.
    pub velocity: (f64, f64),
    /// Text carried by the object (scoreboard content, sign, slide bullet), if any.
    pub text_content: Option<String>,
    /// Free-form attributes usable as QA answers (e.g. `("ear-type", "floppy")`).
    pub attributes: Vec<(String, String)>,
}

impl SceneObject {
    /// Creates an object with neutral defaults; use the builder-style methods to refine it.
    pub fn new(id: u32, name: impl Into<String>, region: Rect) -> Self {
        Self {
            id,
            name: name.into(),
            concepts: Vec::new(),
            region,
            detail: 0.3,
            texture_complexity: 0.3,
            motion: 0.0,
            velocity: (0.0, 0.0),
            text_content: None,
            attributes: Vec::new(),
        }
    }

    /// Adds a weighted concept label.
    pub fn with_concept(mut self, concept: impl Into<Concept>, weight: f64) -> Self {
        self.concepts.push((concept.into(), weight.clamp(0.0, 1.0)));
        self
    }

    /// Sets the detail level.
    pub fn with_detail(mut self, detail: f64) -> Self {
        self.detail = detail.clamp(0.0, 1.0);
        self
    }

    /// Sets the texture complexity.
    pub fn with_texture(mut self, complexity: f64) -> Self {
        self.texture_complexity = complexity.clamp(0.0, 1.0);
        self
    }

    /// Sets the motion magnitude and velocity.
    pub fn with_motion(mut self, motion: f64, velocity: (f64, f64)) -> Self {
        self.motion = motion.clamp(0.0, 1.0);
        self.velocity = velocity;
        self
    }

    /// Attaches text content (marks the object as text-rich).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text_content = Some(text.into());
        self
    }

    /// Attaches a named attribute (e.g. `("ear-type", "floppy")`).
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Looks up an attribute value by key.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The object's position at time `t` seconds, bouncing inside a `width x height` canvas.
    ///
    /// Linear motion with elastic reflection keeps objects on screen for arbitrarily long
    /// clips while remaining deterministic and cheap to evaluate at any time offset.
    pub fn region_at(&self, t_secs: f64, width: u32, height: u32) -> Rect {
        if self.velocity == (0.0, 0.0) || t_secs == 0.0 {
            return self.region.clamped_to(width, height);
        }
        let travel_x = width.saturating_sub(self.region.w).max(1) as f64;
        let travel_y = height.saturating_sub(self.region.h).max(1) as f64;
        let x = bounce(self.region.x as f64 + self.velocity.0 * t_secs, travel_x);
        let y = bounce(self.region.y as f64 + self.velocity.1 * t_secs, travel_y);
        Rect::new(x.round() as i64, y.round() as i64, self.region.w, self.region.h).clamped_to(width, height)
    }

    /// The dominant concept (highest weight), if any.
    pub fn dominant_concept(&self) -> Option<&Concept> {
        self.concepts
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(c, _)| c)
    }

    /// True when the object carries text content or a `text`-family concept.
    pub fn is_text_rich(&self) -> bool {
        self.text_content.is_some()
            || self
                .concepts
                .iter()
                .any(|(c, w)| *w > 0.5 && (c.name() == "text" || c.name() == "number"))
    }
}

/// Reflects a coordinate into `[0, travel]` (triangle-wave / elastic bounce).
fn bounce(pos: f64, travel: f64) -> f64 {
    if travel <= 0.0 {
        return 0.0;
    }
    let period = 2.0 * travel;
    let mut p = pos % period;
    if p < 0.0 {
        p += period;
    }
    if p > travel {
        period - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> SceneObject {
        SceneObject::new(1, "scoreboard", Rect::new(100, 50, 300, 120))
            .with_concept("scoreboard", 1.0)
            .with_concept("text", 0.8)
            .with_detail(0.9)
            .with_texture(0.7)
            .with_text("HOME 78 - 74 AWAY")
            .with_attribute("home-score", "78")
    }

    #[test]
    fn builder_sets_fields() {
        let o = obj();
        assert_eq!(o.dominant_concept().unwrap().name(), "scoreboard");
        assert_eq!(o.attribute("home-score"), Some("78"));
        assert!(o.is_text_rich());
        assert!((o.detail - 0.9).abs() < 1e-12);
    }

    #[test]
    fn static_object_does_not_move() {
        let o = obj();
        assert_eq!(o.region_at(0.0, 1920, 1080), o.region_at(17.3, 1920, 1080));
    }

    #[test]
    fn moving_object_stays_in_canvas() {
        let o =
            SceneObject::new(2, "player", Rect::new(500, 400, 200, 400)).with_motion(0.8, (333.0, -140.0));
        for i in 0..200 {
            let t = i as f64 * 0.25;
            let r = o.region_at(t, 1920, 1080);
            assert!(r.x >= 0 && r.y >= 0, "t={t} r={r:?}");
            assert!(r.right() <= 1920 && r.bottom() <= 1080, "t={t} r={r:?}");
            assert_eq!(r.w, 200);
            assert_eq!(r.h, 400);
        }
    }

    #[test]
    fn bounce_is_triangle_wave() {
        assert!((bounce(0.0, 10.0) - 0.0).abs() < 1e-12);
        assert!((bounce(7.0, 10.0) - 7.0).abs() < 1e-12);
        assert!((bounce(13.0, 10.0) - 7.0).abs() < 1e-12);
        assert!((bounce(23.0, 10.0) - 3.0).abs() < 1e-12);
        assert!((bounce(-3.0, 10.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_weights() {
        let o = SceneObject::new(3, "x", Rect::new(0, 0, 10, 10))
            .with_concept("y", 3.0)
            .with_detail(-1.0);
        assert_eq!(o.concepts[0].1, 1.0);
        assert_eq!(o.detail, 0.0);
    }
}
