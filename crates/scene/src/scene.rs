//! A [`Scene`] is a static description of a shot: canvas size, background, objects and
//! ground-truth facts. Time evolution (object motion, content events) is handled by
//! [`crate::VideoSource`], which samples a scene into [`crate::Frame`]s.

use crate::concept::Concept;
use crate::fact::SceneFact;
use crate::geometry::Rect;
use crate::object::SceneObject;
use serde::{Deserialize, Serialize};

/// A complete synthetic scene with ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Short identifier, e.g. `"basketball-game"`.
    pub label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Background spatial complexity in `[0, 1]` (bits cost of non-object area).
    pub background_complexity: f64,
    /// Background motion in `[0, 1]` (e.g. camera shake, crowd microflutter).
    pub background_motion: f64,
    /// Concepts describing the background (e.g. `court`, `sky`).
    pub background_concepts: Vec<(Concept, f64)>,
    /// Foreground objects.
    pub objects: Vec<SceneObject>,
    /// Ground-truth facts about the scene.
    pub facts: Vec<SceneFact>,
}

impl Scene {
    /// Creates an empty scene on a `width x height` canvas.
    pub fn new(label: impl Into<String>, width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "scene canvas must be non-empty");
        Self {
            label: label.into(),
            width,
            height,
            background_complexity: 0.2,
            background_motion: 0.05,
            background_concepts: vec![(Concept::new("background"), 1.0)],
            objects: Vec::new(),
            facts: Vec::new(),
        }
    }

    /// Sets the background properties.
    pub fn with_background(mut self, complexity: f64, motion: f64, concepts: Vec<(Concept, f64)>) -> Self {
        self.background_complexity = complexity.clamp(0.0, 1.0);
        self.background_motion = motion.clamp(0.0, 1.0);
        if !concepts.is_empty() {
            self.background_concepts = concepts;
        }
        self
    }

    /// Adds an object, returning its id.
    pub fn add_object(&mut self, object: SceneObject) -> u32 {
        let id = object.id;
        debug_assert!(
            self.objects.iter().all(|o| o.id != id),
            "duplicate object id {id} in scene {}",
            self.label
        );
        self.objects.push(object);
        id
    }

    /// Adds a ground-truth fact.
    pub fn add_fact(&mut self, fact: SceneFact) {
        self.facts.push(fact);
    }

    /// Looks up an object by id.
    pub fn object(&self, id: u32) -> Option<&SceneObject> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// The full frame rectangle.
    pub fn frame_rect(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Total pixel count of the canvas.
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Returns the facts whose required detail is at least `threshold`
    /// (the quality-sensitive subset DeViBench is made of).
    pub fn quality_sensitive_facts(&self, threshold: f64) -> Vec<&SceneFact> {
        self.facts
            .iter()
            .filter(|f| f.is_quality_sensitive(threshold))
            .collect()
    }

    /// Fraction of the canvas covered by objects whose detail exceeds `detail_threshold`.
    ///
    /// This is a rough measure of how much of the frame actually matters for detail-rich
    /// questions — the paper's observation is that it is usually small, which is what makes
    /// context-aware bit allocation profitable.
    pub fn detail_area_fraction(&self, detail_threshold: f64) -> f64 {
        let total = self.pixel_count() as f64;
        let covered: f64 = self
            .objects
            .iter()
            .filter(|o| o.detail >= detail_threshold)
            .map(|o| o.region.clamped_to(self.width, self.height).area() as f64)
            .sum();
        (covered / total).min(1.0)
    }

    /// Validates internal consistency (object regions inside canvas after clamping, fact
    /// evidence referencing existing objects). Returns a list of problems, empty when valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for o in &self.objects {
            if o.region.w == 0 || o.region.h == 0 {
                problems.push(format!("object {} ({}) has an empty region", o.id, o.name));
            }
            if o.region.w > self.width || o.region.h > self.height {
                problems.push(format!("object {} ({}) is larger than the canvas", o.id, o.name));
            }
        }
        for (i, f) in self.facts.iter().enumerate() {
            for id in &f.evidence_objects {
                if self.object(*id).is_none() {
                    problems.push(format!("fact #{i} references missing object {id}"));
                }
            }
            if f.distractors.is_empty() {
                problems.push(format!("fact #{i} ({}) has no distractors", f.question));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::FactCategory;

    fn scene() -> Scene {
        let mut s = Scene::new("test", 1280, 720);
        s.add_object(
            SceneObject::new(1, "scoreboard", Rect::new(40, 40, 400, 100))
                .with_concept("scoreboard", 1.0)
                .with_detail(0.9),
        );
        s.add_object(
            SceneObject::new(2, "player", Rect::new(500, 200, 250, 450))
                .with_concept("player", 1.0)
                .with_detail(0.3),
        );
        s.add_fact(
            SceneFact::new(
                FactCategory::TextRich,
                "What is the score?",
                "78-74",
                vec![1],
                0.85,
            )
            .with_distractors(["70-74", "78-72", "68-74"]),
        );
        s
    }

    #[test]
    fn object_lookup_and_validation() {
        let s = scene();
        assert!(s.object(1).is_some());
        assert!(s.object(99).is_none());
        assert!(s.validate().is_empty(), "{:?}", s.validate());
    }

    #[test]
    fn invalid_fact_reference_detected() {
        let mut s = scene();
        s.add_fact(
            SceneFact::new(FactCategory::Counting, "?", "3", vec![42], 0.7).with_distractors(["1", "2", "4"]),
        );
        let problems = s.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("missing object 42"));
    }

    #[test]
    fn quality_sensitive_subset() {
        let s = scene();
        assert_eq!(s.quality_sensitive_facts(0.5).len(), 1);
        assert_eq!(s.quality_sensitive_facts(0.95).len(), 0);
    }

    #[test]
    fn detail_area_fraction_is_small_for_detail_regions() {
        let s = scene();
        let frac = s.detail_area_fraction(0.8);
        // Only the 400x100 scoreboard out of 1280x720.
        assert!((frac - (400.0 * 100.0) / (1280.0 * 720.0)).abs() < 1e-9);
        assert!(frac < 0.05);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_canvas_panics() {
        let _ = Scene::new("bad", 0, 720);
    }
}
