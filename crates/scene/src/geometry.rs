//! Pixel-space geometry primitives shared by the scene generator, the codec simulator
//! (CTU grids) and the CLIP-like patch encoder (patch grids).

use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in pixel coordinates.
///
/// The rectangle covers pixels `[x, x + w) x [y, y + h)`. Width/height of zero denote an
/// empty rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge in pixels.
    pub x: i64,
    /// Top edge in pixels.
    pub y: i64,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a new rectangle.
    pub const fn new(x: i64, y: i64, w: u32, h: u32) -> Self {
        Self { x, y, w, h }
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// True when the rectangle covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> i64 {
        self.x + self.w as i64
    }

    /// Bottom edge (exclusive).
    pub fn bottom(&self) -> i64 {
        self.y + self.h as i64
    }

    /// Intersection of two rectangles, or an empty rect when they do not overlap.
    pub fn intersect(&self, other: &Rect) -> Rect {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x1 <= x0 || y1 <= y0 {
            Rect::new(x0, y0, 0, 0)
        } else {
            Rect::new(x0, y0, (x1 - x0) as u32, (y1 - y0) as u32)
        }
    }

    /// Fraction of `self`'s area covered by `other`, in `[0, 1]`.
    pub fn coverage_by(&self, other: &Rect) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.intersect(other).area() as f64 / self.area() as f64
    }

    /// Translates the rectangle by `(dx, dy)` pixels.
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Clamps the rectangle so that it stays fully inside a `width x height` canvas,
    /// preserving its size where possible.
    pub fn clamped_to(&self, width: u32, height: u32) -> Rect {
        let w = self.w.min(width);
        let h = self.h.min(height);
        let max_x = width as i64 - w as i64;
        let max_y = height as i64 - h as i64;
        Rect::new(self.x.clamp(0, max_x.max(0)), self.y.clamp(0, max_y.max(0)), w, h)
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> (f64, f64) {
        (
            self.x as f64 + self.w as f64 / 2.0,
            self.y as f64 + self.h as f64 / 2.0,
        )
    }
}

/// Dimensions of a regular grid of `cell x cell` tiles covering a `width x height` canvas.
///
/// Both the codec (CTUs, usually 64x64) and the CLIP patch encoder (patches, usually 32..64)
/// tile frames this way; partial cells at the right/bottom edges are included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDims {
    /// Number of columns.
    pub cols: u32,
    /// Number of rows.
    pub rows: u32,
    /// Cell edge length in pixels.
    pub cell: u32,
}

impl GridDims {
    /// Computes the grid covering `width x height` with `cell`-sized tiles (ceil division).
    pub fn for_frame(width: u32, height: u32, cell: u32) -> Self {
        assert!(cell > 0, "grid cell size must be positive");
        Self {
            cols: width.div_ceil(cell),
            rows: height.div_ceil(cell),
            cell,
        }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pixel rectangle of the cell at `(row, col)`, clipped to the frame.
    pub fn cell_rect(&self, row: u32, col: u32, width: u32, height: u32) -> Rect {
        let x = (col * self.cell) as i64;
        let y = (row * self.cell) as i64;
        let w = (width as i64 - x).clamp(0, self.cell as i64) as u32;
        let h = (height as i64 - y).clamp(0, self.cell as i64) as u32;
        Rect::new(x, y, w, h)
    }

    /// Flat index of `(row, col)`.
    pub fn index(&self, row: u32, col: u32) -> usize {
        row as usize * self.cols as usize + col as usize
    }

    /// Inverse of [`GridDims::index`].
    pub fn position(&self, index: usize) -> (u32, u32) {
        (
            (index / self.cols as usize) as u32,
            (index % self.cols as usize) as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_area_and_empty() {
        assert_eq!(Rect::new(0, 0, 10, 5).area(), 50);
        assert!(Rect::new(3, 3, 0, 7).is_empty());
        assert!(!Rect::new(3, 3, 1, 7).is_empty());
    }

    #[test]
    fn rect_intersection_overlapping() {
        let a = Rect::new(0, 0, 100, 100);
        let b = Rect::new(50, 50, 100, 100);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(50, 50, 50, 50));
        assert!((a.coverage_by(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rect_intersection_disjoint_is_empty() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 20, 10, 10);
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.coverage_by(&b), 0.0);
    }

    #[test]
    fn rect_clamp_keeps_inside_canvas() {
        let r = Rect::new(-20, 1900, 100, 300).clamped_to(1920, 1080);
        assert!(r.x >= 0 && r.y >= 0);
        assert!(r.right() <= 1920 && r.bottom() <= 1080);
        assert_eq!(r.w, 100);
        assert_eq!(r.h, 300);
    }

    #[test]
    fn grid_covers_frame_with_partial_cells() {
        let g = GridDims::for_frame(1920, 1080, 64);
        assert_eq!(g.cols, 30);
        assert_eq!(g.rows, 17); // 1080 / 64 = 16.875 -> 17
        let last = g.cell_rect(16, 29, 1920, 1080);
        assert_eq!(last.h, 1080 - 16 * 64);
        assert_eq!(last.w, 64);
        assert_eq!(g.len(), 30 * 17);
    }

    #[test]
    fn grid_index_roundtrip() {
        let g = GridDims::for_frame(640, 480, 32);
        for row in 0..g.rows {
            for col in 0..g.cols {
                let idx = g.index(row, col);
                assert_eq!(g.position(idx), (row, col));
            }
        }
    }
}
